package orchestrator

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"genio/internal/container"
)

func utilOf(c *Cluster, node string) NodeUtilization {
	for _, u := range c.Utilization() {
		if u.Node == node {
			return u
		}
	}
	return NodeUtilization{}
}

// checkAccounting recomputes every node's usage and tenant charges from
// the workload table — the no-leak oracle drain tests assert after
// every outcome.
func checkAccounting(t *testing.T, c *Cluster, tenants ...string) {
	t.Helper()
	wantNode := map[string]Resources{}
	wantTenant := map[string]Resources{}
	for _, w := range c.Workloads() {
		wantNode[w.Node] = wantNode[w.Node].Add(w.Spec.Resources)
		wantTenant[w.Spec.Tenant] = wantTenant[w.Spec.Tenant].Add(w.Spec.Resources)
	}
	for _, u := range c.Utilization() {
		if u.Used != wantNode[u.Node] {
			t.Fatalf("node %s accounts %+v, workloads sum to %+v", u.Node, u.Used, wantNode[u.Node])
		}
	}
	for _, tenant := range tenants {
		if got := c.TenantUsage(tenant); got != wantTenant[tenant] {
			t.Fatalf("tenant %s accounts %+v, workloads sum to %+v", tenant, got, wantTenant[tenant])
		}
	}
}

func TestCordonExcludesNodeFromScheduling(t *testing.T) {
	c := quadCluster(t, Settings{})
	if err := c.Cordon("olt-01"); err != nil {
		t.Fatal(err)
	}
	w, err := c.Deploy("ops", policySpec("w", "acme", PlacementBinpack))
	if err != nil {
		t.Fatal(err)
	}
	if w.Node == "olt-01" {
		t.Fatal("workload placed on cordoned node")
	}
	if !utilOf(c, "olt-01").Cordoned {
		t.Fatal("utilization does not report cordon")
	}
	if err := c.Uncordon("olt-01"); err != nil {
		t.Fatal(err)
	}
	w2, err := c.Deploy("ops", policySpec("w2", "acme", PlacementBinpack))
	if err != nil {
		t.Fatal(err)
	}
	// Binpack returns to the most-utilized feasible node — w's node —
	// but olt-01 is schedulable again (verified by cordoning the rest).
	_ = w2
	for _, n := range []string{"olt-02", "olt-03", "olt-04"} {
		if err := c.Cordon(n); err != nil {
			t.Fatal(err)
		}
	}
	w3, err := c.Deploy("ops", policySpec("w3", "acme", PlacementBinpack))
	if err != nil {
		t.Fatal(err)
	}
	if w3.Node != "olt-01" {
		t.Fatalf("uncordoned node not schedulable: placed on %s", w3.Node)
	}
}

func TestCordonAllNodesYieldsCapacityError(t *testing.T) {
	c := quadCluster(t, Settings{})
	for i := 1; i <= 4; i++ {
		if err := c.Cordon(fmt.Sprintf("olt-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Deploy("ops", policySpec("w", "acme", "")); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v, want ErrNoCapacity", err)
	}
}

func TestCordonUnknownNode(t *testing.T) {
	c := quadCluster(t, Settings{})
	var nf *NodeNotFoundError
	if err := c.Cordon("ghost"); !errors.As(err, &nf) {
		t.Fatalf("err = %v", err)
	}
	if err := c.Uncordon("ghost"); !errors.As(err, &nf) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Drain(context.Background(), "ghost"); !errors.As(err, &nf) {
		t.Fatalf("err = %v", err)
	}
}

func TestDrainMigratesEverythingAndLeavesNodeCordoned(t *testing.T) {
	c := quadCluster(t, Settings{})
	for i := 0; i < 4; i++ {
		if _, err := c.Deploy("ops", policySpec(fmt.Sprintf("w%d", i), "acme", "")); err != nil {
			t.Fatal(err)
		}
	}
	// Binpack stacked everything on olt-01.
	if got := nodesOf(c); got["olt-01"] != 4 {
		t.Fatalf("precondition: placements = %v", got)
	}
	var events []DrainEvent
	res, err := c.DrainObserved(context.Background(), "olt-01", func(ev DrainEvent) {
		events = append(events, ev)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Migrated) != 4 || len(res.Remaining) != 0 || res.Cancelled {
		t.Fatalf("result = %+v", res)
	}
	// Migration order is deterministic: lowest name first.
	for i, wl := range res.Migrated {
		if want := fmt.Sprintf("w%d", i); wl != want {
			t.Fatalf("migration order %v, want w0..w3", res.Migrated)
		}
	}
	if got := nodesOf(c); got["olt-01"] != 0 || len(c.Workloads()) != 4 {
		t.Fatalf("placements after drain = %v", got)
	}
	u := utilOf(c, "olt-01")
	if !u.Cordoned || u.Used.CPUMilli != 0 || u.Workloads != 0 || u.SharedVMs != 0 {
		t.Fatalf("drained node state = %+v", u)
	}
	checkAccounting(t, c, "acme")
	// Event stream: cordoned, one migrated per workload, completed.
	if len(events) != 6 || events[0].Phase != DrainCordoned || events[5].Phase != DrainCompleted {
		t.Fatalf("events = %+v", events)
	}
	for _, ev := range events[1:5] {
		if ev.Phase != DrainMigrated || ev.Target == "olt-01" || ev.Score <= 0 {
			t.Fatalf("migration event = %+v", ev)
		}
	}
}

func TestDrainCancelMidMigrationRollsBack(t *testing.T) {
	c := quadCluster(t, Settings{})
	for i := 0; i < 4; i++ {
		if _, err := c.Deploy("ops", policySpec(fmt.Sprintf("w%d", i), "acme", "")); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	migrated := 0
	res, err := c.DrainObserved(ctx, "olt-01", func(ev DrainEvent) {
		if ev.Phase == DrainMigrated {
			if migrated++; migrated == 2 {
				cancel() // next migration boundary must stop
			}
		}
	})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	var cerr *CancelledError
	if !errors.As(err, &cerr) || cerr.Stage != "drain" {
		t.Fatalf("err = %v, want CancelledError at drain stage", err)
	}
	if !res.Cancelled || len(res.Migrated) != 2 || len(res.Remaining) != 2 {
		t.Fatalf("result = %+v", res)
	}
	// Rollback: the drain's own cordon is lifted, the node schedulable
	// again; completed migrations stay; nothing leaked.
	if utilOf(c, "olt-01").Cordoned {
		t.Fatal("cancelled drain left its cordon in place")
	}
	if got := nodesOf(c); got["olt-01"] != 2 {
		t.Fatalf("placements after cancelled drain = %v", got)
	}
	checkAccounting(t, c, "acme")
}

func TestDrainKeepsPreexistingCordonOnCancel(t *testing.T) {
	c := quadCluster(t, Settings{})
	if _, err := c.Deploy("ops", policySpec("w", "acme", "")); err != nil {
		t.Fatal(err)
	}
	if err := c.Cordon("olt-01"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first migration
	res, err := c.Drain(ctx, "olt-01")
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v", err)
	}
	if len(res.Migrated) != 0 || len(res.Remaining) != 1 {
		t.Fatalf("result = %+v", res)
	}
	// The operator's cordon predates the drain: rollback must not lift it.
	if !utilOf(c, "olt-01").Cordoned {
		t.Fatal("pre-existing cordon lifted by drain rollback")
	}
	checkAccounting(t, c, "acme")
}

func TestDrainFailsWhenWorkloadFitsNowhereAndRollsBack(t *testing.T) {
	reg := container.NewRegistry()
	reg.Push(container.AnalyticsImage(), nil)
	c := NewCluster("tight", reg, Settings{})
	c.AddNode("n1", Resources{CPUMilli: 4000, MemoryMB: 8192})
	c.AddNode("n2", Resources{CPUMilli: 600, MemoryMB: 1024}) // room for one only
	// Spread favours the roomy n1 for all three (n2 would run too hot),
	// so the drain source carries everything.
	for i := 0; i < 3; i++ {
		if _, err := c.Deploy("ops", policySpec(fmt.Sprintf("w%d", i), "acme", PlacementSpread)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Drain(context.Background(), "n1")
	var derr *DrainError
	if !errors.As(err, &derr) || !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v, want *DrainError wrapping ErrNoCapacity", err)
	}
	if len(res.Migrated) != 1 || len(res.Remaining) != 2 {
		t.Fatalf("result = %+v", res)
	}
	// Rollback: n1 schedulable again, no workload lost, accounting clean.
	if utilOf(c, "n1").Cordoned {
		t.Fatal("failed drain left n1 cordoned")
	}
	if len(c.Workloads()) != 3 {
		t.Fatalf("workloads = %d, want 3 (none lost)", len(c.Workloads()))
	}
	checkAccounting(t, c, "acme")
}

// TestUncordonMidDrainStillEvacuates: an operator Uncordon while a
// drain is mid-flight must not make the drain migrate workloads back
// onto its own source (livelock + VM-table corruption in the unfixed
// code): the source node is excluded by name, so the evacuation
// completes.
func TestUncordonMidDrainStillEvacuates(t *testing.T) {
	c := quadCluster(t, Settings{})
	for i := 0; i < 4; i++ {
		if _, err := c.Deploy("ops", policySpec(fmt.Sprintf("w%d", i), "acme", "")); err != nil {
			t.Fatal(err)
		}
	}
	uncordoned := false
	res, err := c.DrainObserved(context.Background(), "olt-01", func(ev DrainEvent) {
		if ev.Phase == DrainMigrated && !uncordoned {
			uncordoned = true
			if uerr := c.Uncordon("olt-01"); uerr != nil {
				t.Errorf("mid-drain uncordon: %v", uerr)
			}
		}
	})
	if err != nil {
		t.Fatalf("drain fought the uncordon: %v", err)
	}
	if len(res.Migrated) != 4 {
		t.Fatalf("migrated = %v", res.Migrated)
	}
	for _, w := range c.Workloads() {
		if w.Node == "olt-01" {
			t.Fatalf("workload %s migrated back onto the drain source", w.Spec.Name)
		}
	}
	checkAccounting(t, c, "acme")
	// Every workload's VM slot must be coherent (the unfixed code could
	// strand a workload whose VM no longer lists it).
	byVM := map[string]map[string]bool{}
	for _, vm := range c.VMs() {
		byVM[vm.ID] = map[string]bool{}
		for _, wl := range vm.Workloads {
			byVM[vm.ID][wl] = true
		}
	}
	for _, w := range c.Workloads() {
		if !byVM[w.VMID][w.Spec.Name] {
			t.Fatalf("workload %s's VM %s does not list it", w.Spec.Name, w.VMID)
		}
	}
}

// TestDrainDeployCommitRace hammers the placement-to-commit window: a
// deploy that scheduled onto a node before its drain cordoned it must
// not commit there afterwards — the drain would have reported the node
// empty while the workload was still unregistered. After both finish,
// a successfully drained node holds nothing.
func TestDrainDeployCommitRace(t *testing.T) {
	for round := 0; round < 40; round++ {
		c := quadCluster(t, Settings{})
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := c.Deploy("ops", policySpec(fmt.Sprintf("w%d", i), "acme", "")); err != nil {
					t.Errorf("deploy w%d: %v", i, err)
				}
			}(i)
		}
		if _, err := c.Drain(context.Background(), "olt-01"); err != nil {
			t.Fatalf("drain: %v", err)
		}
		wg.Wait()
		for _, w := range c.Workloads() {
			if w.Node == "olt-01" {
				t.Fatalf("round %d: workload %s committed onto the drained node", round, w.Spec.Name)
			}
		}
		if u := utilOf(c, "olt-01"); u.Used.CPUMilli != 0 || u.Workloads != 0 {
			t.Fatalf("round %d: drained node still accounts %+v", round, u)
		}
		checkAccounting(t, c, "acme")
	}
}

// TestOperatorCordonMidDrainSurvivesRollback: an explicit Cordon
// issued while a drain is in flight claims the cordon state — a later
// drain cancellation must not lift it.
func TestOperatorCordonMidDrainSurvivesRollback(t *testing.T) {
	c := quadCluster(t, Settings{})
	for i := 0; i < 3; i++ {
		if _, err := c.Deploy("ops", policySpec(fmt.Sprintf("w%d", i), "acme", "")); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	res, err := c.DrainObserved(ctx, "olt-01", func(ev DrainEvent) {
		if ev.Phase == DrainMigrated {
			// The operator explicitly re-cordons (idempotent) mid-drain,
			// then the drain is cancelled.
			if cerr := c.Cordon("olt-01"); cerr != nil {
				t.Errorf("mid-drain cordon: %v", cerr)
			}
			cancel()
		}
	})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v", err)
	}
	if len(res.Remaining) == 0 {
		t.Fatalf("fixture: expected workloads left behind, got %+v", res)
	}
	if !utilOf(c, "olt-01").Cordoned {
		t.Fatal("drain rollback discarded the operator's explicit cordon")
	}
}

// TestCompletedDrainCordonSurvivesLaterRollback: the cordon a
// completed drain leaves behind is sticky — a second drain of the same
// node, even with a dead context, finds it empty, reports completion
// (the empty check beats the cancellation), and must not lift it.
func TestCompletedDrainCordonSurvivesLaterRollback(t *testing.T) {
	c := quadCluster(t, Settings{})
	if _, err := c.Deploy("ops", policySpec("w", "acme", "")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Drain(context.Background(), "olt-01"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := c.Drain(ctx, "olt-01")
	if err != nil || res.Cancelled || len(res.Migrated) != 0 {
		t.Fatalf("re-drain of empty node: res=%+v err=%v, want clean completion", res, err)
	}
	if !utilOf(c, "olt-01").Cordoned {
		t.Fatal("re-drain lifted the completed drain's cordon")
	}
}

// TestUncordonMidDrainNoDuplicateAudit: an operator Uncordon mid-drain
// followed by a drain abort must not emit a second node-uncordon — the
// audit trail keeps cordon/uncordon pairing.
func TestUncordonMidDrainNoDuplicateAudit(t *testing.T) {
	reg := container.NewRegistry()
	reg.Push(container.AnalyticsImage(), nil)
	c := NewCluster("tight", reg, Settings{})
	c.AddNode("n1", Resources{CPUMilli: 4000, MemoryMB: 8192})
	c.AddNode("n2", Resources{CPUMilli: 600, MemoryMB: 1024}) // room for one only
	for i := 0; i < 3; i++ {
		if _, err := c.Deploy("ops", policySpec(fmt.Sprintf("w%d", i), "acme", PlacementSpread)); err != nil {
			t.Fatal(err)
		}
	}
	var cordons, uncordons int
	c.SetAuditSink(func(a AuditEvent) {
		switch a.Kind {
		case "node-cordon":
			cordons++
		case "node-uncordon":
			uncordons++
		}
	})
	// n2 fits one migration; the second blocks on capacity. Mid-drain
	// the operator uncordons n1; the later abort must not uncordon again.
	var derr *DrainError
	_, err := c.DrainObserved(context.Background(), "n1", func(ev DrainEvent) {
		if ev.Phase == DrainMigrated {
			if uerr := c.Uncordon("n1"); uerr != nil {
				t.Errorf("mid-drain uncordon: %v", uerr)
			}
		}
	})
	if !errors.As(err, &derr) {
		t.Fatalf("err = %v, want *DrainError", err)
	}
	if cordons != 1 || uncordons != 1 {
		t.Fatalf("audit pairing broken: %d cordons, %d uncordons (want 1/1)", cordons, uncordons)
	}
	if utilOf(c, "n1").Cordoned {
		t.Fatal("node re-cordoned after explicit operator uncordon")
	}
}

// TestCancelledDrainCannotLiftAnotherDrainsCordon: drain A is paused
// mid-migration, the operator uncordons, drain B claims the node, and A
// is then cancelled — A's rollback must not lift B's cordon (the
// ownership token, not a boolean, decides).
func TestCancelledDrainCannotLiftAnotherDrainsCordon(t *testing.T) {
	c := quadCluster(t, Settings{})
	for i := 0; i < 2; i++ {
		if _, err := c.Deploy("ops", policySpec(fmt.Sprintf("w%d", i), "acme", "")); err != nil {
			t.Fatal(err)
		}
	}
	aMigrated, aGate := make(chan struct{}), make(chan struct{})
	actx, acancel := context.WithCancel(context.Background())
	aDone := make(chan error, 1)
	var aOnce sync.Once
	go func() {
		_, err := c.DrainObserved(actx, "olt-01", func(ev DrainEvent) {
			if ev.Phase == DrainMigrated {
				aOnce.Do(func() {
					close(aMigrated)
					<-aGate
				})
			}
		})
		aDone <- err
	}()
	<-aMigrated
	// Operator lifts A's cordon; drain B claims the node afresh and is
	// held right after its cordon lands.
	if err := c.Uncordon("olt-01"); err != nil {
		t.Fatal(err)
	}
	bCordoned, bGate := make(chan struct{}), make(chan struct{})
	bDone := make(chan error, 1)
	go func() {
		_, err := c.DrainObserved(context.Background(), "olt-01", func(ev DrainEvent) {
			if ev.Phase == DrainCordoned {
				close(bCordoned)
				<-bGate
			}
		})
		bDone <- err
	}()
	<-bCordoned
	// Cancel A while B is mid-flight: A's rollback runs against a cordon
	// it no longer owns.
	acancel()
	close(aGate)
	if err := <-aDone; !errors.Is(err, ErrCancelled) {
		t.Fatalf("drain A: %v, want cancelled", err)
	}
	if !utilOf(c, "olt-01").Cordoned {
		t.Fatal("drain A's rollback lifted drain B's cordon")
	}
	close(bGate)
	if err := <-bDone; err != nil {
		t.Fatalf("drain B: %v", err)
	}
	if !utilOf(c, "olt-01").Cordoned {
		t.Fatal("completed drain's cordon missing")
	}
	checkAccounting(t, c, "acme")
}

// TestCompletedOverlappingDrainCordonSurvivesCancel: drain B rides
// drain A's cordon (starting while A's is in place, so B never claims
// ownership) and runs to completion; cancelling A afterwards must not
// lift the cordon of a node B just reported drained. A, finding the
// node empty, reports completion (the empty check beats its dead
// context), and completion resets cordon ownership unconditionally —
// either way the node stays fenced.
func TestCompletedOverlappingDrainCordonSurvivesCancel(t *testing.T) {
	c := quadCluster(t, Settings{})
	for i := 0; i < 2; i++ {
		if _, err := c.Deploy("ops", policySpec(fmt.Sprintf("w%d", i), "acme", "")); err != nil {
			t.Fatal(err)
		}
	}
	aMigrated, aGate := make(chan struct{}), make(chan struct{})
	actx, acancel := context.WithCancel(context.Background())
	aDone := make(chan error, 1)
	var aOnce sync.Once
	go func() {
		_, err := c.DrainObserved(actx, "olt-01", func(ev DrainEvent) {
			if ev.Phase == DrainMigrated {
				aOnce.Do(func() {
					close(aMigrated)
					<-aGate
				})
			}
		})
		aDone <- err
	}()
	<-aMigrated
	// B starts while A's cordon stands and drains the node to empty.
	if _, err := c.Drain(context.Background(), "olt-01"); err != nil {
		t.Fatalf("drain B: %v", err)
	}
	acancel()
	close(aGate)
	if err := <-aDone; err != nil {
		t.Fatalf("drain A on the emptied node: %v, want completion", err)
	}
	if !utilOf(c, "olt-01").Cordoned {
		t.Fatal("drain A lifted the cordon of B's completed drain")
	}
	checkAccounting(t, c, "acme")
}

// TestNodeFailsAndRejoinsMidDrain: the node object a drain is working
// on fails and a namesake rejoins mid-drain. The drain must neither
// cordon nor report on the reborn node (identity, not name, decides) —
// it ends with a NodeNotFoundError, the failover owns the evacuation,
// and the namesake stays schedulable.
func TestNodeFailsAndRejoinsMidDrain(t *testing.T) {
	c := quadCluster(t, Settings{})
	for i := 0; i < 3; i++ {
		if _, err := c.Deploy("ops", policySpec(fmt.Sprintf("w%d", i), "acme", "")); err != nil {
			t.Fatal(err)
		}
	}
	migrated, gate := make(chan struct{}), make(chan struct{})
	done := make(chan error, 1)
	var once sync.Once
	go func() {
		_, err := c.DrainObserved(context.Background(), "olt-01", func(ev DrainEvent) {
			if ev.Phase == DrainMigrated {
				once.Do(func() {
					close(migrated)
					<-gate
				})
			}
		})
		done <- err
	}()
	<-migrated
	if _, err := c.FailNode("olt-01"); err != nil {
		t.Fatal(err)
	}
	c.AddNode("olt-01", Resources{CPUMilli: 4000, MemoryMB: 8192})
	close(gate)
	var nf *NodeNotFoundError
	if err := <-done; !errors.As(err, &nf) {
		t.Fatalf("drain over failed node: %v, want *NodeNotFoundError", err)
	}
	if utilOf(c, "olt-01").Cordoned {
		t.Fatal("drain cordoned the reborn namesake node")
	}
	if got := len(c.Workloads()); got != 3 {
		t.Fatalf("%d workloads survive, want 3", got)
	}
	checkAccounting(t, c, "acme")
	// The namesake is a normal schedulable node again.
	w, err := c.Deploy("ops", policySpec("fresh", "acme", PlacementSpread))
	if err != nil {
		t.Fatal(err)
	}
	if w.Node != "olt-01" {
		t.Fatalf("fresh spread deploy on %s, want the idle reborn olt-01", w.Node)
	}
}

// TestOverlappingDrainCompletionReassertsCordon: drain B rides drain
// A's cordon; A is cancelled mid-B, and A's rollback lifts the cordon
// (it owns it). When B then completes, it must re-assert the cordon —
// no operator spoke, and "empty and cordoned" is B's contract.
func TestOverlappingDrainCompletionReassertsCordon(t *testing.T) {
	c := quadCluster(t, Settings{})
	for i := 0; i < 3; i++ {
		if _, err := c.Deploy("ops", policySpec(fmt.Sprintf("w%d", i), "acme", "")); err != nil {
			t.Fatal(err)
		}
	}
	aMigrated, aGate := make(chan struct{}), make(chan struct{})
	actx, acancel := context.WithCancel(context.Background())
	aDone := make(chan error, 1)
	var aOnce sync.Once
	go func() {
		_, err := c.DrainObserved(actx, "olt-01", func(ev DrainEvent) {
			if ev.Phase == DrainMigrated {
				aOnce.Do(func() {
					close(aMigrated)
					<-aGate
				})
			}
		})
		aDone <- err
	}()
	<-aMigrated
	// B rides A's cordon and pauses after its first migration, one
	// workload still on the node.
	bMigrated, bGate := make(chan struct{}), make(chan struct{})
	bDone := make(chan error, 1)
	var bOnce sync.Once
	go func() {
		_, err := c.DrainObserved(context.Background(), "olt-01", func(ev DrainEvent) {
			if ev.Phase == DrainMigrated {
				bOnce.Do(func() {
					close(bMigrated)
					<-bGate
				})
			}
		})
		bDone <- err
	}()
	<-bMigrated
	// A is cancelled with a workload still present: its rollback lifts
	// the cordon it owns, mid-B.
	acancel()
	close(aGate)
	if err := <-aDone; !errors.Is(err, ErrCancelled) {
		t.Fatalf("drain A: %v, want cancelled", err)
	}
	if utilOf(c, "olt-01").Cordoned {
		t.Fatal("fixture: A's rollback should have lifted its cordon")
	}
	// B finishes the evacuation and must leave the node cordoned.
	close(bGate)
	if err := <-bDone; err != nil {
		t.Fatalf("drain B: %v", err)
	}
	if !utilOf(c, "olt-01").Cordoned {
		t.Fatal("B's completion did not re-assert the cordon A's rollback lifted")
	}
	if got := nodesOf(c)["olt-01"]; got != 0 {
		t.Fatalf("%d workloads left on the drained node", got)
	}
	checkAccounting(t, c, "acme")
}

// TestDrainBoundedToInitialSet: an operator Uncordon mid-drain lets
// fresh traffic land on the node; the drain evacuates only the
// workloads present at cordon time and terminates, leaving the
// newcomer where the operator put it.
func TestDrainBoundedToInitialSet(t *testing.T) {
	c := quadCluster(t, Settings{})
	for i := 0; i < 3; i++ {
		if _, err := c.Deploy("ops", policySpec(fmt.Sprintf("w%d", i), "acme", "")); err != nil {
			t.Fatal(err)
		}
	}
	deployed := false
	res, err := c.DrainObserved(context.Background(), "olt-01", func(ev DrainEvent) {
		if ev.Phase == DrainMigrated && !deployed {
			deployed = true
			if uerr := c.Uncordon("olt-01"); uerr != nil {
				t.Errorf("mid-drain uncordon: %v", uerr)
			}
			// Fresh traffic immediately re-targets the reopened node
			// (binpack: it still carries load, so it scores highest).
			w, derr := c.Deploy("ops", policySpec("newcomer", "acme", ""))
			if derr != nil {
				t.Errorf("mid-drain deploy: %v", derr)
			} else if w.Node != "olt-01" {
				t.Errorf("fixture: newcomer landed on %s, want the reopened olt-01", w.Node)
			}
		}
	})
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if len(res.Migrated) != 3 {
		t.Fatalf("migrated = %v, want the initial three", res.Migrated)
	}
	// The completed drain reports the post-cordon arrival instead of
	// claiming the node is empty.
	if len(res.Remaining) != 1 || res.Remaining[0] != "newcomer" {
		t.Fatalf("remaining = %v, want the newcomer reported", res.Remaining)
	}
	nc, ok := c.Workload("newcomer")
	if !ok || nc.Node != "olt-01" {
		t.Fatalf("newcomer = %+v; the drain must not chase post-cordon arrivals", nc)
	}
	checkAccounting(t, c, "acme")
}

// TestFailoverDegradesOnBrokenClusterDefault: a cluster default typo'd
// after placement must not turn node failure into mass eviction — the
// victims fall back to an explicit binpack placement, keeping their
// original (empty) policy request intact.
func TestFailoverDegradesOnBrokenClusterDefault(t *testing.T) {
	c := quadCluster(t, Settings{})
	for i := 0; i < 3; i++ {
		if _, err := c.Deploy("ops", policySpec(fmt.Sprintf("w%d", i), "acme", "")); err != nil {
			t.Fatal(err)
		}
	}
	// The operator fat-fingers the default after everything is placed.
	c.Settings.PlacementStrategy = "sperad"
	res, err := c.FailNode("olt-01")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evicted) != 0 || len(res.Rescheduled) != 3 {
		t.Fatalf("failover under broken default: %+v (fleet had capacity)", res)
	}
	for _, w := range c.Workloads() {
		if w.Strategy != PlacementBinpack {
			t.Fatalf("workload %s rescheduled under %q, want degraded binpack", w.Spec.Name, w.Strategy)
		}
		if w.Spec.PlacementPolicy != "" {
			t.Fatalf("workload %s's requested policy rewritten to %q", w.Spec.Name, w.Spec.PlacementPolicy)
		}
	}
	checkAccounting(t, c, "acme")
}

// TestFailNodeDeployCommitRace: a node failing between a deploy's
// placement and its commit must reschedule the deploy on the surviving
// fleet, not spuriously reject it for capacity the fleet still has.
func TestFailNodeDeployCommitRace(t *testing.T) {
	for round := 0; round < 30; round++ {
		c := quadCluster(t, Settings{})
		var wg sync.WaitGroup
		for i := 0; i < 6; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := c.Deploy("ops", policySpec(fmt.Sprintf("w%d", i), "acme", "")); err != nil {
					t.Errorf("round %d: deploy w%d: %v (fleet had capacity)", round, i, err)
				}
			}(i)
		}
		if _, err := c.FailNode("olt-01"); err != nil {
			t.Fatalf("fail: %v", err)
		}
		wg.Wait()
		if got := len(c.Workloads()); got != 6 {
			t.Fatalf("round %d: %d workloads survive, want 6", round, got)
		}
		for _, w := range c.Workloads() {
			if w.Node == "olt-01" {
				t.Fatalf("round %d: workload %s on failed node", round, w.Spec.Name)
			}
		}
		checkAccounting(t, c, "acme")
	}
}

// TestDrainCancelAfterLastMigrationCompletes: a cancellation landing
// in the final migration's observer must not demote a fully-evacuated
// drain to cancelled (which would lift the maintenance cordon on an
// empty node) — the empty check wins over the dead context.
func TestDrainCancelAfterLastMigrationCompletes(t *testing.T) {
	c := quadCluster(t, Settings{})
	const n = 3
	for i := 0; i < n; i++ {
		if _, err := c.Deploy("ops", policySpec(fmt.Sprintf("w%d", i), "acme", "")); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	migrated := 0
	res, err := c.DrainObserved(ctx, "olt-01", func(ev DrainEvent) {
		if ev.Phase == DrainMigrated {
			if migrated++; migrated == n {
				cancel() // the node is empty now; drain must still complete
			}
		}
	})
	if err != nil {
		t.Fatalf("drain reported %v after full evacuation", err)
	}
	if res.Cancelled || len(res.Migrated) != n || len(res.Remaining) != 0 {
		t.Fatalf("result = %+v", res)
	}
	if !utilOf(c, "olt-01").Cordoned {
		t.Fatal("completed drain's cordon lifted by the late cancellation")
	}
	checkAccounting(t, c, "acme")
}

// TestFailAndRejoinDeployCommitRace: a node that fails AND rejoins
// under the same name inside a deploy's schedule-to-commit window is a
// different object — committing against it by name would register a
// workload whose VM and capacity reservation died with the old object.
// The commit window must verify node identity and reschedule.
func TestFailAndRejoinDeployCommitRace(t *testing.T) {
	for round := 0; round < 40; round++ {
		c := quadCluster(t, Settings{})
		var wg sync.WaitGroup
		for i := 0; i < 6; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := c.Deploy("ops", policySpec(fmt.Sprintf("w%d", i), "acme", "")); err != nil {
					t.Errorf("round %d: deploy w%d: %v", round, i, err)
				}
			}(i)
		}
		// The ABA: the binpack target fails and instantly rejoins under
		// its old name with a fresh (empty) state object.
		if _, err := c.FailNode("olt-01"); err != nil {
			t.Fatalf("fail: %v", err)
		}
		c.AddNode("olt-01", Resources{CPUMilli: 4000, MemoryMB: 8192})
		wg.Wait()
		if got := len(c.Workloads()); got != 6 {
			t.Fatalf("round %d: %d workloads, want 6", round, got)
		}
		// Every workload's VM must exist on its node and list it — a
		// name-based commit against the reborn object breaks this.
		vms := map[string]*VM{}
		for _, vm := range c.VMs() {
			vms[vm.ID] = vm
		}
		for _, w := range c.Workloads() {
			vm, ok := vms[w.VMID]
			if !ok {
				t.Fatalf("round %d: workload %s references missing VM %s on %s", round, w.Spec.Name, w.VMID, w.Node)
			}
			found := false
			for _, wl := range vm.Workloads {
				if wl == w.Spec.Name {
					found = true
				}
			}
			if !found || vm.Node != w.Node {
				t.Fatalf("round %d: workload %s not coherent with VM %s", round, w.Spec.Name, w.VMID)
			}
		}
		checkAccounting(t, c, "acme")
	}
}

func TestDrainEmptyNodeCompletesImmediately(t *testing.T) {
	c := quadCluster(t, Settings{})
	res, err := c.Drain(context.Background(), "olt-03")
	if err != nil || len(res.Migrated) != 0 || res.Cancelled {
		t.Fatalf("res = %+v, err = %v", res, err)
	}
	if !utilOf(c, "olt-03").Cordoned {
		t.Fatal("drained node must stay cordoned")
	}
}

func TestDrainAuditTrail(t *testing.T) {
	c := quadCluster(t, Settings{})
	var kinds []string
	c.SetAuditSink(func(a AuditEvent) { kinds = append(kinds, a.Kind) })
	if _, err := c.Deploy("ops", policySpec("w", "acme", "")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Drain(context.Background(), "olt-01"); err != nil {
		t.Fatal(err)
	}
	var sawCordon, sawMigrate, sawDrain bool
	for _, k := range kinds {
		switch k {
		case "node-cordon":
			sawCordon = true
		case "drain-migrate":
			sawMigrate = true
		case "node-drain":
			sawDrain = true
		}
	}
	if !sawCordon || !sawMigrate || !sawDrain {
		t.Fatalf("audit kinds = %v", kinds)
	}
}
