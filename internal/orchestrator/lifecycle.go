package orchestrator

// Node lifecycle: cordon marks a node unschedulable (the scheduler's
// cordon filter excludes it from every subsequent placement), uncordon
// reverses that, and drain live-migrates a node's workloads onto the
// rest of the fleet through the scheduler — the operational path for
// maintenance, firmware rollouts, and decommissioning an OLT without
// dropping tenant workloads the way FailNode's crash path does.
//
// Drain's state machine:
//
//	        Drain(ctx)
//	            |
//	        [cordon]             (skipped when already cordoned)
//	            |
//	   +--> pick lowest-named workload on the node
//	   |        |- none left --> completed   (node stays cordoned)
//	   |        |
//	   |    schedule on another node ---- no fit --> failed (rollback)
//	   |        |
//	   |    migrate (atomic under the cluster write lock)
//	   |        |
//	   +---- ctx live? ------------- ctx done --> cancelled (rollback)
//
// Rollback restores the node's schedulable state: if Drain itself
// applied the cordon and still owns it, cancellation or failure
// uncordons. A node the operator cordoned beforehand — or explicitly
// cordoned/uncordoned mid-drain, which claims the cordon state away
// from the drain — is left exactly as the operator set it. Completed
// migrations are never reversed — the workloads are already live on
// their new nodes — and every migration is atomic, so cancellation can
// never leak capacity or strand a workload between nodes (the sim's
// no-drain-leaks-capacity invariant audits exactly this).

import (
	"context"
	"fmt"
	"sort"
)

// Cordon marks a node unschedulable: running workloads stay, new
// placements (deploy, failover, drain targets) skip it. Idempotent;
// emits a node-cordon audit record on the transition.
func (c *Cluster) Cordon(name string) error {
	return c.setCordon(name, true, "")
}

// Uncordon returns a node to the schedulable pool. Idempotent; emits a
// node-uncordon audit record on the transition.
func (c *Cluster) Uncordon(name string) error {
	return c.setCordon(name, false, "")
}

// setCordon flips a node's cordon flag, auditing actual transitions.
// Every explicit call — transition or idempotent no-op — claims the
// cordon state for the operator: a drain rollback never undoes it.
func (c *Cluster) setCordon(name string, cordoned bool, detail string) error {
	c.mu.RLock()
	n, ok := c.nodes[name]
	c.mu.RUnlock()
	if !ok {
		return &NodeNotFoundError{Node: name}
	}
	n.mu.Lock()
	changed := n.cordoned != cordoned
	n.cordoned = cordoned
	n.cordonOwner = 0
	n.cordonEpoch++
	if changed {
		c.mutate(Mutation{Kind: MutNodeCordon, Node: name, Cordoned: cordoned})
	}
	n.mu.Unlock()
	// A cordoned node holds no warm capacity: flush its idle slots and
	// release their reservations, with the flag already set so no new
	// park can land (parks re-check it). The cluster read lock excludes
	// the park-then-evict window of a concurrent Stop, which runs under
	// the write lock.
	var warmEvs []WarmEvent
	if cordoned {
		c.mu.RLock()
		warmEvs = c.flushWarmNode(n, "cordon")
		c.mu.RUnlock()
	}
	if changed {
		kind := "node-cordon"
		if !cordoned {
			kind = "node-uncordon"
		}
		c.auditEvent(AuditEvent{Kind: kind, Node: name, Allowed: true, Detail: detail})
	}
	c.emitWarmEvents(warmEvs)
	return nil
}

// Drain phases, in DrainEvent.Phase.
const (
	// DrainCordoned: drain applied the cordon (absent when the node was
	// already cordoned).
	DrainCordoned = "cordoned"
	// DrainMigrated: one workload moved to its new node.
	DrainMigrated = "migrated"
	// DrainCompleted: the node is empty; it stays cordoned.
	DrainCompleted = "completed"
	// DrainCancelled: ctx ended mid-drain; schedulable state rolled back.
	DrainCancelled = "cancelled"
	// DrainFailed: a workload fit nowhere; schedulable state rolled back.
	DrainFailed = "failed"
)

// DrainEvent is one observable step of a drain — published by the
// platform on the spine's node.drain topic and mirrored to the observer
// passed to DrainObserved.
type DrainEvent struct {
	Node  string `json:"node"`
	Phase string `json:"phase"`
	// Workload/Target/Score describe a migration (Phase == migrated):
	// which workload moved where, at what scheduler score.
	Workload string  `json:"workload,omitempty"`
	Target   string  `json:"target,omitempty"`
	Score    float64 `json:"score,omitempty"`
	Detail   string  `json:"detail,omitempty"`
	// AtMs is the cluster-clock time (zero without a clock).
	AtMs int64 `json:"atMs,omitempty"`
}

// DrainResult reports a drain's outcome: what moved, what (on
// cancellation or failure) stayed behind, and whether the drain ran to
// completion.
type DrainResult struct {
	Node string `json:"node"`
	// Migrated lists the workloads moved off the node, in migration
	// order.
	Migrated []string `json:"migrated"`
	// Remaining lists workloads still on the node when the drain ended:
	// the unevacuated rest on cancellation or failure, and on completion
	// any post-cordon arrivals (normally none — they exist only if the
	// node was reopened mid-drain by an operator uncordon or a
	// concurrent drain's rollback).
	Remaining []string `json:"remaining,omitempty"`
	// Cancelled is true when ctx ended the drain.
	Cancelled bool `json:"cancelled,omitempty"`
	// AtMs is the cluster-clock time the drain finished (zero without a
	// clock).
	AtMs int64 `json:"atMs,omitempty"`
}

// Drain cordons the node (if not already cordoned) and live-migrates
// the workloads present at cordon time onto the rest of the fleet
// through the scheduler, one atomic migration at a time, lowest
// workload name first. Workloads that land afterwards (possible only
// while the node is reopened mid-drain — an operator uncordon or a
// concurrent drain's rollback) are not chased — the bound guarantees
// termination under sustained traffic — but are reported in
// DrainResult.Remaining. On success the initial set is evacuated and
// the node stays cordoned (uncordon it to reuse it; fail it to remove
// it).
//
// Cancelling ctx stops the drain at the next migration boundary:
// completed migrations stay (the workloads are live elsewhere), the
// rest never move, the cordon applied by this drain is rolled back, and
// the error is a *CancelledError (stage "drain") returned alongside the
// partial DrainResult. A workload that fits nowhere aborts the same way
// with a *DrainError wrapping the scheduling failure. Capacity and
// quota accounting balance in every outcome.
func (c *Cluster) Drain(ctx context.Context, name string) (*DrainResult, error) {
	return c.DrainObserved(ctx, name, nil)
}

// DrainObserved is Drain with a progress observer: observe (when
// non-nil) is called on the draining goroutine, outside cluster locks,
// for every DrainEvent. The platform wires the spine's node.drain
// publisher in here.
func (c *Cluster) DrainObserved(ctx context.Context, name string, observe func(DrainEvent)) (*DrainResult, error) {
	c.mu.RLock()
	n, ok := c.nodes[name]
	c.mu.RUnlock()
	if !ok {
		return nil, &NodeNotFoundError{Node: name}
	}
	emit := func(ev DrainEvent) {
		ev.Node = name
		if ev.AtMs == 0 {
			ev.AtMs = c.nowMs()
		}
		if observe != nil {
			observe(ev)
		}
	}

	// Cordon first so no new placement lands mid-drain, marking the
	// cordon with this drain's id: rollback lifts it only while we still
	// own it — an explicit operator Cordon/Uncordon at any point, a
	// completed drain, or another drain's own cordon (all of which
	// rewrite the owner) takes precedence.
	drainID := c.drainSeq.Add(1)
	n.mu.Lock()
	wasCordoned := n.cordoned
	n.cordoned = true
	if !wasCordoned {
		n.cordonOwner = drainID
		c.mutate(Mutation{Kind: MutNodeCordon, Node: name, Cordoned: true})
	}
	startEpoch := n.cordonEpoch
	n.mu.Unlock()
	// Flush the node's warm slots before any migration accounting: the
	// cordon is set, so the idle reservations are unreachable until an
	// explicit uncordon, and the drain's capacity story must not count
	// them. (Idempotent when the node was already cordoned and flushed.)
	c.mu.RLock()
	warmEvs := c.flushWarmNode(n, "drain")
	c.mu.RUnlock()
	if !wasCordoned {
		c.auditEvent(AuditEvent{Kind: "node-cordon", Node: name, Allowed: true, Detail: "drain"})
		emit(DrainEvent{Phase: DrainCordoned})
	}
	c.emitWarmEvents(warmEvs)
	// The drain evacuates the workload set present at cordon time and
	// nothing more: if the operator uncordons mid-drain and fresh
	// traffic lands on the node, the newcomers are the operator's
	// choice, not ours to chase — and the bound guarantees termination
	// under sustained deploys.
	initial := make(map[string]bool)
	for _, wl := range c.workloadsOn(name) {
		initial[wl] = true
	}
	res := &DrainResult{Node: name}
	// isCurrent verifies the node object we are draining is still the
	// one the name maps to: a node that failed (and possibly rejoined
	// under the same name — a different object) mid-drain is not ours
	// to cordon, scan, or roll back.
	isCurrent := func() bool {
		c.mu.RLock()
		cur := c.nodes[name]
		c.mu.RUnlock()
		return cur == n
	}
	rollback := func(why string) {
		if !isCurrent() {
			return // our object is orphaned; its flags are moot
		}
		n.mu.Lock()
		undo := n.cordoned && n.cordonOwner == drainID
		if undo {
			n.cordoned = false
			n.cordonOwner = 0
			c.mutate(Mutation{Kind: MutNodeCordon, Node: name, Cordoned: false})
		}
		n.mu.Unlock()
		if undo {
			c.auditEvent(AuditEvent{Kind: "node-uncordon", Node: name, Allowed: true,
				Detail: "drain rollback: " + why})
		}
	}
	// vanished ends the drain when the node object disappeared from
	// under it: the failover that removed it already rescheduled or
	// evicted everything that was left, so there is nothing to migrate
	// and nothing of ours to roll back — and the reborn namesake, if
	// any, must stay untouched.
	vanished := func() (*DrainResult, error) {
		res.AtMs = c.nowMs()
		c.auditEvent(AuditEvent{Kind: "node-drain", Node: name,
			Detail: fmt.Sprintf("node failed mid-drain: %d migrated", len(res.Migrated))})
		emit(DrainEvent{Phase: DrainFailed, Detail: "node failed mid-drain"})
		return res, &NodeNotFoundError{Node: name}
	}

	for {
		// A node already clear of its initial set completes the drain
		// even if ctx just died: the evacuation is done, and reporting
		// it cancelled would roll back the cordon on a node the operator
		// must keep fenced.
		if !c.hasInitialOn(name, initial) {
			break
		}
		if err := ctx.Err(); err != nil {
			res.Cancelled = true
			res.Remaining = c.workloadsOn(name)
			res.AtMs = c.nowMs()
			rollback("cancelled")
			cerr := &CancelledError{Stage: "drain", Err: err}
			c.auditEvent(AuditEvent{Kind: "node-drain", Node: name,
				Detail: fmt.Sprintf("cancelled: %d migrated, %d remaining", len(res.Migrated), len(res.Remaining))})
			emit(DrainEvent{Phase: DrainCancelled, Detail: cerr.Error()})
			return res, cerr
		}

		moved, migEvs, gone, derr := c.migrateNext(name, n, initial)
		c.emitWarmEvents(migEvs)
		if gone {
			return vanished()
		}
		if derr != nil {
			res.Remaining = c.workloadsOn(name)
			res.AtMs = c.nowMs()
			rollback(derr.Err.Error())
			c.auditEvent(AuditEvent{Kind: "node-drain", Node: name,
				Detail: fmt.Sprintf("failed at %s: %d migrated, %d remaining",
					derr.Workload, len(res.Migrated), len(res.Remaining))})
			emit(DrainEvent{Phase: DrainFailed, Workload: derr.Workload, Detail: derr.Error()})
			return res, derr
		}
		if moved == nil {
			break // the initial set is clear
		}
		res.Migrated = append(res.Migrated, moved.Workload)
		c.auditEvent(AuditEvent{Kind: "drain-migrate", Workload: moved.Workload,
			Tenant: moved.Tenant, Node: moved.Node, Allowed: true,
			Detail: fmt.Sprintf("from %s strategy=%s score=%.3f", name, moved.Strategy, moved.Score)})
		emit(DrainEvent{Phase: DrainMigrated, Workload: moved.Workload,
			Target: moved.Node, Score: moved.Score})
	}

	// The node must still be ours to report drained-and-cordoned — if it
	// failed (and possibly rejoined) while the last workloads left, the
	// failover already owns the story.
	if !isCurrent() {
		return vanished()
	}
	// Completion makes the cordon permanent (sticky until an explicit
	// Uncordon): the owner resets so NO drain's rollback may lift it
	// afterwards, and — unless the operator explicitly touched the
	// cordon while we drained (epoch moved) — the flag itself is
	// re-asserted, in case a concurrent drain's cancellation rollback
	// lifted the cordon we were riding mid-flight. "This node is empty
	// and cordoned" is the strongest statement standing; only explicit
	// operator intent overrides it.
	n.mu.Lock()
	if n.cordonEpoch == startEpoch && !n.cordoned {
		n.cordoned = true
		c.mutate(Mutation{Kind: MutNodeCordon, Node: name, Cordoned: true})
	}
	n.cordonOwner = 0
	n.mu.Unlock()
	// Completion evacuated the initial set; anything else on the node
	// arrived after the cordon (an operator uncordon or a concurrent
	// drain's rollback reopened it mid-flight) and is reported, not
	// silently omitted — the operator must not decommission a node that
	// re-hosts workloads.
	res.Remaining = c.workloadsOn(name)
	res.AtMs = c.nowMs()
	c.auditEvent(AuditEvent{Kind: "node-drain", Node: name, Allowed: true,
		Detail: fmt.Sprintf("%d migrated, %d post-cordon arrivals remain", len(res.Migrated), len(res.Remaining))})
	emit(DrainEvent{Phase: DrainCompleted, Detail: fmt.Sprintf("%d migrated", len(res.Migrated))})
	return res, nil
}

// migrateNext moves the lowest-named workload of the drain's initial
// set off the node in one atomic step under the cluster write lock:
// schedule on the rest of the fleet (the node is cordoned, so the
// scheduler excludes it), rewrite the live workload, release the
// source placement. gone reports that the name no longer maps to own —
// the node failed mid-drain (and a namesake may have replaced it), so
// there is nothing of ours left to migrate. Returns (nil, false, nil)
// when the initial set is clear, a *DrainError when the next workload
// fits nowhere.
func (c *Cluster) migrateNext(name string, own *node, initial map[string]bool) (moved *movedWorkload, warmEvs []WarmEvent, gone bool, derr *DrainError) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.nodes[name] != own {
		return nil, nil, true, nil
	}
	var w *Workload
	for _, cand := range c.workloads {
		if cand.Node != name || !initial[cand.Spec.Name] {
			continue
		}
		if w == nil || cand.Spec.Name < w.Spec.Name {
			w = cand
		}
	}
	if w == nil {
		return nil, nil, false, nil
	}
	// The source node is excluded by name, not just by its cordon flag:
	// a concurrent Uncordon must not let the drain migrate a workload
	// back onto the node it is evacuating.
	sched, _, err := c.scheduleExcluding(w.Spec, w.Image, name)
	if err != nil && c.warmEnabled() && isCapacityErr(err) {
		// Warm reservations on the rest of the fleet are reclaimable
		// capacity: evict every idle slot (LRU order) and retry once
		// before declaring the drain stuck.
		if warmEvs = c.reclaimWarmLocked(); len(warmEvs) > 0 {
			sched, _, err = c.scheduleExcluding(w.Spec, w.Image, name)
		}
	}
	if err != nil {
		return nil, warmEvs, false, &DrainError{Node: name, Workload: w.Spec.Name, Err: err}
	}
	old := *w
	*w = *sched
	c.mutatePlace(w)
	own.mu.Lock()
	own.releaseLocked(old.Spec.Name, old.VMID, old.Spec.Resources, old.Spec.Tenant)
	own.mu.Unlock()
	// A migrated workload no longer lives in the warm slot it may have
	// claimed at deploy time — sever the binding so pool bookkeeping
	// follows the workload's real placement.
	c.warm.DropClaimed(old.Spec.Name)
	// Tenant quota usage is unchanged: the same spec keeps running, it
	// just lives on another node now.
	return &movedWorkload{Workload: w.Spec.Name, Tenant: w.Spec.Tenant,
		Node: w.Node, Strategy: w.Strategy, Score: w.Score}, warmEvs, false, nil
}

// workloadsOn lists the workloads currently on a node, sorted (the
// drain's Remaining report).
func (c *Cluster) workloadsOn(name string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for _, w := range c.workloads {
		if w.Node == name {
			out = append(out, w.Spec.Name)
		}
	}
	sort.Strings(out)
	return out
}

// hasInitialOn reports whether any of the drain's initial workload set
// still runs on the node.
func (c *Cluster) hasInitialOn(name string, initial map[string]bool) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, w := range c.workloads {
		if w.Node == name && initial[w.Spec.Name] {
			return true
		}
	}
	return false
}
