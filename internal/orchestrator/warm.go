package orchestrator

// Warm-slot runtime pool integration (see internal/orchestrator/warmpool
// for the pool itself). When Settings.WarmPoolEnabled is on, stopping a
// workload whose VM would empty parks the VM as an idle warm slot on its
// node — capacity stays reserved, tenant quota and scheduler inputs are
// released — and a later deploy of the same (tenant, image digest)
// claims the slot in O(1) inside its reservation critical section,
// skipping scheduler filter/score and VM spin-up (the admission scan
// fan-out was already skipped by the verdict cache).
//
// The fast path never weakens admission. A claim happens only after the
// deploy's own RBAC check, image pull (signature re-verified per
// policy), admission fan-out, duplicate-name check, and quota charge —
// and is then revalidated at claim time: every cacheable controller
// must still hold a clean cached verdict for the digest, and the slot's
// node must still be alive and uncordoned (checked under the node lock
// that also commits the revival, so there is no window).
//
// Lifecycle wiring:
//
//   - Cordon (and drain's cordon) flushes the node's idle slots — their
//     reservations are released before any migration accounting runs.
//   - FailNode discards the node's idle slots and the claimed bindings
//     of its victims; both die with the node object.
//   - A deploy, drain migration, or failover reschedule that finds no
//     capacity evicts idle slots (pressure reclaim) and retries once,
//     so parked capacity never turns a placeable workload away.
//   - Parking evicts LRU slots on the node whenever utilization crosses
//     Settings.WarmPoolHighWatermarkPct, down to the low watermark.
//   - ImportState resets the pool: warm slots are deliberately not
//     persisted, so kill-restart recovery starts cold.
//
// Ownership: removing a slot from the pool is the linearization point.
// Whoever removes it (claim, evict, flush) owns — and must settle — the
// node-side capacity reservation. n.used is adjusted under n.mu only.
//
// Every transition is published through the WarmEventSink (outside all
// locks) as slot.hit / slot.miss / slot.evict / slot.flush.

import (
	"errors"
	"fmt"

	"genio/internal/container"
	"genio/internal/orchestrator/warmpool"
)

// isCapacityErr reports whether a scheduling failure is a capacity
// shortfall (the only failure mode pressure-reclaiming warm slots can
// fix).
func isCapacityErr(err error) bool {
	var capErr *CapacityError
	return errors.As(err, &capErr)
}

// Warm-slot event kinds.
const (
	// WarmHit: a deploy claimed an idle slot (the O(1) fast path).
	WarmHit = "hit"
	// WarmMiss: warm pool enabled but no claimable slot for the digest.
	WarmMiss = "miss"
	// WarmEvict: an idle slot was discarded — watermark or capacity
	// pressure, or failed claim-time revalidation.
	WarmEvict = "evict"
	// WarmFlush: a node's idle slots were dropped wholesale — cordon,
	// drain, node failure, platform close.
	WarmFlush = "flush"
)

// Default eviction watermarks (percent of node capacity, max of the CPU
// and memory dimensions), applied when the Settings fields are zero.
const (
	DefaultWarmPoolHighWatermarkPct = 85
	DefaultWarmPoolLowWatermarkPct  = 60
)

// WarmEvent is one warm-slot lifecycle transition, reported through the
// WarmEventSink. The platform mirrors it onto the spine as a
// slot.<Kind> metric plus (for hit/evict/flush) an audit record.
type WarmEvent struct {
	Kind     string `json:"kind"`
	Node     string `json:"node,omitempty"`
	Tenant   string `json:"tenant,omitempty"`
	Digest   string `json:"digest,omitempty"`
	Workload string `json:"workload,omitempty"`
	// Count is the number of slots the event covers (flushes aggregate
	// per node; hits, misses, and evictions report 1).
	Count int `json:"count"`
	// Reason qualifies evictions and flushes: watermark | pressure |
	// revalidation | cordon | drain | node-fail | close.
	Reason string `json:"reason,omitempty"`
	AtMs   int64  `json:"atMs,omitempty"`
}

// WarmEventSink receives warm-slot lifecycle events. Like AuditSink it
// is invoked outside cluster locks on the operation's goroutine, so it
// may call back into read-side queries but should return quickly.
type WarmEventSink func(WarmEvent)

// SetWarmEventSink installs the warm-slot event sink (nil disables).
func (c *Cluster) SetWarmEventSink(fn WarmEventSink) {
	if fn == nil {
		c.warmEvents.Store(nil)
		return
	}
	c.warmEvents.Store(&fn)
}

// warmEnabled reports whether the warm pool is active.
func (c *Cluster) warmEnabled() bool {
	return c.Settings.WarmPoolEnabled
}

// warmWatermarks resolves the configured eviction watermarks, mapping
// zero values onto the defaults and clamping low <= high.
func (c *Cluster) warmWatermarks() (high, low int) {
	high, low = c.Settings.WarmPoolHighWatermarkPct, c.Settings.WarmPoolLowWatermarkPct
	if high <= 0 {
		high = DefaultWarmPoolHighWatermarkPct
	}
	if low <= 0 {
		low = DefaultWarmPoolLowWatermarkPct
	}
	if low > high {
		low = high
	}
	return high, low
}

// emitWarmEvents stamps and forwards warm events to the sink; a no-op
// without one. Never call while holding c.mu or a node lock.
func (c *Cluster) emitWarmEvents(evs []WarmEvent) {
	if len(evs) == 0 {
		return
	}
	fn := c.warmEvents.Load()
	if fn == nil {
		return
	}
	for _, ev := range evs {
		if ev.AtMs == 0 {
			ev.AtMs = c.nowMs()
		}
		(*fn)(ev)
	}
}

// exceedsPct reports whether used crosses pct percent of capacity on
// either resource dimension (a zero-capacity dimension never trips).
func exceedsPct(used, capacity Resources, pct int) bool {
	return used.CPUMilli*100 > capacity.CPUMilli*pct ||
		used.MemoryMB*100 > capacity.MemoryMB*pct
}

// deployDigest computes the image digest for one deploy call — once,
// shared by the admission verdict cache and the warm-slot claim. It
// returns "" when neither consumer needs it. Image.Digest itself is
// deliberately not memoized across calls: a later deploy of a tampered
// image object must re-hash and produce a different digest (and so miss
// both the verdict cache and the warm pool).
func (c *Cluster) deployDigest(img *container.Image) string {
	if c.warmEnabled() {
		return img.Digest()
	}
	if c.AdmissionCacheDisabled {
		return ""
	}
	c.admMu.RLock()
	cacheable := false
	for _, a := range c.admission {
		if a.cacheable {
			cacheable = true
			break
		}
	}
	c.admMu.RUnlock()
	if !cacheable {
		return ""
	}
	return img.Digest()
}

// verdictsStillClean is the claim-time admission revalidation: every
// cacheable controller must still hold a clean cached verdict for the
// digest. Vacuously true with no cacheable controllers (the admission
// chain itself just ran for this very deploy). False whenever the
// verdict cache is administratively disabled — the fast path requires a
// *cached* clean verdict by contract.
func (c *Cluster) verdictsStillClean(digest string) bool {
	if c.AdmissionCacheDisabled {
		return false
	}
	c.admMu.RLock()
	defer c.admMu.RUnlock()
	for _, a := range c.admission {
		if !a.cacheable {
			continue
		}
		if _, ok := c.admCache.Load(a.name + "\x00" + digest); !ok {
			return false
		}
	}
	return true
}

// claimWarmLocked attempts the O(1) fast path for one deploy: claim an
// idle warm slot of (tenant, digest) whose resources and isolation mode
// match the spec, revalidating at claim time. Callers hold c.mu (write)
// with the name and quota reservation already charged. On a hit the
// returned Workload is fully committed node-side (VM revived, tenant
// count bumped; n.used unchanged — the idle reservation became usage)
// and only the cluster-table insertion is left to the caller. The
// returned events (hit or miss, plus any revalidation evictions) must
// be emitted after c.mu is released.
func (c *Cluster) claimWarmLocked(spec WorkloadSpec, img *container.Image, digest string) (*Workload, []WarmEvent) {
	var evs []WarmEvent
	miss := func(reason string) (*Workload, []WarmEvent) {
		c.warm.RecordMiss()
		return nil, append(evs, WarmEvent{Kind: WarmMiss, Tenant: spec.Tenant,
			Digest: digest, Workload: spec.Name, Count: 1, Reason: reason})
	}
	if !c.verdictsStillClean(digest) {
		return miss("verdict revalidation")
	}
	hard := spec.Isolation == IsolationHard
	match := func(s *warmpool.Slot) bool {
		return s.Res == spec.Resources && s.Dedicated == hard
	}
	for {
		s := c.warm.TakeMRU(spec.Tenant, digest, match)
		if s == nil {
			return miss("no idle slot")
		}
		// Taking the slot made us its owner; validate the node under the
		// same lock that commits the revival, so a cordon can never slip
		// between the check and the placement.
		n, alive := c.nodes[s.Node]
		if !alive {
			// The node died and took the reservation with it (failover
			// discards these; this is the belt to that suspender).
			c.warm.RecordEvict(1)
			evs = append(evs, warmEvictEvent(s, "revalidation"))
			continue
		}
		n.mu.Lock()
		if n.cordoned {
			n.used = n.used.Sub(s.Res)
			n.mu.Unlock()
			c.warm.RecordEvict(1)
			evs = append(evs, warmEvictEvent(s, "revalidation"))
			continue
		}
		vm := &VM{ID: s.VMID, Node: s.Node, Tenant: s.Tenant,
			Dedicated: s.Dedicated, Workloads: []string{spec.Name}}
		n.vms[vm.ID] = vm
		if !vm.Dedicated {
			n.sharedVMs++
		}
		n.tenants[spec.Tenant]++
		n.mu.Unlock()
		c.warm.BindClaim(spec.Name, s)
		w := &Workload{Spec: spec, Image: img, Node: s.Node, VMID: s.VMID,
			PlacedAtMs: c.nowMs(), Strategy: "warm", digest: digest}
		evs = append(evs, WarmEvent{Kind: WarmHit, Node: s.Node, Tenant: spec.Tenant,
			Digest: digest, Workload: spec.Name, Count: 1})
		return w, evs
	}
}

// warmEvictEvent builds one eviction event for a slot.
func warmEvictEvent(s *warmpool.Slot, reason string) WarmEvent {
	return WarmEvent{Kind: WarmEvict, Node: s.Node, Tenant: s.Tenant,
		Digest: s.Digest, Count: 1, Reason: reason}
}

// parkOnStopLocked parks a stopping workload's VM as an idle warm slot
// when eligible: warm pool on, image digest known, node alive and
// uncordoned, and the workload is its VM's only occupant (the VM would
// be torn down otherwise — a shared VM with co-tenants keeps running
// and cannot be parked). Callers hold c.mu (write); the workload is
// already out of the table and its tenant quota released.
//
// Parking releases everything releaseLocked would EXCEPT node capacity:
// the VM leaves n.vms (so reads never see a VM without workloads), the
// tenant and shared-VM scheduler inputs drop, but n.used keeps the
// slot's reservation — that is what makes the later claim O(1) safe.
// After the park, the node's LRU idle slots are evicted while
// utilization sits above the high watermark, down to the low one.
// Returns false when ineligible (the caller releases normally).
func (c *Cluster) parkOnStopLocked(w *Workload, evs *[]WarmEvent) bool {
	if !c.warmEnabled() || w.Image == nil {
		return false
	}
	n, alive := c.nodes[w.Node]
	if !alive {
		return false
	}
	// The deploy-time digest describes what the VM runs; re-hashing the
	// image object here would only cost CPU (and, if the object were
	// tampered in memory after deploy, would mislabel the slot with
	// content the VM does not contain). Workloads recovered from
	// persisted state carry no digest — hash once for those.
	digest := w.digest
	if digest == "" {
		digest = w.Image.Digest()
	}
	name := w.Spec.Name
	n.mu.Lock()
	vm := n.vms[w.VMID]
	if n.cordoned || vm == nil || len(vm.Workloads) != 1 || vm.Workloads[0] != name {
		n.mu.Unlock()
		return false
	}
	if n.tenants[w.Spec.Tenant] > 1 {
		n.tenants[w.Spec.Tenant]--
	} else {
		delete(n.tenants, w.Spec.Tenant)
	}
	delete(n.vms, w.VMID)
	if !vm.Dedicated {
		n.sharedVMs--
	}
	n.mu.Unlock()
	// Pool insertion happens outside n.mu (pool methods are never nested
	// inside node locks); c.mu (write) makes park-then-evict atomic
	// against every other pool mutator, which all hold c.mu too.
	c.warm.Park(warmpool.Slot{Tenant: w.Spec.Tenant, Digest: digest,
		Node: w.Node, VMID: w.VMID, Res: w.Spec.Resources,
		Dedicated: vm.Dedicated, IdleSinceMs: c.nowMs()})
	high, low := c.warmWatermarks()
	n.mu.Lock()
	over := exceedsPct(n.used, n.capacity, high)
	n.mu.Unlock()
	for over {
		s := c.warm.EvictLRU(n.name)
		if s == nil {
			break // nothing left to evict; the usage is all real workloads
		}
		n.mu.Lock()
		n.used = n.used.Sub(s.Res)
		over = exceedsPct(n.used, n.capacity, low)
		n.mu.Unlock()
		*evs = append(*evs, warmEvictEvent(s, "watermark"))
	}
	return true
}

// flushWarmNode removes every idle slot parked on n and releases their
// reservations — the cordon/drain hook, called with the cordon flag
// already set so no new park can race in (parks re-check the flag under
// n.mu while holding c.mu write; this runs under c.mu read). Returns
// one aggregate flush event, or no events when the node had no slots.
func (c *Cluster) flushWarmNode(n *node, reason string) []WarmEvent {
	slots, _ := c.warm.FlushNode(n.name, false)
	if len(slots) == 0 {
		return nil
	}
	n.mu.Lock()
	for _, s := range slots {
		n.used = n.used.Sub(s.Res)
	}
	n.mu.Unlock()
	return []WarmEvent{{Kind: WarmFlush, Node: n.name, Count: len(slots), Reason: reason}}
}

// reclaimWarmLocked evicts every idle slot in LRU order, releasing the
// reservations — the capacity-pressure backstop taken when a placement
// finds no fit: parked warm capacity must never turn a placeable
// workload away. Callers hold c.mu (read or write).
func (c *Cluster) reclaimWarmLocked() []WarmEvent {
	var evs []WarmEvent
	for {
		s := c.warm.EvictLRU("")
		if s == nil {
			return evs
		}
		if n, alive := c.nodes[s.Node]; alive {
			n.mu.Lock()
			n.used = n.used.Sub(s.Res)
			n.mu.Unlock()
		}
		evs = append(evs, warmEvictEvent(s, "pressure"))
	}
}

// FlushWarmSlots drops every idle warm slot and releases the
// reservations — the platform calls this on Close, before the spine
// stops, so the flush events still publish. Reason tags the events.
func (c *Cluster) FlushWarmSlots(reason string) {
	var evs []WarmEvent
	c.mu.RLock()
	perNode := make(map[string]int)
	for _, s := range c.warm.FlushAll() {
		if n, alive := c.nodes[s.Node]; alive {
			n.mu.Lock()
			n.used = n.used.Sub(s.Res)
			n.mu.Unlock()
		}
		perNode[s.Node]++
	}
	for _, n := range c.candidates { // name-sorted: deterministic event order
		if count := perNode[n.name]; count > 0 {
			evs = append(evs, WarmEvent{Kind: WarmFlush, Node: n.name, Count: count, Reason: reason})
		}
	}
	c.mu.RUnlock()
	c.emitWarmEvents(evs)
}

// WarmPools returns the per-(tenant, digest) warm pool table, sorted.
func (c *Cluster) WarmPools() []warmpool.PoolRow {
	return c.warm.Rows()
}

// WarmCounters returns the warm pool's lifecycle totals.
func (c *Cluster) WarmCounters() warmpool.Counters {
	return c.warm.Counters()
}

// WarmIdleSlots returns value snapshots of every idle warm slot,
// Seq-ascending — the simulator's warm-slots-never-leak invariant
// recomputes node accounting from these.
func (c *Cluster) WarmIdleSlots() []warmpool.Slot {
	return c.warm.Idle()
}

// WarmClaims returns value snapshots of every claimed-slot binding,
// sorted by workload name.
func (c *Cluster) WarmClaims() []warmpool.Claim {
	return c.warm.Claims()
}

// WarmSlotCount returns the number of idle warm slots.
func (c *Cluster) WarmSlotCount() int {
	return c.warm.IdleCount()
}

// warmDetail renders a compact per-pool summary for audit details.
func warmDetail(ev WarmEvent) string {
	switch ev.Kind {
	case WarmFlush:
		return fmt.Sprintf("%d slot(s): %s", ev.Count, ev.Reason)
	case WarmEvict:
		return ev.Reason
	default:
		return ""
	}
}

// WarmAudit translates a warm event into the audit-event vocabulary
// (kind "slot-hit" | "slot-evict" | "slot-flush"); the platform feeds
// these to its audit topic alongside the slot.* metrics.
func WarmAudit(ev WarmEvent) AuditEvent {
	return AuditEvent{Kind: "slot-" + ev.Kind, Workload: ev.Workload,
		Tenant: ev.Tenant, Node: ev.Node, Allowed: true,
		Detail: warmDetail(ev), AtMs: ev.AtMs}
}
