package warmpool

import (
	"fmt"
	"sync"
	"testing"
)

func slot(tenant, digest, node, vm string, dedicated bool) Slot {
	return Slot{
		Tenant: tenant, Digest: digest, Node: node, VMID: vm,
		Res:       Resources{CPUMilli: 500, MemoryMB: 512},
		Dedicated: dedicated,
	}
}

func TestTakeMRUWarmestFirst(t *testing.T) {
	p := New()
	p.Park(slot("acme", "d1", "n1", "vm-1", true))
	p.Park(slot("acme", "d1", "n1", "vm-2", true))
	p.Park(slot("acme", "d1", "n2", "vm-3", true))

	all := func(*Slot) bool { return true }
	if s := p.TakeMRU("acme", "d1", all); s == nil || s.VMID != "vm-3" {
		t.Fatalf("first take = %+v, want the most recently parked vm-3", s)
	}
	if s := p.TakeMRU("acme", "d1", all); s == nil || s.VMID != "vm-2" {
		t.Fatalf("second take = %+v, want vm-2", s)
	}
	// Wrong tenant or digest never matches, whatever is idle.
	if s := p.TakeMRU("rival", "d1", all); s != nil {
		t.Fatalf("cross-tenant take = %+v, want nil", s)
	}
	if s := p.TakeMRU("acme", "d2", all); s != nil {
		t.Fatalf("cross-digest take = %+v, want nil", s)
	}
	if s := p.TakeMRU("acme", "d1", all); s == nil || s.VMID != "vm-1" {
		t.Fatalf("third take = %+v, want vm-1", s)
	}
	if s := p.TakeMRU("acme", "d1", all); s != nil {
		t.Fatalf("empty pool take = %+v, want nil", s)
	}
}

func TestTakeMRUMatchFilter(t *testing.T) {
	p := New()
	p.Park(slot("acme", "d1", "n1", "vm-soft", false))
	p.Park(slot("acme", "d1", "n1", "vm-hard", true))

	// A hard-isolation deploy skips the newer slot if it doesn't match.
	s := p.TakeMRU("acme", "d1", func(s *Slot) bool { return !s.Dedicated })
	if s == nil || s.VMID != "vm-soft" {
		t.Fatalf("filtered take = %+v, want vm-soft", s)
	}
	// The non-matching slot stays idle.
	if n := p.IdleCount(); n != 1 {
		t.Fatalf("idle after filtered take = %d, want 1", n)
	}
}

func TestEvictLRUColdestFirst(t *testing.T) {
	p := New()
	p.Park(slot("acme", "d1", "n1", "vm-1", true))
	p.Park(slot("acme", "d2", "n2", "vm-2", true))
	p.Park(slot("acme", "d1", "n1", "vm-3", true))

	if s := p.EvictLRU("n1"); s == nil || s.VMID != "vm-1" {
		t.Fatalf("evict n1 = %+v, want the oldest vm-1", s)
	}
	// Any-node eviction takes the global LRU.
	if s := p.EvictLRU(""); s == nil || s.VMID != "vm-2" {
		t.Fatalf("evict any = %+v, want vm-2", s)
	}
	if s := p.EvictLRU("n2"); s != nil {
		t.Fatalf("evict empty node = %+v, want nil", s)
	}
	if c := p.Counters(); c.Evicted != 2 {
		t.Fatalf("evicted counter = %d, want 2", c.Evicted)
	}
}

func TestFlushNode(t *testing.T) {
	p := New()
	p.Park(slot("acme", "d1", "n1", "vm-1", true))
	p.Park(slot("acme", "d1", "n2", "vm-2", true))
	p.Park(slot("rival", "d2", "n1", "vm-3", true))
	c1 := p.TakeMRU("acme", "d1", func(s *Slot) bool { return s.Node == "n1" })
	p.BindClaim("wl-a", c1)

	idle, claims := p.FlushNode("n1", false)
	if len(idle) != 1 || idle[0].VMID != "vm-3" {
		t.Fatalf("flushed idle = %+v, want just vm-3", idle)
	}
	if len(claims) != 0 {
		t.Fatalf("claims dropped without alsoClaims: %v", claims)
	}
	// The claimed binding survives a plain flush but dies with the node.
	idle, claims = p.FlushNode("n1", true)
	if len(idle) != 0 || len(claims) != 1 || claims[0] != "wl-a" {
		t.Fatalf("node-fail flush = (%v, %v), want claim wl-a dropped", idle, claims)
	}
	if got := p.Counters(); got.Flushed != 1 {
		t.Fatalf("flushed counter = %d, want 1 (claims are not flushes)", got.Flushed)
	}
	if n := p.IdleCount(); n != 1 {
		t.Fatalf("idle after flush = %d, want vm-2 only", n)
	}
}

func TestFlushAllLeavesClaims(t *testing.T) {
	p := New()
	p.Park(slot("acme", "d1", "n1", "vm-1", true))
	p.Park(slot("acme", "d1", "n2", "vm-2", true))
	s := p.TakeMRU("acme", "d1", func(*Slot) bool { return true })
	p.BindClaim("wl-a", s)

	out := p.FlushAll()
	if len(out) != 1 || out[0].VMID != "vm-1" {
		t.Fatalf("FlushAll = %+v, want just the idle vm-1", out)
	}
	if got := len(p.Claims()); got != 1 {
		t.Fatalf("claims after FlushAll = %d, want 1 (claims belong to live workloads)", got)
	}
	if s := p.DropClaimed("wl-a"); s == nil || s.VMID != "vm-2" {
		t.Fatalf("DropClaimed = %+v, want vm-2", s)
	}
	if s := p.DropClaimed("wl-a"); s != nil {
		t.Fatalf("double DropClaimed = %+v, want nil", s)
	}
}

func TestResetClearsEverything(t *testing.T) {
	p := New()
	p.Park(slot("acme", "d1", "n1", "vm-1", true))
	p.BindClaim("wl-a", p.TakeMRU("acme", "d1", func(*Slot) bool { return true }))
	p.RecordMiss()
	p.Reset()
	if p.IdleCount() != 0 || len(p.Claims()) != 0 {
		t.Fatal("Reset left slots behind")
	}
	if c := p.Counters(); c != (Counters{}) {
		t.Fatalf("Reset left counters %+v", c)
	}
	// Seq restarts too — the first park after a reset is Seq 1 again,
	// which keeps recovered clusters byte-deterministic in the sim.
	if s := p.Park(slot("acme", "d1", "n1", "vm-1", true)); s.Seq != 1 {
		t.Fatalf("Seq after Reset = %d, want 1", s.Seq)
	}
}

func TestRowsAndNodeCounts(t *testing.T) {
	p := New()
	p.Park(slot("acme", "d1", "n1", "vm-1", true))
	p.Park(slot("acme", "d2", "n2", "vm-2", true))
	p.Park(slot("rival", "d1", "n1", "vm-3", true))
	p.BindClaim("wl-a", p.TakeMRU("acme", "d2", func(*Slot) bool { return true }))

	rows := p.Rows()
	want := []PoolRow{
		{Tenant: "acme", Digest: "d1", Idle: 1},
		{Tenant: "acme", Digest: "d2", Claimed: 1},
		{Tenant: "rival", Digest: "d1", Idle: 1},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %+v, want %+v", rows, want)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("row %d = %+v, want %+v", i, rows[i], want[i])
		}
	}
	counts := p.NodeCounts()
	if c := counts["n1"]; c.Idle != 2 || c.Claimed != 0 {
		t.Fatalf("n1 counts = %+v", c)
	}
	if c := counts["n2"]; c.Idle != 0 || c.Claimed != 1 {
		t.Fatalf("n2 counts = %+v", c)
	}
}

// TestPoolConcurrentOps hammers every pool operation from concurrent
// goroutines; run under -race this pins the pool's internal locking.
// Each parked slot is taken/evicted/flushed by exactly one remover, so
// the total of removals must equal the total of parks.
func TestPoolConcurrentOps(t *testing.T) {
	p := New()
	const workers = 8
	const perWorker = 200
	var removed sync.Map // VMID -> remover tag
	var wg sync.WaitGroup

	record := func(t *testing.T, s *Slot, tag string) {
		if s == nil {
			return
		}
		if prev, dup := removed.LoadOrStore(s.VMID, tag); dup {
			t.Errorf("slot %s removed twice: %v then %v", s.VMID, prev, tag)
		}
	}

	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				vm := fmt.Sprintf("vm-%d-%d", g, i)
				node := fmt.Sprintf("n%d", i%3)
				p.Park(slot("acme", "d1", node, vm, true))
				switch i % 4 {
				case 0:
					record(t, p.TakeMRU("acme", "d1", func(*Slot) bool { return true }), "take")
				case 1:
					record(t, p.EvictLRU(node), "evict")
				case 2:
					idle, _ := p.FlushNode(node, false)
					for _, s := range idle {
						record(t, s, "flush")
					}
				default:
					p.RecordMiss()
					_ = p.NodeCounts()
					_ = p.Rows()
				}
			}
		}(g)
	}
	wg.Wait()

	// Drain what's left; every parked slot must be accounted exactly once.
	for _, s := range p.FlushAll() {
		record(t, s, "final-flush")
	}
	total := 0
	removed.Range(func(_, _ any) bool { total++; return true })
	if want := workers * perWorker; total != want {
		t.Fatalf("slots accounted = %d, want %d", total, want)
	}
	if p.IdleCount() != 0 {
		t.Fatalf("pool not empty after final flush: %d idle", p.IdleCount())
	}
}
