// Package warmpool holds the warm-slot runtime pool: per-(tenant,
// image-digest) pools of sandbox/VM slots kept warm after a workload
// stops, so a repeat deploy of an already-vetted image claims a slot in
// O(1) instead of paying scan fan-out, scheduler filter/score, and VM
// spin-up again.
//
// A slot moves through three states:
//
//	idle    — parked on a node, its capacity still reserved there
//	claimed — bound to exactly one live workload (the fast deploy path)
//	evicted — removed: watermark pressure, cordon/drain flush, node
//	          failure, pool close. Evicted slots are gone; the state
//	          exists only in the lifecycle vocabulary and the counters.
//
// The pool is pure bookkeeping: it never touches node capacity or the
// workload table. Removal from the pool (TakeMRU, EvictLRU, FlushNode,
// FlushAll) is the linearization point for slot ownership — exactly one
// caller removes any given slot, and that caller owns the node-side
// capacity reservation the slot was holding. Pool methods never call
// out while holding the pool mutex (match callbacks must be pure), so
// callers may combine pool operations with their own node or cluster
// locks in either order without deadlock.
//
// Determinism: slots are ordered by a monotonic sequence number, never
// by map iteration. Claims take the most recently parked slot (warmest
// first); eviction takes the least recently parked (LRU). Replayed
// simulation runs therefore claim and evict identically.
package warmpool

import (
	"sort"
	"sync"

	"genio/internal/orchestrator/scheduler"
)

// Resources mirrors the scheduler's demand/capacity vocabulary.
type Resources = scheduler.Resources

// Slot is one warm sandbox/VM slot. While idle its Res stays reserved
// against Node's capacity; the VM identity (VMID, Dedicated) is revived
// verbatim when the slot is claimed.
type Slot struct {
	Tenant string    `json:"tenant"`
	Digest string    `json:"digest"`
	Node   string    `json:"node"`
	VMID   string    `json:"vmId"`
	Res    Resources `json:"res"`
	// Dedicated records the parked VM's isolation mode: a dedicated
	// (hard-isolation) slot only satisfies hard-isolation deploys.
	Dedicated bool `json:"dedicated,omitempty"`
	// Seq is the monotonic park order — the LRU/MRU axis. Unique per
	// pool lifetime.
	Seq uint64 `json:"seq"`
	// IdleSinceMs is the cluster-clock park time (zero without a clock).
	IdleSinceMs int64 `json:"idleSinceMs,omitempty"`
}

// Counters are the pool's monotonic lifecycle totals, mirrored onto the
// spine as slot.hit / slot.miss / slot.evict / slot.flush metrics.
type Counters struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Evicted uint64 `json:"evicted"`
	Flushed uint64 `json:"flushed"`
}

// PoolRow is one (tenant, digest) pool's snapshot for reporting.
type PoolRow struct {
	Tenant  string `json:"tenant"`
	Digest  string `json:"digest"`
	Idle    int    `json:"idle"`
	Claimed int    `json:"claimed"`
}

// NodeCount is one node's warm-slot census.
type NodeCount struct {
	Idle    int `json:"idle"`
	Claimed int `json:"claimed"`
}

// Claim is one claimed-slot record: the workload a slot is bound to.
type Claim struct {
	Workload string `json:"workload"`
	Slot     Slot   `json:"slot"`
}

type key struct{ tenant, digest string }

// Pool is the warm-slot registry. Safe for concurrent use.
type Pool struct {
	mu   sync.Mutex
	seq  uint64
	idle map[key][]*Slot // Seq-ascending within each pool
	// claimed maps workload name -> the slot it claimed, kept so stop,
	// migration, and failover can retire the binding, and so per-node
	// claimed counts are reportable.
	claimed  map[string]*Slot
	counters Counters
}

// New returns an empty pool.
func New() *Pool {
	return &Pool{idle: make(map[key][]*Slot), claimed: make(map[string]*Slot)}
}

// Park adds an idle slot (Seq is assigned here) and returns it.
func (p *Pool) Park(s Slot) *Slot {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seq++
	s.Seq = p.seq
	k := key{s.Tenant, s.Digest}
	sp := &s
	p.idle[k] = append(p.idle[k], sp)
	return sp
}

// TakeMRU removes and returns the most recently parked idle slot of the
// (tenant, digest) pool accepted by match (which must be pure: no locks,
// no pool calls), or nil. The returned slot is owned by the caller —
// bind it with BindClaim on success, or account its reservation and
// RecordEvict it if validation fails outside the pool.
func (p *Pool) TakeMRU(tenant, digest string, match func(*Slot) bool) *Slot {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := key{tenant, digest}
	slots := p.idle[k]
	for i := len(slots) - 1; i >= 0; i-- {
		if !match(slots[i]) {
			continue
		}
		s := slots[i]
		p.removeIdleLocked(k, i)
		return s
	}
	return nil
}

// BindClaim records a successful claim: the slot binds to the workload
// and the hit counter advances.
func (p *Pool) BindClaim(workload string, s *Slot) {
	p.mu.Lock()
	p.claimed[workload] = s
	p.counters.Hits++
	p.mu.Unlock()
}

// RecordMiss counts a warm-path miss (no claimable slot, or claim-time
// revalidation failed).
func (p *Pool) RecordMiss() {
	p.mu.Lock()
	p.counters.Misses++
	p.mu.Unlock()
}

// RecordEvict counts n evictions decided outside the pool (a taken slot
// that failed claim-time revalidation and was discarded).
func (p *Pool) RecordEvict(n int) {
	p.mu.Lock()
	p.counters.Evicted += uint64(n)
	p.mu.Unlock()
}

// removeIdleLocked drops index i from one pool's slice, preserving Seq
// order. Callers hold p.mu.
func (p *Pool) removeIdleLocked(k key, i int) {
	slots := p.idle[k]
	slots = append(slots[:i], slots[i+1:]...)
	if len(slots) == 0 {
		delete(p.idle, k)
	} else {
		p.idle[k] = slots
	}
}

// DropClaimed retires a workload's claimed-slot binding (stop, migrate,
// failover). Returns the slot, or nil if the workload held none.
func (p *Pool) DropClaimed(workload string) *Slot {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.claimed[workload]
	if !ok {
		return nil
	}
	delete(p.claimed, workload)
	return s
}

// EvictLRU removes, counts, and returns the least recently parked idle
// slot on node (any node when node is empty); nil when none is idle
// there. The caller owns the released reservation.
func (p *Pool) EvictLRU(node string) *Slot {
	p.mu.Lock()
	defer p.mu.Unlock()
	bk, bi := key{}, -1
	var best *Slot
	for k, slots := range p.idle {
		for i, s := range slots {
			if node != "" && s.Node != node {
				continue
			}
			// Slices are Seq-ascending: the first node match is this
			// pool's LRU, so the scan moves to the next pool.
			if best == nil || s.Seq < best.Seq {
				best, bk, bi = s, k, i
			}
			break
		}
	}
	if best == nil {
		return nil
	}
	p.removeIdleLocked(bk, bi)
	p.counters.Evicted++
	return best
}

// FlushNode removes every idle slot parked on node (cordon, drain, node
// failure), returned Seq-ascending and counted as flushed. The caller
// owns the released reservations. When alsoClaims is true, claimed
// bindings on the node are dropped too (node failure: the victims are
// rescheduled or evicted, so their bindings die with the node) and the
// affected workload names are returned sorted.
func (p *Pool) FlushNode(node string, alsoClaims bool) (idle []*Slot, claimedWorkloads []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for k, slots := range p.idle {
		kept := slots[:0]
		for _, s := range slots {
			if s.Node == node {
				idle = append(idle, s)
				p.counters.Flushed++
			} else {
				kept = append(kept, s)
			}
		}
		if len(kept) == 0 {
			delete(p.idle, k)
		} else {
			p.idle[k] = kept
		}
	}
	sort.Slice(idle, func(i, j int) bool { return idle[i].Seq < idle[j].Seq })
	if alsoClaims {
		for wl, s := range p.claimed {
			if s.Node == node {
				claimedWorkloads = append(claimedWorkloads, wl)
			}
		}
		for _, wl := range claimedWorkloads {
			delete(p.claimed, wl)
		}
		sort.Strings(claimedWorkloads)
	}
	return idle, claimedWorkloads
}

// FlushAll removes every idle slot (platform close), returned
// Seq-ascending and counted as flushed. Claimed bindings stay: their
// workloads are live until the cluster itself goes away.
func (p *Pool) FlushAll() []*Slot {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*Slot
	for _, slots := range p.idle {
		out = append(out, slots...)
	}
	p.counters.Flushed += uint64(len(out))
	p.idle = make(map[key][]*Slot)
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Reset discards all slots, bindings, and counters — state import.
// Warm slots are deliberately never persisted, so kill-restart recovery
// starts cold; Reset is what enforces that on the importing side.
func (p *Pool) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.idle = make(map[key][]*Slot)
	p.claimed = make(map[string]*Slot)
	p.counters = Counters{}
	p.seq = 0
}

// Counters returns the lifecycle totals.
func (p *Pool) Counters() Counters {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counters
}

// IdleCount returns the total number of idle slots.
func (p *Pool) IdleCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, slots := range p.idle {
		n += len(slots)
	}
	return n
}

// NodeCounts returns the per-node idle/claimed census.
func (p *Pool) NodeCounts() map[string]NodeCount {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]NodeCount)
	for _, slots := range p.idle {
		for _, s := range slots {
			c := out[s.Node]
			c.Idle++
			out[s.Node] = c
		}
	}
	for _, s := range p.claimed {
		c := out[s.Node]
		c.Claimed++
		out[s.Node] = c
	}
	return out
}

// Rows returns the per-(tenant, digest) pool table, sorted by tenant
// then digest. Pools with only claimed slots still appear.
func (p *Pool) Rows() []PoolRow {
	p.mu.Lock()
	defer p.mu.Unlock()
	acc := make(map[key]*PoolRow)
	for k, slots := range p.idle {
		acc[k] = &PoolRow{Tenant: k.tenant, Digest: k.digest, Idle: len(slots)}
	}
	for _, s := range p.claimed {
		k := key{s.Tenant, s.Digest}
		r := acc[k]
		if r == nil {
			r = &PoolRow{Tenant: k.tenant, Digest: k.digest}
			acc[k] = r
		}
		r.Claimed++
	}
	out := make([]PoolRow, 0, len(acc))
	for _, r := range acc {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tenant != out[j].Tenant {
			return out[i].Tenant < out[j].Tenant
		}
		return out[i].Digest < out[j].Digest
	})
	return out
}

// Idle returns value snapshots of every idle slot, Seq-ascending — the
// invariant sweep's raw material.
func (p *Pool) Idle() []Slot {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Slot
	for _, slots := range p.idle {
		for _, s := range slots {
			out = append(out, *s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Claims returns value snapshots of every claimed binding, sorted by
// workload name.
func (p *Pool) Claims() []Claim {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Claim, 0, len(p.claimed))
	for wl, s := range p.claimed {
		out = append(out, Claim{Workload: wl, Slot: *s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Workload < out[j].Workload })
	return out
}
