package orchestrator

// Direct unit coverage of the error taxonomy vocabulary: formatting,
// sentinel matching, unwrapping, and the context-aware deploy pipeline's
// cancellation behaviour at the orchestrator level.

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"genio/internal/container"
)

func TestAdmissionErrorVerdictsAndFormat(t *testing.T) {
	e := &AdmissionError{Workload: "w", Tenant: "t", Verdicts: []ScannerVerdict{
		{Scanner: "clean-gate", Passed: true, Cached: true},
		{Scanner: "first-bad", Passed: false, Detail: "reason one"},
		{Scanner: "second-bad", Passed: false, Detail: "reason two"},
	}}
	if got := e.Error(); !strings.Contains(got, "by first-bad: reason one") {
		t.Fatalf("Error() = %q, want first-registered failure", got)
	}
	rej := e.Rejections()
	if len(rej) != 2 || rej[0].Scanner != "first-bad" || rej[1].Scanner != "second-bad" {
		t.Fatalf("Rejections() = %+v", rej)
	}
	if !errors.Is(e, ErrDenied) || !errors.Is(e, ErrRejected) {
		t.Fatal("AdmissionError must match ErrDenied and ErrRejected")
	}
	if errors.Is(e, ErrCancelled) {
		t.Fatal("AdmissionError must not match ErrCancelled")
	}
	empty := &AdmissionError{Workload: "w"}
	if got := empty.Error(); got != ErrDenied.Error() {
		t.Fatalf("empty-verdict Error() = %q", got)
	}
}

func TestTypedErrorSentinelsAndUnwrap(t *testing.T) {
	cases := []struct {
		err   error
		is    []error
		notIs []error
		want  string // substring of Error()
	}{
		{
			err:  &ImagePullError{Ref: "a/b:1", Err: container.ErrUnsigned},
			is:   []error{container.ErrUnsigned, ErrRejected},
			want: "pull a/b:1",
		},
		{
			err:  &CapacityError{Workload: "w", Requested: Resources{CPUMilli: 9, MemoryMB: 9}, Nodes: 3},
			is:   []error{ErrNoCapacity, ErrRejected},
			want: "across 3 node(s)",
		},
		{
			err:  &QuotaError{Tenant: "t", Requested: Resources{CPUMilli: 5}, Quota: Resources{CPUMilli: 1}},
			is:   []error{ErrQuotaExceeded, ErrRejected},
			want: "tenant t",
		},
		{
			err:  &UnauthorizedError{Subject: "s", Verb: "create", Tenant: "t"},
			is:   []error{ErrUnauthorized, ErrRejected},
			want: "s may not create workloads in t",
		},
		{
			err:  &DuplicateNameError{Workload: "w"},
			is:   []error{ErrDuplicateName, ErrRejected},
			want: "name in use: w",
		},
		{
			err:  &NodeNotFoundError{Node: "n"},
			is:   []error{ErrNodeUnknown},
			want: "unknown node: n",
		},
		{
			err:   &CancelledError{Workload: "w", Stage: "admission", Err: context.Canceled},
			is:    []error{ErrCancelled, context.Canceled},
			notIs: []error{ErrRejected},
			want:  "during admission",
		},
		{
			err:  &CancelledError{},
			is:   []error{ErrCancelled},
			want: ErrCancelled.Error(),
		},
	}
	for _, tc := range cases {
		if got := tc.err.Error(); !strings.Contains(got, tc.want) {
			t.Errorf("%T.Error() = %q, want substring %q", tc.err, got, tc.want)
		}
		for _, s := range tc.is {
			if !errors.Is(tc.err, s) {
				t.Errorf("errors.Is(%v, %v) = false", tc.err, s)
			}
		}
		for _, s := range tc.notIs {
			if errors.Is(tc.err, s) {
				t.Errorf("errors.Is(%v, %v) = true, want false", tc.err, s)
			}
		}
	}
	// Sentinel-carrying NodeNotFoundError formats and unwraps its owner.
	custom := errors.New("owner: no node")
	nn := &NodeNotFoundError{Node: "x", Err: custom}
	if !errors.Is(nn, custom) || !strings.Contains(nn.Error(), "owner: no node: x") {
		t.Fatalf("NodeNotFoundError with custom sentinel = %q", nn.Error())
	}
}

// TestDeployContextCancelledMidAdmission exercises the orchestrator-level
// cancellation path directly: the gate controller blocks until the
// context dies, the verdict is a typed *CancelledError, nothing is
// committed to the verdict cache, and the rejected counter is untouched.
func TestDeployContextCancelledMidAdmission(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	c.AddNode("n1", Resources{CPUMilli: 4000, MemoryMB: 8192})
	reached := make(chan struct{})
	c.RegisterAdmissionCtx("gate", func(ctx context.Context, _ WorkloadSpec, _ *container.Image) error {
		close(reached)
		<-ctx.Done()
		return ctx.Err()
	})
	// A cacheable clean controller running alongside the gate: its
	// verdict must NOT be committed when the run is cancelled.
	c.RegisterAdmissionCachedCtx("clean", func(context.Context, WorkloadSpec, *container.Image) error {
		return nil
	})

	var auditMu sync.Mutex
	var kinds []string
	c.SetAuditSink(func(a AuditEvent) {
		auditMu.Lock()
		kinds = append(kinds, a.Kind)
		auditMu.Unlock()
	})

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.DeployContext(ctx, "ops", spec("w", "t", "acme/analytics:2.0.1", IsolationSoft))
		errCh <- err
	}()
	<-reached
	cancel()
	err := <-errCh

	var cancelled *CancelledError
	if !errors.As(err, &cancelled) || cancelled.Stage != "admission" {
		t.Fatalf("err = %v, want *CancelledError at admission stage", err)
	}
	if got := c.AdmissionCacheSize(); got != 0 {
		t.Fatalf("verdict cache holds %d entries after a cancelled run, want 0", got)
	}
	if _, ok := c.Workload("w"); ok {
		t.Fatal("cancelled deployment was placed")
	}
	if _, rejected := c.Counters(); rejected != 0 {
		t.Fatalf("rejected counter = %d after cancellation, want 0", rejected)
	}
	auditMu.Lock()
	defer auditMu.Unlock()
	found := false
	for _, k := range kinds {
		if k == "admission-cancelled" {
			found = true
		}
		if k == "admission-verdict" || k == "placement" {
			t.Fatalf("cancelled deploy emitted %q audit record", k)
		}
	}
	if !found {
		t.Fatalf("no admission-cancelled audit record; got %v", kinds)
	}
}

// TestDeployContextCancelInCommitWindow drives the final cancellation
// point: admission passes, the context dies before commit, and both the
// reservation and the node-side placement are rolled back.
func TestDeployContextCancelInCommitWindow(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	c.AddNode("n1", Resources{CPUMilli: 4000, MemoryMB: 8192})
	ctx, cancel := context.WithCancel(context.Background())
	// The observer fires as the pipeline enters placing — cancelling
	// there lands in the reservation/commit window.
	_, _, err := c.DeployObserved(ctx, "ops", spec("w", "t", "acme/analytics:2.0.1", IsolationSoft),
		func(stage DeployStage) {
			if stage == StagePlacing {
				cancel()
			}
		})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if _, ok := c.Workload("w"); ok {
		t.Fatal("cancelled deployment committed")
	}
	if use := c.TenantUsage("t"); use.CPUMilli != 0 || use.MemoryMB != 0 {
		t.Fatalf("tenant reservation leaked: %+v", use)
	}
	for _, u := range c.Utilization() {
		if u.Used.CPUMilli != 0 || u.Used.MemoryMB != 0 {
			t.Fatalf("node placement leaked: %+v", u)
		}
	}
	if len(c.VMs()) != 0 {
		t.Fatalf("VM leaked: %+v", c.VMs())
	}
	// The same cluster still admits normally afterwards.
	if _, err := c.Deploy("ops", spec("w", "t", "acme/analytics:2.0.1", IsolationSoft)); err != nil {
		t.Fatalf("redeploy after cancelled commit: %v", err)
	}
}
