package orchestrator

import (
	"sync"
	"testing"

	"genio/internal/container"
)

// auditRecorder collects audit events (sinks may be called from any
// operation goroutine).
type auditRecorder struct {
	mu  sync.Mutex
	evs []AuditEvent
}

func (r *auditRecorder) sink(a AuditEvent) {
	r.mu.Lock()
	r.evs = append(r.evs, a)
	r.mu.Unlock()
}

func (r *auditRecorder) byKind() map[string][]AuditEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string][]AuditEvent{}
	for _, e := range r.evs {
		out[e.Kind] = append(out[e.Kind], e)
	}
	return out
}

func auditCluster(t *testing.T) (*Cluster, *auditRecorder) {
	t.Helper()
	reg := container.NewRegistry()
	reg.Push(container.AnalyticsImage(), nil)
	c := NewCluster("audit", reg, Settings{})
	rec := &auditRecorder{}
	c.SetAuditSink(rec.sink)
	return c, rec
}

func auditSpec(name string) WorkloadSpec {
	return WorkloadSpec{
		Name: name, Tenant: "acme", ImageRef: "acme/analytics:2.0.1",
		Isolation: IsolationSoft, Resources: Resources{CPUMilli: 100, MemoryMB: 100},
	}
}

func TestAuditTrailCoversLifecycle(t *testing.T) {
	c, rec := auditCluster(t)
	c.AddNode("n1", Resources{CPUMilli: 1000, MemoryMB: 1000})
	c.AddNode("n2", Resources{CPUMilli: 1000, MemoryMB: 1000})
	if _, err := c.Deploy("ops", auditSpec("w1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("ops", auditSpec("w1")); err == nil { // duplicate
		t.Fatal("duplicate admitted")
	}
	if err := c.Stop("w1"); err != nil {
		t.Fatal(err)
	}

	kinds := rec.byKind()
	if got := len(kinds["node-join"]); got != 2 {
		t.Fatalf("node-join events = %d, want 2", got)
	}
	verdicts := kinds["admission-verdict"]
	if len(verdicts) != 2 {
		t.Fatalf("admission-verdict events = %d, want 2", len(verdicts))
	}
	var allowed, denied int
	for _, v := range verdicts {
		if v.Allowed {
			allowed++
		} else {
			denied++
			if v.Detail == "" {
				t.Fatal("denied verdict carries no reason")
			}
		}
	}
	if allowed != 1 || denied != 1 {
		t.Fatalf("verdicts allowed=%d denied=%d, want 1/1", allowed, denied)
	}
	placements := kinds["placement"]
	if len(placements) != 1 || placements[0].Node == "" {
		t.Fatalf("placement events = %+v, want one with a node", placements)
	}
	if got := len(kinds["workload-stop"]); got != 1 {
		t.Fatalf("workload-stop events = %d, want 1", got)
	}
}

func TestAuditTrailCoversFailover(t *testing.T) {
	c, rec := auditCluster(t)
	c.AddNode("n1", Resources{CPUMilli: 300, MemoryMB: 300})
	c.AddNode("n2", Resources{CPUMilli: 100, MemoryMB: 100})
	for _, n := range []string{"w1", "w2", "w3"} {
		if _, err := c.Deploy("ops", auditSpec(n)); err != nil {
			t.Fatal(err)
		}
	}
	// All three sit on n1 (first-fit); n2 can absorb exactly one.
	res, err := c.FailNode("n1")
	if err != nil {
		t.Fatal(err)
	}
	kinds := rec.byKind()
	if got := len(kinds["node-fail"]); got != 1 {
		t.Fatalf("node-fail events = %d, want 1", got)
	}
	if got := len(kinds["failover"]); got != len(res.Rescheduled) {
		t.Fatalf("failover events = %d, want %d", got, len(res.Rescheduled))
	}
	for _, e := range kinds["failover"] {
		if e.Node == "" || e.Tenant != "acme" || !e.Allowed {
			t.Fatalf("failover event incomplete: %+v", e)
		}
	}
	if got := len(kinds["eviction"]); got != len(res.Evicted) {
		t.Fatalf("eviction events = %d, want %d", got, len(res.Evicted))
	}
	for _, e := range kinds["eviction"] {
		if e.Allowed {
			t.Fatalf("eviction marked allowed: %+v", e)
		}
	}
}

// TestAuditSinkNil: clusters without a sink pay nothing and never panic.
func TestAuditSinkNil(t *testing.T) {
	c, _ := auditCluster(t)
	c.SetAuditSink(nil)
	c.AddNode("n1", Resources{CPUMilli: 1000, MemoryMB: 1000})
	if _, err := c.Deploy("ops", auditSpec("w1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Stop("w1"); err != nil {
		t.Fatal(err)
	}
}
