package orchestrator

// Placement-engine integration: the cluster side of the scheduler
// pipeline — strategy selection, policy plumbing, the cached candidate
// slice, deterministic shared-VM reuse, and commit-window release.

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"genio/internal/container"
)

// quadCluster is a 4-node fleet with one signed-free image, generous
// quota-free settings.
func quadCluster(t *testing.T, settings Settings) *Cluster {
	t.Helper()
	reg := container.NewRegistry()
	reg.Push(container.AnalyticsImage(), nil)
	c := NewCluster("quad", reg, settings)
	for i := 1; i <= 4; i++ {
		c.AddNode(fmt.Sprintf("olt-%02d", i), Resources{CPUMilli: 4000, MemoryMB: 8192})
	}
	return c
}

func policySpec(name, tenant, policy string) WorkloadSpec {
	return WorkloadSpec{
		Name: name, Tenant: tenant, ImageRef: "acme/analytics:2.0.1",
		Isolation: IsolationSoft, PlacementPolicy: policy,
		Resources: Resources{CPUMilli: 500, MemoryMB: 512},
	}
}

func nodesOf(c *Cluster) map[string]int {
	out := map[string]int{}
	for _, w := range c.Workloads() {
		out[w.Node]++
	}
	return out
}

func TestBinpackConcentratesSpreadFansOut(t *testing.T) {
	// Same fleet, same demand stream — only the policy differs. Binpack
	// must stack one node; spread must touch all four.
	bp := quadCluster(t, Settings{})
	for i := 0; i < 4; i++ {
		if _, err := bp.Deploy("ops", policySpec(fmt.Sprintf("b%d", i), "acme", PlacementBinpack)); err != nil {
			t.Fatal(err)
		}
	}
	if got := nodesOf(bp); len(got) != 1 || got["olt-01"] != 4 {
		t.Fatalf("binpack placements = %v, want all 4 on olt-01", got)
	}

	sp := quadCluster(t, Settings{})
	for i := 0; i < 4; i++ {
		if _, err := sp.Deploy("ops", policySpec(fmt.Sprintf("s%d", i), "acme", PlacementSpread)); err != nil {
			t.Fatal(err)
		}
	}
	if got := nodesOf(sp); len(got) != 4 {
		t.Fatalf("spread placements = %v, want one per node", got)
	}
}

func TestClusterDefaultStrategyFromSettings(t *testing.T) {
	c := quadCluster(t, Settings{PlacementStrategy: PlacementSpread})
	for i := 0; i < 4; i++ {
		w, err := c.Deploy("ops", policySpec(fmt.Sprintf("w%d", i), "acme", ""))
		if err != nil {
			t.Fatal(err)
		}
		if w.Strategy != PlacementSpread {
			t.Fatalf("workload strategy = %q, want cluster default spread", w.Strategy)
		}
	}
	if got := nodesOf(c); len(got) != 4 {
		t.Fatalf("placements = %v, want one per node", got)
	}
	// A per-workload policy overrides the cluster default.
	w, err := c.Deploy("ops", policySpec("override", "acme", PlacementBinpack))
	if err != nil {
		t.Fatal(err)
	}
	if w.Strategy != PlacementBinpack {
		t.Fatalf("override strategy = %q", w.Strategy)
	}
}

func TestUnknownPlacementPolicyRejected(t *testing.T) {
	c := quadCluster(t, Settings{})
	_, err := c.Deploy("ops", policySpec("x", "acme", "chaotic"))
	var perr *PlacementPolicyError
	if !errors.As(err, &perr) || !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want *PlacementPolicyError under ErrRejected", err)
	}
	if _, rejected := c.Counters(); rejected != 1 {
		t.Fatalf("rejected counter = %d", rejected)
	}
	// The reservation was released: the name is reusable.
	if _, err := c.Deploy("ops", policySpec("x", "acme", PlacementBinpack)); err != nil {
		t.Fatalf("name not released after policy rejection: %v", err)
	}
	// A typo'd *cluster default* must be named in the error, not the
	// workload's empty per-deploy policy.
	cd := quadCluster(t, Settings{PlacementStrategy: "binpak"})
	_, err = cd.Deploy("ops", policySpec("y", "acme", ""))
	if !errors.As(err, &perr) || perr.Policy != "binpak" {
		t.Fatalf("err = %v, want PlacementPolicyError naming the cluster default", err)
	}
}

// TestInvalidPolicyRejectedBeforeScanning: a statically invalid policy
// must be refused before the expensive stages — no image pull, no
// admission fan-out — not discovered at scheduling time after the whole
// pipeline ran.
func TestInvalidPolicyRejectedBeforeScanning(t *testing.T) {
	c := quadCluster(t, Settings{})
	scans := 0
	c.RegisterAdmission("scan-counter", func(WorkloadSpec, *container.Image) error {
		scans++
		return nil
	})
	_, err := c.Deploy("ops", policySpec("x", "acme", "chaotic"))
	var perr *PlacementPolicyError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %v", err)
	}
	if scans != 0 {
		t.Fatalf("admission chain ran %d times for a statically invalid spec", scans)
	}
}

func TestWorkloadCarriesStrategyAndScore(t *testing.T) {
	c := quadCluster(t, Settings{})
	w, err := c.Deploy("ops", policySpec("scored", "acme", PlacementSpread))
	if err != nil {
		t.Fatal(err)
	}
	if w.Strategy != PlacementSpread || w.Score <= 0 {
		t.Fatalf("workload placement metadata = strategy %q score %v", w.Strategy, w.Score)
	}
}

// TestPlaceVMDeterministicSharedVMSelection is the regression test for
// the nondeterministic shared-VM pick: when a tenant has several shared
// VMs on one node (a state failovers and partial releases can leave
// behind), map iteration order used to choose the slot. The lowest VM
// ID must win, every time.
func TestPlaceVMDeterministicSharedVMSelection(t *testing.T) {
	for round := 0; round < 20; round++ {
		c := quadCluster(t, Settings{})
		// Manufacture two shared VMs for one tenant on olt-01.
		c.mu.Lock()
		n := c.nodes["olt-01"]
		n.mu.Lock()
		for _, id := range []string{"vm-900", "vm-100"} {
			n.vms[id] = &VM{ID: id, Node: "olt-01", Tenant: "acme", Workloads: []string{"pre-" + id}}
			n.sharedVMs++
		}
		n.tenants["acme"] = 2
		n.mu.Unlock()
		c.mu.Unlock()

		w, err := c.Deploy("ops", policySpec("newcomer", "acme", PlacementBinpack))
		if err != nil {
			t.Fatal(err)
		}
		if w.VMID != "vm-100" {
			t.Fatalf("round %d: shared-VM selection picked %s, want lowest ID vm-100", round, w.VMID)
		}
	}
}

// TestReleasePlacementCommitWindow covers the cancellation-in-commit-
// window path end to end: the node's capacity must return, the VM slot
// vacate, and an emptied shared VM disappear.
func TestReleasePlacementCommitWindow(t *testing.T) {
	c := quadCluster(t, Settings{})
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel from the placing-stage observer: deploy's last cancellation
	// point then fires inside the commit window, after scheduling
	// succeeded — exactly the path releasePlacement exists for.
	_, _, err := c.DeployObserved(ctx, "ops", policySpec("ghost", "acme", ""), func(stage DeployStage) {
		if stage == StagePlacing {
			cancel()
		}
	})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if _, placed := c.Workload("ghost"); placed {
		t.Fatal("cancelled workload is placed")
	}
	for _, u := range c.Utilization() {
		if u.Used.CPUMilli != 0 || u.Used.MemoryMB != 0 || u.Workloads != 0 {
			t.Fatalf("capacity leaked on %s: %+v", u.Node, u)
		}
		if u.SharedVMs != 0 {
			t.Fatalf("emptied shared VM survived on %s", u.Node)
		}
	}
	if vms := c.VMs(); len(vms) != 0 {
		t.Fatalf("VM slots not vacated: %v", vms)
	}
	if use := c.TenantUsage("acme"); use.CPUMilli != 0 {
		t.Fatalf("tenant reservation leaked: %+v", use)
	}
}

// TestReleasePlacementKeepsOccupiedSharedVM: releasing one workload out
// of a shared VM vacates only its slot; the co-tenant workload and the
// VM itself stay.
func TestReleasePlacementKeepsOccupiedSharedVM(t *testing.T) {
	c := quadCluster(t, Settings{})
	survivor, err := c.Deploy("ops", policySpec("survivor", "acme", ""))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	_, _, err = c.DeployObserved(ctx, "ops", policySpec("doomed", "acme", ""), func(stage DeployStage) {
		if stage == StagePlacing {
			cancel()
		}
	})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v", err)
	}
	vms := c.VMs()
	if len(vms) != 1 || vms[0].ID != survivor.VMID {
		t.Fatalf("VMs after release = %+v", vms)
	}
	if len(vms[0].Workloads) != 1 || vms[0].Workloads[0] != "survivor" {
		t.Fatalf("shared VM slots = %v, want [survivor]", vms[0].Workloads)
	}
	util := c.Utilization()
	var cpu int
	for _, u := range util {
		cpu += u.Used.CPUMilli
	}
	if cpu != 500 {
		t.Fatalf("fleet usage = %d, want survivor's 500", cpu)
	}
}

func TestFailoverRespectsSpreadPolicy(t *testing.T) {
	// Five nodes, four spread workloads on the first four; kill one and
	// the victim must land on the idle fifth node (spread), not stack.
	reg := container.NewRegistry()
	reg.Push(container.AnalyticsImage(), nil)
	c := NewCluster("ha", reg, Settings{})
	for i := 1; i <= 5; i++ {
		c.AddNode(fmt.Sprintf("olt-%02d", i), Resources{CPUMilli: 4000, MemoryMB: 8192})
	}
	for i := 0; i < 4; i++ {
		if _, err := c.Deploy("ops", policySpec(fmt.Sprintf("w%d", i), "acme", PlacementSpread)); err != nil {
			t.Fatal(err)
		}
	}
	w0, _ := c.Workload("w0")
	res, err := c.FailNode(w0.Node)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rescheduled) != 1 {
		t.Fatalf("rescheduled = %v", res.Rescheduled)
	}
	moved, _ := c.Workload("w0")
	if moved.Node != "olt-05" {
		t.Fatalf("spread failover landed on %s, want idle olt-05", moved.Node)
	}
	if moved.Strategy != PlacementSpread || moved.Score <= 0 {
		t.Fatalf("failover placement metadata = %q/%v", moved.Strategy, moved.Score)
	}
}

func TestHardIsolationPrefersNodesWithoutSharedVMs(t *testing.T) {
	// Two nodes at equal utilization, one carrying a shared (soft) VM:
	// a hardened workload must land on the clean node.
	reg := container.NewRegistry()
	reg.Push(container.AnalyticsImage(), nil)
	c := NewCluster("posture", reg, Settings{})
	c.AddNode("n1", Resources{CPUMilli: 4000, MemoryMB: 8192})
	c.AddNode("n2", Resources{CPUMilli: 4000, MemoryMB: 8192})
	// Soft workload binpacks onto n1 (its shared VM taints the node's
	// posture); a dedicated decoy spreads onto n2 so both nodes carry
	// equal load and only the shared-VM count differs.
	if _, err := c.Deploy("ops", policySpec("soft-1", "acme", "")); err != nil {
		t.Fatal(err)
	}
	decoy := policySpec("decoy", "rival", PlacementSpread)
	decoy.Isolation = IsolationHard
	if w, err := c.Deploy("ops", decoy); err != nil || w.Node != "n2" {
		t.Fatalf("decoy placement: %v on %v, want n2", err, w)
	}
	hard := policySpec("hardened", "bank", "")
	hard.Isolation = IsolationHard
	w, err := c.Deploy("ops", hard)
	if err != nil {
		t.Fatal(err)
	}
	if w.Node != "n2" {
		t.Fatalf("hard-isolation workload landed on %s (shared-VM node), want n2", w.Node)
	}
}
