package host

// Fixtures building the modelled GENIO hosts. These encode the deployment
// facts the paper reports: OLTs run Open Networking Linux (Debian 10 based),
// carry SDN software (ONOS, VOLTHA) under non-standard prefixes, and start
// from permissive defaults that M1/M2 hardening then tightens.

// NewONLOLT models a freshly provisioned OLT host before hardening: ONL
// Debian 10 with the SDN stack, legacy services enabled, permissive kernel
// defaults. This is the Lesson-1 starting point.
func NewONLOLT(name string) *Host {
	h := New(name, "onl-debian10")

	for _, p := range []Package{
		{Name: "linux-image-onl", Version: "4.19.81", Path: "/boot"},
		{Name: "openssh-server", Version: "7.9p1", Path: "/usr"},
		{Name: "openssl", Version: "1.1.1d", Path: "/usr"},
		{Name: "busybox", Version: "1.30.1", Path: "/bin"},
		{Name: "onos", Version: "2.5.0", Path: "/opt/onos"},        // non-standard path
		{Name: "voltha", Version: "2.8.0", Path: "/opt/voltha"},    // non-standard path
		{Name: "onl-platform", Version: "1.2.0", Path: "/lib/onl"}, // non-standard path
		{Name: "docker-ce", Version: "19.03.8", Path: "/usr"},
		{Name: "kubelet", Version: "1.21.0", Path: "/usr"},
		{Name: "ntp", Version: "4.2.8p12", Path: "/usr"},
		{Name: "telnetd", Version: "0.17", Path: "/usr"}, // legacy, should be stripped
		{Name: "ftp", Version: "0.17", Path: "/usr"},     // legacy, should be stripped
		{Name: "curl", Version: "7.64.0", Path: "/usr"},
		{Name: "bash", Version: "5.0", Path: "/bin"},
	} {
		h.InstallPackage(p)
	}

	for _, s := range []Service{
		{Name: "sshd", Enabled: true, ListenPort: 22},
		{Name: "onos", Enabled: true, ListenPort: 8181},
		{Name: "voltha", Enabled: true, ListenPort: 50060},
		{Name: "dockerd", Enabled: true},
		{Name: "kubelet", Enabled: true, ListenPort: 10250},
		{Name: "ntpd", Enabled: false},
		{Name: "telnetd", Enabled: true, ListenPort: 23},       // insecure default
		{Name: "ftpd", Enabled: true, ListenPort: 21},          // insecure default
		{Name: "debug-agent", Enabled: true, ListenPort: 9229}, // vendor debug endpoint
	} {
		h.SetService(s)
	}

	for _, a := range []Account{
		{Name: "root", UID: 0, Shell: "/bin/bash", PasswordLogin: true, Sudo: true},
		{Name: "admin", UID: 1000, Shell: "/bin/bash", PasswordLogin: true, Sudo: true},
		{Name: "onl", UID: 1001, Shell: "/bin/bash", PasswordLogin: true, Sudo: false},
		{Name: "guest", UID: 1002, Shell: "/bin/bash", PasswordLogin: true, Sudo: false}, // should be removed
	} {
		h.SetAccount(a)
	}

	for _, f := range []File{
		{Path: "/etc/ssh/sshd_config", Mode: 0o644, Owner: "root", Content: []byte("PermitRootLogin yes\nPasswordAuthentication yes\n")},
		{Path: "/etc/apt/sources.list", Mode: 0o644, Owner: "root", Content: []byte("deb http://deb.debian.org/debian buster main\ndeb http://mirror.example.net/unofficial buster main\n")},
		{Path: "/boot/vmlinuz-onl", Mode: 0o644, Owner: "root", Content: []byte("onl-kernel-image-4.19.81")},
		{Path: "/boot/grub/grub.cfg", Mode: 0o644, Owner: "root", Content: []byte("set timeout=5\nlinux /vmlinuz-onl\n")},
		{Path: "/usr/sbin/sshd", Mode: 0o755, Owner: "root", Content: []byte("sshd-binary-7.9p1")},
		{Path: "/opt/onos/bin/onos-service", Mode: 0o755, Owner: "root", Content: []byte("onos-service-2.5.0")},
		{Path: "/opt/voltha/voltha", Mode: 0o755, Owner: "root", Content: []byte("voltha-binary-2.8.0")},
		{Path: "/etc/shadow", Mode: 0o640, Owner: "root", Content: []byte("root:$6$salt$hash\n")},
		{Path: "/etc/passwd", Mode: 0o644, Owner: "root", Content: []byte("root:x:0:0::/root:/bin/bash\n")},
		{Path: "/var/log/syslog", Mode: 0o640, Owner: "root", Content: []byte("boot ok\n")},
		{Path: "/var/lib/genio/state.json", Mode: 0o640, Owner: "root", Content: []byte("{}")},
	} {
		h.WriteFile(f)
	}

	// Permissive kernel build defaults before M2 hardening.
	h.SetKernelConfig("CONFIG_STACKPROTECTOR", "n")
	h.SetKernelConfig("CONFIG_STACKPROTECTOR_STRONG", "n")
	h.SetKernelConfig("CONFIG_KEXEC", "y")
	h.SetKernelConfig("CONFIG_KPROBES", "y")
	h.SetKernelConfig("CONFIG_STRICT_KERNEL_RWX", "n")
	h.SetKernelConfig("CONFIG_RANDOMIZE_BASE", "n")
	h.SetKernelConfig("CONFIG_SECURITY_APPARMOR", "n")
	h.SetKernelConfig("CONFIG_SECURITY_SELINUX", "n")
	h.SetKernelConfig("CONFIG_MODULE_SIG", "n")

	h.SetSysctl("kernel.kptr_restrict", "0")
	h.SetSysctl("kernel.dmesg_restrict", "0")
	h.SetSysctl("kernel.unprivileged_bpf_disabled", "0")
	h.SetSysctl("net.ipv4.conf.all.rp_filter", "0")
	h.SetSysctl("fs.protected_symlinks", "0")

	h.SetBootParam("mitigations", "off") // speculative-execution mitigations disabled
	h.SetBootParam("quiet", "")

	return h
}

// HardenONLOLT applies the M1/M2 mitigations in place: strips legacy
// packages and services, locks accounts, tightens SSH and kernel settings.
// Returns the number of discrete changes applied (used by Lesson 1 to count
// hardening iterations).
func HardenONLOLT(h *Host) int {
	changes := 0
	for _, pkg := range []string{"telnetd", "ftp"} {
		if err := h.RemovePackage(pkg); err == nil {
			changes++
		}
	}
	for _, svc := range []string{"telnetd", "ftpd", "debug-agent"} {
		if err := h.DisableService(svc); err == nil {
			changes++
		}
	}
	h.SetService(Service{Name: "ntpd", Enabled: true}) // NTP sync per SCAP benchmark
	changes++

	h.SetAccount(Account{Name: "root", UID: 0, Shell: "/usr/sbin/nologin", PasswordLogin: false, Sudo: true})
	h.SetAccount(Account{Name: "guest", UID: 1002, Shell: "/usr/sbin/nologin", PasswordLogin: false, Sudo: false})
	h.SetAccount(Account{Name: "onl", UID: 1001, Shell: "/bin/bash", PasswordLogin: false, Sudo: false})
	h.SetAccount(Account{Name: "admin", UID: 1000, Shell: "/bin/bash", PasswordLogin: false, Sudo: true})
	changes += 4

	h.WriteFile(File{
		Path: "/etc/ssh/sshd_config", Mode: 0o600, Owner: "root",
		Content: []byte("PermitRootLogin no\nPasswordAuthentication no\nKexAlgorithms curve25519-sha256\n"),
	})
	h.WriteFile(File{
		Path: "/etc/apt/sources.list", Mode: 0o644, Owner: "root",
		Content: []byte("deb http://deb.debian.org/debian buster main\n"),
	})
	h.WriteFile(File{Path: "/boot/grub/grub.cfg", Mode: 0o600, Owner: "root",
		Content: []byte("set timeout=1\nset superusers=root\nlinux /vmlinuz-onl\n")})
	changes += 3

	for k, v := range map[string]string{
		"CONFIG_STACKPROTECTOR":        "y",
		"CONFIG_STACKPROTECTOR_STRONG": "y",
		"CONFIG_KEXEC":                 "n",
		"CONFIG_KPROBES":               "n",
		"CONFIG_STRICT_KERNEL_RWX":     "y",
		"CONFIG_RANDOMIZE_BASE":        "y",
		"CONFIG_SECURITY_APPARMOR":     "y",
		"CONFIG_MODULE_SIG":            "y",
	} {
		h.SetKernelConfig(k, v)
		changes++
	}
	for k, v := range map[string]string{
		"kernel.kptr_restrict":             "2",
		"kernel.dmesg_restrict":            "1",
		"kernel.unprivileged_bpf_disabled": "1",
		"net.ipv4.conf.all.rp_filter":      "1",
		"fs.protected_symlinks":            "1",
	} {
		h.SetSysctl(k, v)
		changes++
	}
	h.SetBootParam("mitigations", "auto")
	changes++
	return changes
}

// NewUbuntuServer models a mainstream Ubuntu host used as the comparison
// point for Lesson 1 (STIGs exist natively for Ubuntu).
func NewUbuntuServer(name string) *Host {
	h := New(name, "ubuntu22.04")
	for _, p := range []Package{
		{Name: "linux-image-generic", Version: "5.15.0", Path: "/boot"},
		{Name: "openssh-server", Version: "8.9p1", Path: "/usr"},
		{Name: "openssl", Version: "3.0.2", Path: "/usr"},
		{Name: "ntp", Version: "4.2.8p15", Path: "/usr"},
		{Name: "bash", Version: "5.1", Path: "/bin"},
	} {
		h.InstallPackage(p)
	}
	h.SetService(Service{Name: "sshd", Enabled: true, ListenPort: 22})
	h.SetService(Service{Name: "ntpd", Enabled: true})
	h.SetAccount(Account{Name: "root", UID: 0, Shell: "/usr/sbin/nologin", PasswordLogin: false, Sudo: true})
	h.SetAccount(Account{Name: "ubuntu", UID: 1000, Shell: "/bin/bash", PasswordLogin: false, Sudo: true})
	h.WriteFile(File{Path: "/etc/ssh/sshd_config", Mode: 0o600, Owner: "root",
		Content: []byte("PermitRootLogin no\nPasswordAuthentication no\n")})
	h.WriteFile(File{Path: "/etc/apt/sources.list", Mode: 0o644, Owner: "root",
		Content: []byte("deb http://archive.ubuntu.com/ubuntu jammy main\n")})
	h.WriteFile(File{Path: "/boot/grub/grub.cfg", Mode: 0o600, Owner: "root",
		Content: []byte("set superusers=root\n")})
	h.SetKernelConfig("CONFIG_STACKPROTECTOR", "y")
	h.SetKernelConfig("CONFIG_STACKPROTECTOR_STRONG", "y")
	h.SetKernelConfig("CONFIG_KEXEC", "n")
	h.SetKernelConfig("CONFIG_KPROBES", "n")
	h.SetKernelConfig("CONFIG_STRICT_KERNEL_RWX", "y")
	h.SetKernelConfig("CONFIG_RANDOMIZE_BASE", "y")
	h.SetKernelConfig("CONFIG_SECURITY_APPARMOR", "y")
	h.SetKernelConfig("CONFIG_MODULE_SIG", "y")
	h.SetSysctl("kernel.kptr_restrict", "2")
	h.SetSysctl("kernel.dmesg_restrict", "1")
	h.SetSysctl("kernel.unprivileged_bpf_disabled", "1")
	h.SetSysctl("net.ipv4.conf.all.rp_filter", "1")
	h.SetSysctl("fs.protected_symlinks", "1")
	h.SetBootParam("mitigations", "auto")
	return h
}
