// Package host models the operating-system state of a GENIO node: installed
// packages, running services, user accounts, kernel build configuration,
// sysctl values, and a file tree.
//
// The paper's infrastructure-level mitigations (M1 OS configuration, M2
// kernel hardening, M7 file integrity, M8 vulnerability scanning) all act on
// exactly this state. Modelling it as data lets the scanners and hardening
// engines in sibling packages operate deterministically without a real ONL
// Debian installation.
package host

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Package is an installed software package.
type Package struct {
	Name    string `json:"name"`
	Version string `json:"version"`
	// Path is the installation prefix. ONL installs SDN components under
	// non-standard prefixes, which is the Lesson-4 scanner-tuning problem.
	Path string `json:"path"`
}

// Service is a system service.
type Service struct {
	Name    string `json:"name"`
	Enabled bool   `json:"enabled"`
	// ListenPort is 0 for non-network services.
	ListenPort int `json:"listenPort"`
}

// Account is an OS user account.
type Account struct {
	Name          string `json:"name"`
	UID           int    `json:"uid"`
	Shell         string `json:"shell"`
	PasswordLogin bool   `json:"passwordLogin"`
	Sudo          bool   `json:"sudo"`
}

// File is an entry in the modelled filesystem.
type File struct {
	Path    string `json:"path"`
	Mode    uint32 `json:"mode"` // unix permission bits
	Owner   string `json:"owner"`
	Content []byte `json:"content"`
}

// Host is a modelled GENIO node OS. Safe for concurrent use.
type Host struct {
	mu sync.RWMutex

	Name   string
	Distro string // e.g. "onl-debian10", "ubuntu22.04"

	packages map[string]Package
	services map[string]Service
	accounts map[string]Account
	files    map[string]File
	// KernelConfig holds CONFIG_* build options (value "y", "n", "m" or numbers).
	kernelConfig map[string]string
	// Sysctl holds runtime kernel parameters.
	sysctl map[string]string
	// BootParams holds kernel command-line parameters.
	bootParams map[string]string
}

// ErrNotFound is returned when a queried entity does not exist.
var ErrNotFound = errors.New("host: not found")

// New creates an empty host.
func New(name, distro string) *Host {
	return &Host{
		Name:         name,
		Distro:       distro,
		packages:     make(map[string]Package),
		services:     make(map[string]Service),
		accounts:     make(map[string]Account),
		files:        make(map[string]File),
		kernelConfig: make(map[string]string),
		sysctl:       make(map[string]string),
		bootParams:   make(map[string]string),
	}
}

// InstallPackage adds or replaces a package.
func (h *Host) InstallPackage(p Package) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.packages[p.Name] = p
}

// RemovePackage uninstalls a package.
func (h *Host) RemovePackage(name string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.packages[name]; !ok {
		return fmt.Errorf("%w: package %s", ErrNotFound, name)
	}
	delete(h.packages, name)
	return nil
}

// PackageVersion returns the installed version of a package.
func (h *Host) PackageVersion(name string) (string, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	p, ok := h.packages[name]
	return p.Version, ok
}

// Packages returns all installed packages sorted by name.
func (h *Host) Packages() []Package {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]Package, 0, len(h.packages))
	for _, p := range h.packages {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetService adds or replaces a service.
func (h *Host) SetService(s Service) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.services[s.Name] = s
}

// DisableService marks a service disabled.
func (h *Host) DisableService(name string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.services[name]
	if !ok {
		return fmt.Errorf("%w: service %s", ErrNotFound, name)
	}
	s.Enabled = false
	h.services[name] = s
	return nil
}

// Service returns a service by name.
func (h *Host) Service(name string) (Service, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	s, ok := h.services[name]
	return s, ok
}

// Services returns all services sorted by name.
func (h *Host) Services() []Service {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]Service, 0, len(h.services))
	for _, s := range h.services {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// OpenPorts returns listen ports of enabled network services, sorted.
func (h *Host) OpenPorts() []int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var ports []int
	for _, s := range h.services {
		if s.Enabled && s.ListenPort > 0 {
			ports = append(ports, s.ListenPort)
		}
	}
	sort.Ints(ports)
	return ports
}

// SetAccount adds or replaces an account.
func (h *Host) SetAccount(a Account) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.accounts[a.Name] = a
}

// Accounts returns all accounts sorted by name.
func (h *Host) Accounts() []Account {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]Account, 0, len(h.accounts))
	for _, a := range h.accounts {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteFile creates or replaces a file.
func (h *Host) WriteFile(f File) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.files[f.Path] = f
}

// ReadFile returns a file by path.
func (h *Host) ReadFile(path string) (File, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	f, ok := h.files[path]
	if !ok {
		return File{}, fmt.Errorf("%w: file %s", ErrNotFound, path)
	}
	return f, nil
}

// RemoveFile deletes a file.
func (h *Host) RemoveFile(path string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.files[path]; !ok {
		return fmt.Errorf("%w: file %s", ErrNotFound, path)
	}
	delete(h.files, path)
	return nil
}

// Files returns paths matching prefix (all files for ""), sorted.
func (h *Host) Files(prefix string) []File {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]File, 0, len(h.files))
	for p, f := range h.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// SetKernelConfig sets a CONFIG_* build option.
func (h *Host) SetKernelConfig(key, value string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.kernelConfig[key] = value
}

// KernelConfig returns a CONFIG_* value ("" if unset).
func (h *Host) KernelConfig(key string) string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.kernelConfig[key]
}

// SetSysctl sets a runtime kernel parameter.
func (h *Host) SetSysctl(key, value string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sysctl[key] = value
}

// Sysctl returns a kernel parameter value ("" if unset).
func (h *Host) Sysctl(key string) string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.sysctl[key]
}

// SetBootParam sets a kernel command-line parameter.
func (h *Host) SetBootParam(key, value string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.bootParams[key] = value
}

// BootParam returns a kernel command-line parameter ("" if unset).
func (h *Host) BootParam(key string) string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.bootParams[key]
}

// Snapshot summarizes host state for reports.
type Snapshot struct {
	Name     string `json:"name"`
	Distro   string `json:"distro"`
	Packages int    `json:"packages"`
	Services int    `json:"services"`
	Accounts int    `json:"accounts"`
	Files    int    `json:"files"`
}

// Snapshot returns entity counts.
func (h *Host) Snapshot() Snapshot {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return Snapshot{
		Name:     h.Name,
		Distro:   h.Distro,
		Packages: len(h.packages),
		Services: len(h.services),
		Accounts: len(h.accounts),
		Files:    len(h.files),
	}
}
