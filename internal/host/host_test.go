package host

import (
	"errors"
	"testing"
)

func TestPackageLifecycle(t *testing.T) {
	h := New("n1", "onl-debian10")
	h.InstallPackage(Package{Name: "curl", Version: "7.64.0"})
	v, ok := h.PackageVersion("curl")
	if !ok || v != "7.64.0" {
		t.Fatalf("PackageVersion = %q, %v", v, ok)
	}
	if err := h.RemovePackage("curl"); err != nil {
		t.Fatalf("RemovePackage: %v", err)
	}
	if _, ok := h.PackageVersion("curl"); ok {
		t.Fatal("package still present after removal")
	}
	if err := h.RemovePackage("curl"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestPackagesSorted(t *testing.T) {
	h := New("n1", "d")
	h.InstallPackage(Package{Name: "zsh"})
	h.InstallPackage(Package{Name: "bash"})
	h.InstallPackage(Package{Name: "curl"})
	pkgs := h.Packages()
	if len(pkgs) != 3 || pkgs[0].Name != "bash" || pkgs[2].Name != "zsh" {
		t.Fatalf("Packages = %+v", pkgs)
	}
}

func TestServiceLifecycle(t *testing.T) {
	h := New("n1", "d")
	h.SetService(Service{Name: "sshd", Enabled: true, ListenPort: 22})
	if err := h.DisableService("sshd"); err != nil {
		t.Fatalf("DisableService: %v", err)
	}
	s, ok := h.Service("sshd")
	if !ok || s.Enabled {
		t.Fatalf("Service = %+v, %v", s, ok)
	}
	if err := h.DisableService("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestOpenPorts(t *testing.T) {
	h := New("n1", "d")
	h.SetService(Service{Name: "sshd", Enabled: true, ListenPort: 22})
	h.SetService(Service{Name: "telnetd", Enabled: false, ListenPort: 23})
	h.SetService(Service{Name: "dockerd", Enabled: true}) // no port
	h.SetService(Service{Name: "web", Enabled: true, ListenPort: 8080})
	got := h.OpenPorts()
	if len(got) != 2 || got[0] != 22 || got[1] != 8080 {
		t.Fatalf("OpenPorts = %v", got)
	}
}

func TestFileLifecycle(t *testing.T) {
	h := New("n1", "d")
	h.WriteFile(File{Path: "/etc/x", Mode: 0o644, Content: []byte("a")})
	f, err := h.ReadFile("/etc/x")
	if err != nil || string(f.Content) != "a" {
		t.Fatalf("ReadFile = %+v, %v", f, err)
	}
	if _, err := h.ReadFile("/etc/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if err := h.RemoveFile("/etc/x"); err != nil {
		t.Fatalf("RemoveFile: %v", err)
	}
	if err := h.RemoveFile("/etc/x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestFilesPrefixFilter(t *testing.T) {
	h := New("n1", "d")
	h.WriteFile(File{Path: "/etc/a"})
	h.WriteFile(File{Path: "/etc/b"})
	h.WriteFile(File{Path: "/var/c"})
	if got := len(h.Files("/etc/")); got != 2 {
		t.Fatalf("Files(/etc/) = %d, want 2", got)
	}
	if got := len(h.Files("")); got != 3 {
		t.Fatalf("Files(\"\") = %d, want 3", got)
	}
}

func TestKernelAndSysctl(t *testing.T) {
	h := New("n1", "d")
	h.SetKernelConfig("CONFIG_KEXEC", "y")
	if h.KernelConfig("CONFIG_KEXEC") != "y" {
		t.Fatal("KernelConfig readback failed")
	}
	if h.KernelConfig("CONFIG_MISSING") != "" {
		t.Fatal("missing config should be empty")
	}
	h.SetSysctl("kernel.kptr_restrict", "2")
	if h.Sysctl("kernel.kptr_restrict") != "2" {
		t.Fatal("Sysctl readback failed")
	}
	h.SetBootParam("mitigations", "auto")
	if h.BootParam("mitigations") != "auto" {
		t.Fatal("BootParam readback failed")
	}
}

func TestONLFixtureShape(t *testing.T) {
	h := NewONLOLT("olt-01")
	if h.Distro != "onl-debian10" {
		t.Fatalf("Distro = %s", h.Distro)
	}
	if _, ok := h.PackageVersion("onos"); !ok {
		t.Fatal("ONL OLT must carry onos")
	}
	// Insecure defaults present before hardening.
	if s, _ := h.Service("telnetd"); !s.Enabled {
		t.Fatal("fixture should start with telnetd enabled")
	}
	if h.KernelConfig("CONFIG_KEXEC") != "y" {
		t.Fatal("fixture should start with KEXEC enabled")
	}
	snap := h.Snapshot()
	if snap.Packages == 0 || snap.Services == 0 || snap.Files == 0 {
		t.Fatalf("Snapshot = %+v", snap)
	}
}

func TestHardenONLOLT(t *testing.T) {
	h := NewONLOLT("olt-01")
	changes := HardenONLOLT(h)
	if changes == 0 {
		t.Fatal("hardening applied no changes")
	}
	if s, _ := h.Service("telnetd"); s.Enabled {
		t.Fatal("telnetd still enabled after hardening")
	}
	if _, ok := h.PackageVersion("telnetd"); ok {
		t.Fatal("telnetd package still installed after hardening")
	}
	if h.KernelConfig("CONFIG_KEXEC") != "n" {
		t.Fatal("KEXEC still enabled after hardening")
	}
	if h.Sysctl("kernel.kptr_restrict") != "2" {
		t.Fatal("kptr_restrict not tightened")
	}
	f, err := h.ReadFile("/etc/ssh/sshd_config")
	if err != nil {
		t.Fatal(err)
	}
	if string(f.Content[:18]) != "PermitRootLogin no" {
		t.Fatalf("sshd_config not hardened: %q", f.Content)
	}
	// Hardening twice applies fewer changes (idempotent-ish: removals gone).
	again := HardenONLOLT(h)
	if again >= changes {
		t.Fatalf("second hardening pass = %d changes, want < %d", again, changes)
	}
}

func TestUbuntuFixtureAlreadyHardened(t *testing.T) {
	h := NewUbuntuServer("u1")
	if h.KernelConfig("CONFIG_STACKPROTECTOR_STRONG") != "y" {
		t.Fatal("ubuntu fixture should ship hardened kernel config")
	}
	if ports := h.OpenPorts(); len(ports) != 1 || ports[0] != 22 {
		t.Fatalf("OpenPorts = %v, want [22]", ports)
	}
}
