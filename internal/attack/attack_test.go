package attack

import (
	"testing"

	"genio/internal/core"
)

func runCampaign(t *testing.T, cfg core.Config) []Result {
	t.Helper()
	p, err := core.New(cfg)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	c, err := NewCampaign(p)
	if err != nil {
		t.Fatalf("NewCampaign: %v", err)
	}
	return c.Run()
}

func TestSecurePlatformStopsEverything(t *testing.T) {
	results := runCampaign(t, core.SecureConfig())
	for _, r := range results {
		if r.Outcome == OutcomeMissed {
			t.Errorf("secure platform missed %s (%s): %s", r.ThreatID, r.Attack, r.Detail)
		}
	}
	s := Summary(results)
	if s[OutcomeBlocked] == 0 {
		t.Fatal("secure platform blocked nothing")
	}
}

func TestLegacyPlatformMissesMost(t *testing.T) {
	results := runCampaign(t, core.LegacyConfig())
	s := Summary(results)
	if s[OutcomeMissed] == 0 {
		t.Fatal("legacy platform missed nothing; attack scripts broken")
	}
	// The paper's direction: legacy misses strictly more than secure.
	secure := Summary(runCampaign(t, core.SecureConfig()))
	if s[OutcomeMissed] <= secure[OutcomeMissed] {
		t.Fatalf("legacy missed %d, secure missed %d", s[OutcomeMissed], secure[OutcomeMissed])
	}
}

func TestEveryThreatExercised(t *testing.T) {
	results := runCampaign(t, core.SecureConfig())
	covered := map[string]bool{}
	for _, r := range results {
		covered[r.ThreatID] = true
	}
	for _, tid := range []string{"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8"} {
		if !covered[tid] {
			t.Errorf("campaign never exercised %s", tid)
		}
	}
}

func TestResultsCarryDetail(t *testing.T) {
	for _, r := range runCampaign(t, core.SecureConfig()) {
		if r.Detail == "" || r.Attack == "" {
			t.Errorf("result without detail: %+v", r)
		}
	}
}

func TestDetectionOnlyPostureDetectsButDoesNotBlockRuntime(t *testing.T) {
	cfg := core.LegacyConfig()
	cfg.RuntimeMonitoring = true
	results := runCampaign(t, cfg)
	var t7 Result
	for _, r := range results {
		if r.ThreatID == "T7" {
			t7 = r
		}
	}
	if t7.Outcome != OutcomeDetected {
		t.Fatalf("T7 with falco-only = %v (%s), want detected", t7.Outcome, t7.Detail)
	}
}

func TestSandboxBlocksWhereFalcoOnlyDetects(t *testing.T) {
	cfg := core.LegacyConfig()
	cfg.RuntimeMonitoring = true
	cfg.SandboxEnabled = true
	results := runCampaign(t, cfg)
	var t7 Result
	for _, r := range results {
		if r.ThreatID == "T7" {
			t7 = r
		}
	}
	if t7.Outcome != OutcomeBlocked {
		t.Fatalf("T7 with sandbox = %v (%s), want blocked", t7.Outcome, t7.Detail)
	}
}

func TestQuotaAloneStopsResourceAbuse(t *testing.T) {
	cfg := core.LegacyConfig()
	cfg.TenantQuotas = true
	results := runCampaign(t, cfg)
	for _, r := range results {
		if r.Attack == "tenant resource monopolization" && r.Outcome != OutcomeBlocked {
			t.Fatalf("quota config outcome = %v (%s)", r.Outcome, r.Detail)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	if OutcomeBlocked.String() != "blocked" || Outcome(9).String() != "outcome(9)" {
		t.Fatal("Outcome.String mismatch")
	}
}

func TestSummaryTotals(t *testing.T) {
	results := runCampaign(t, core.SecureConfig())
	s := Summary(results)
	total := s[OutcomeBlocked] + s[OutcomeDetected] + s[OutcomeMissed]
	if total != len(results) {
		t.Fatalf("summary total %d != results %d", total, len(results))
	}
}
