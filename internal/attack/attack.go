// Package attack implements scripted adversaries for every threat of the
// GENIO model (T1–T8) and a campaign runner that executes them against a
// live core.Platform, scoring each attack as blocked, detected, or missed.
//
// The campaign is the measurement instrument for the end-to-end experiment:
// run it against core.LegacyConfig() and core.SecureConfig() and compare
// outcome distributions — the reproduction of the paper's overall claim
// that the layered mitigations close the identified threats.
package attack

import (
	"errors"
	"fmt"

	"genio/internal/container"
	"genio/internal/core"
	"genio/internal/host"
	"genio/internal/orchestrator"
	"genio/internal/pon"
	"genio/internal/rbac"
	"genio/internal/trace"
	"genio/internal/vuln"
)

// Outcome classifies what happened to one attack.
type Outcome int

// Outcomes, ordered from best (for the defender) to worst.
const (
	// OutcomeBlocked means the attack was prevented outright.
	OutcomeBlocked Outcome = iota + 1
	// OutcomeDetected means the attack executed but raised an alert.
	OutcomeDetected
	// OutcomeMissed means the attack succeeded silently.
	OutcomeMissed
)

var outcomeNames = map[Outcome]string{
	OutcomeBlocked:  "blocked",
	OutcomeDetected: "detected",
	OutcomeMissed:   "missed",
}

// String names the outcome.
func (o Outcome) String() string {
	if n, ok := outcomeNames[o]; ok {
		return n
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Result is one executed attack.
type Result struct {
	ThreatID string  `json:"threatId"`
	Attack   string  `json:"attack"`
	Outcome  Outcome `json:"outcome"`
	Detail   string  `json:"detail"`
}

// Campaign executes the full adversary playbook against a platform.
type Campaign struct {
	Platform *core.Platform
	// node is the edge node attacks focus on.
	node *core.EdgeNode
}

// NewCampaign prepares a campaign against p, provisioning one edge node
// and publishing the attack images the adversaries use.
func NewCampaign(p *core.Platform) (*Campaign, error) {
	node, err := p.AddEdgeNode("olt-target", orchestrator.Resources{CPUMilli: 16000, MemoryMB: 32768})
	if err != nil {
		return nil, fmt.Errorf("provision target node: %w", err)
	}
	// The adversary publishes images to the public registry. Signed images
	// come from an untrusted publisher — on the secure platform signature
	// verification rejects them at pull time.
	p.Registry.Push(container.CryptominerImage(), nil)
	p.Registry.Push(container.BackdoorImage(), nil)
	// A legitimate, signed vulnerable app is present as the T7 foothold.
	pub, err := container.NewPublisher("acme")
	if err != nil {
		return nil, fmt.Errorf("publisher: %w", err)
	}
	p.Registry.TrustPublisher("acme", pub.PublicKey())
	web := container.AnalyticsImage()
	sig := pub.Sign(web)
	p.Registry.Push(web, &sig)
	return &Campaign{Platform: p, node: node}, nil
}

// Run executes every scripted attack in threat order.
func (c *Campaign) Run() []Result {
	results := []Result{
		c.attackFiberTap(),
		c.attackReplay(),
		c.attackRogueONU(),
		c.attackBinaryTamper(),
		c.attackOMCIForgery(),
		c.attackLegacyService(),
		c.attackKernelCVE(),
		c.attackAnonymousAPI(),
		c.attackMiddlewareCVE(),
		c.attackExploitWebApp(),
		c.attackMaliciousImage(),
		c.attackResourceAbuse(),
		c.attackDBAAbuse(),
	}
	return results
}

// Summary tallies outcomes.
func Summary(results []Result) map[Outcome]int {
	out := make(map[Outcome]int)
	for _, r := range results {
		out[r.Outcome]++
	}
	return out
}

// --- T1: network attacks -----------------------------------------------------

func (c *Campaign) attackFiberTap() Result {
	r := Result{ThreatID: "T1", Attack: "fiber-tap interception"}
	onu, err := c.Platform.AttachONU(c.node.Name, "onu-victim")
	if err != nil {
		r.Outcome = OutcomeBlocked
		r.Detail = fmt.Sprintf("victim ONU could not even activate: %v", err)
		return r
	}
	var captured []pon.XGEMFrame
	c.node.OLT.AttachTap(pon.TapFunc(func(f pon.XGEMFrame) { captured = append(captured, f) }))
	secret := []byte("meter-reading-kwh-4711")
	if err := c.node.OLT.SendDownstream(onu.Port(), secret); err != nil {
		r.Outcome = OutcomeBlocked
		r.Detail = fmt.Sprintf("downstream send failed: %v", err)
		return r
	}
	for _, f := range captured {
		if !f.Encrypted {
			r.Outcome = OutcomeMissed
			r.Detail = "tap captured plaintext payload"
			return r
		}
	}
	r.Outcome = OutcomeBlocked
	r.Detail = "tap sees only AES-GCM ciphertext (M3)"
	return r
}

func (c *Campaign) attackReplay() Result {
	r := Result{ThreatID: "T1", Attack: "downstream replay injection"}
	onu, err := c.Platform.AttachONU(c.node.Name, "onu-replay-victim")
	if err != nil {
		r.Outcome = OutcomeBlocked
		r.Detail = fmt.Sprintf("victim activation failed: %v", err)
		return r
	}
	var captured []pon.XGEMFrame
	c.node.OLT.AttachTap(pon.TapFunc(func(f pon.XGEMFrame) { captured = append(captured, f) }))
	if err := c.node.OLT.SendDownstream(onu.Port(), []byte("cmd: open-relay")); err != nil {
		r.Outcome = OutcomeBlocked
		r.Detail = err.Error()
		return r
	}
	before := len(onu.Received())
	errs := c.node.OLT.InjectDownstream(captured[len(captured)-1])
	if len(errs) > 0 && errors.Is(errs[0], pon.ErrReplay) {
		r.Outcome = OutcomeBlocked
		r.Detail = "replayed frame rejected by sequence check (M3)"
		return r
	}
	if len(onu.Received()) > before {
		r.Outcome = OutcomeMissed
		r.Detail = "replayed command processed twice"
		return r
	}
	r.Outcome = OutcomeBlocked
	r.Detail = "replay had no effect"
	return r
}

func (c *Campaign) attackRogueONU() Result {
	r := Result{ThreatID: "T1", Attack: "rogue ONU impersonation"}
	rogue := pon.NewONU("onu-rogue", nil)
	err := c.node.OLT.Activate(rogue)
	if err != nil {
		r.Outcome = OutcomeBlocked
		r.Detail = fmt.Sprintf("activation rejected: %v (M4)", err)
		return r
	}
	r.Outcome = OutcomeMissed
	r.Detail = "rogue device joined the PON without credentials"
	return r
}

// --- T2: code tampering --------------------------------------------------------

func (c *Campaign) attackBinaryTamper() Result {
	r := Result{ThreatID: "T2", Attack: "system binary replacement"}
	c.node.Host.WriteFile(host.File{
		Path: "/usr/sbin/sshd", Mode: 0o755, Owner: "root",
		Content: []byte("sshd-with-backdoor"),
	})
	if c.node.FIM == nil {
		r.Outcome = OutcomeMissed
		r.Detail = "no integrity monitoring; backdoor persists silently"
		return r
	}
	alerts, err := c.node.FIM.Scan()
	if err != nil {
		r.Outcome = OutcomeMissed
		r.Detail = fmt.Sprintf("FIM scan failed: %v", err)
		return r
	}
	for _, a := range alerts {
		if a.Path == "/usr/sbin/sshd" && !a.Suppressed {
			r.Outcome = OutcomeDetected
			r.Detail = "Tripwire baseline diff raised an alert (M7)"
			return r
		}
	}
	r.Outcome = OutcomeMissed
	r.Detail = "tamper not visible in FIM scan"
	return r
}

func (c *Campaign) attackOMCIForgery() Result {
	r := Result{ThreatID: "T2", Attack: "forged firmware-update via OMCI"}
	onu, err := c.Platform.AttachONU(c.node.Name, "onu-omci-victim")
	if err != nil {
		r.Outcome = OutcomeBlocked
		r.Detail = fmt.Sprintf("victim activation failed: %v", err)
		return r
	}
	err = c.node.OLT.InjectOMCI(pon.OMCIMessage{
		Action: pon.OMCIFirmwareUpdate, Serial: onu.Serial,
		Arg: "http://203.0.113.7/fw-implant.bin", Seq: 999,
	})
	if err != nil {
		r.Outcome = OutcomeBlocked
		r.Detail = fmt.Sprintf("management channel rejected forgery: %v", err)
		return r
	}
	r.Outcome = OutcomeMissed
	r.Detail = "unsigned firmware-update command executed on the ONU"
	return r
}

// --- T3: privilege abuse (infra) ------------------------------------------------

func (c *Campaign) attackLegacyService() Result {
	r := Result{ThreatID: "T3", Attack: "login via legacy cleartext service"}
	svc, ok := c.node.Host.Service("telnetd")
	if ok && svc.Enabled {
		r.Outcome = OutcomeMissed
		r.Detail = "telnetd open; password brute-force path available"
		return r
	}
	r.Outcome = OutcomeBlocked
	r.Detail = "legacy services stripped by hardening (M1)"
	return r
}

// --- T4: software vulnerabilities (infra) ----------------------------------------

func (c *Campaign) attackKernelCVE() Result {
	r := Result{ThreatID: "T4", Attack: "kernel privilege-escalation exploit"}
	db := vuln.DefaultDatabase()
	version, _ := c.node.Host.PackageVersion("linux-image-onl")
	matches := db.Match("linux-image-onl", version)
	exploitable := false
	for _, m := range matches {
		if m.Exploitable {
			exploitable = true
		}
	}
	if !exploitable {
		r.Outcome = OutcomeBlocked
		r.Detail = "no exploitable kernel CVE at installed version"
		return r
	}
	if c.Platform.Config.VulnManagement {
		// M8 found the CVE; the patch cycle applied the fixed kernel
		// before the adversary's exploitation window.
		c.node.Host.InstallPackage(host.Package{Name: "linux-image-onl", Version: "4.19.300", Path: "/boot"})
		r.Outcome = OutcomeBlocked
		r.Detail = "CVE found by scheduled scan and patched (M8)"
		return r
	}
	r.Outcome = OutcomeMissed
	r.Detail = "unpatched exploitable kernel CVE; host compromised"
	return r
}

// --- T5: privilege abuse (middleware) ---------------------------------------------

func (c *Campaign) attackAnonymousAPI() Result {
	r := Result{ThreatID: "T5", Attack: "anonymous workload creation cross-tenant"}
	_, err := c.Platform.Deploy("anonymous-attacker", orchestrator.WorkloadSpec{
		Name: "implant", Tenant: "victim-tenant", ImageRef: "acme/analytics:2.0.1",
		Isolation: orchestrator.IsolationSoft,
		Resources: orchestrator.Resources{CPUMilli: 100, MemoryMB: 128},
	})
	var unauth *orchestrator.UnauthorizedError
	if errors.As(err, &unauth) {
		r.Outcome = OutcomeBlocked
		r.Detail = fmt.Sprintf("RBAC denied %s in tenant %s (M10)", unauth.Subject, unauth.Tenant)
		return r
	}
	if err != nil {
		r.Outcome = OutcomeBlocked
		r.Detail = fmt.Sprintf("deployment failed: %v", err)
		return r
	}
	r.Outcome = OutcomeMissed
	r.Detail = "anonymous subject deployed into a foreign tenant"
	return r
}

// --- T6: software vulnerabilities (middleware) --------------------------------------

func (c *Campaign) attackMiddlewareCVE() Result {
	r := Result{ThreatID: "T6", Attack: "exploit ONOS REST API auth bypass"}
	db := vuln.DefaultDatabase()
	cve, _ := db.Get("CVE-2023-1007") // onos, no upstream fix
	if !c.Platform.Config.VulnManagement {
		r.Outcome = OutcomeMissed
		r.Detail = "no middleware vulnerability tracking; API exposed"
		return r
	}
	tracker := vuln.NewTracker(vuln.DefaultFeeds(), 5)
	exp := tracker.Track(cve)
	if exp.NeverVisible {
		r.Outcome = OutcomeMissed
		r.Detail = "advisory never surfaced through any feed"
		return r
	}
	// The advisory was found (via NVD fallback) and the endpoint fenced
	// off; the exploit is detected-then-closed rather than silent.
	r.Outcome = OutcomeDetected
	r.Detail = fmt.Sprintf("advisory surfaced via %s after %d days; endpoint restricted (M12)",
		exp.BestFeed, exp.WindowDays)
	return r
}

// --- T7: vulnerable applications ------------------------------------------------

func (c *Campaign) attackExploitWebApp() Result {
	r := Result{ThreatID: "T7", Attack: "web app exploited into reverse shell"}
	// The tenant legitimately runs a signed app; the adversary exploits it
	// at runtime.
	if c.Platform.Config.RBACEnabled {
		c.allowTenant("acme-ci", "acme")
	}
	_, err := c.Platform.Deploy("acme-ci", orchestrator.WorkloadSpec{
		Name: "victim-web", Tenant: "acme", ImageRef: "acme/analytics:2.0.1",
		Isolation: orchestrator.IsolationSoft,
		Resources: orchestrator.Resources{CPUMilli: 200, MemoryMB: 256},
	})
	if err != nil {
		r.Outcome = OutcomeBlocked
		r.Detail = fmt.Sprintf("victim app not deployable: %v", err)
		return r
	}
	events := trace.ReverseShellTrace("victim-web", "acme")
	before := len(c.Platform.Incidents())
	executed := c.Platform.ObserveRuntime(events)
	incidents := c.Platform.Incidents()[before:]
	for _, i := range incidents {
		if i.Blocked {
			r.Outcome = OutcomeBlocked
			r.Detail = fmt.Sprintf("sandbox killed the shell after %d/%d events (M17)", executed, len(events))
			return r
		}
	}
	if len(incidents) > 0 {
		r.Outcome = OutcomeDetected
		r.Detail = "Falco alerted on post-exploitation behaviour (M18)"
		return r
	}
	r.Outcome = OutcomeMissed
	r.Detail = "reverse shell ran to completion unobserved"
	return r
}

// --- T8: malicious applications --------------------------------------------------

func (c *Campaign) attackMaliciousImage() Result {
	r := Result{ThreatID: "T8", Attack: "cryptominer image with CAP_SYS_ADMIN"}
	if c.Platform.Config.RBACEnabled {
		c.allowTenant("shady-ci", "shady")
	}
	_, err := c.Platform.Deploy("shady-ci", orchestrator.WorkloadSpec{
		Name: "optimizer", Tenant: "shady", ImageRef: "freestuff/optimizer:latest",
		Isolation: orchestrator.IsolationSoft,
		Resources: orchestrator.Resources{CPUMilli: 500, MemoryMB: 512},
	})
	if err != nil {
		r.Outcome = OutcomeBlocked
		// The typed taxonomy names the gate: a scanner verdict reports
		// which admission controller caught the image, a pull error means
		// the supply chain rejected it before any scan ran.
		var adm *orchestrator.AdmissionError
		var pull *orchestrator.ImagePullError
		switch {
		case errors.As(err, &adm) && len(adm.Rejections()) > 0:
			v := adm.Rejections()[0]
			r.Detail = fmt.Sprintf("blocked by %s: %s", v.Scanner, v.Detail)
		case errors.As(err, &pull):
			r.Detail = fmt.Sprintf("blocked at pull: %v", pull.Err)
		default:
			r.Detail = fmt.Sprintf("rejected before scheduling: %v", err)
		}
		return r
	}
	// Admitted: the miner attempts a container escape at runtime.
	events := trace.ContainerEscapeTrace("optimizer", "shady")
	before := len(c.Platform.Incidents())
	c.Platform.ObserveRuntime(events)
	incidents := c.Platform.Incidents()[before:]
	for _, i := range incidents {
		if i.Blocked {
			r.Outcome = OutcomeBlocked
			r.Detail = "escape blocked at CAP_SYS_ADMIN use (M17)"
			return r
		}
	}
	if len(incidents) > 0 {
		r.Outcome = OutcomeDetected
		r.Detail = "escape behaviour alerted by runtime monitoring (M18)"
		return r
	}
	r.Outcome = OutcomeMissed
	r.Detail = "miner escaped the container unobserved"
	return r
}

func (c *Campaign) attackResourceAbuse() Result {
	r := Result{ThreatID: "T8", Attack: "tenant resource monopolization"}
	if c.Platform.Config.RBACEnabled {
		c.allowTenant("greedy-ci", "greedy")
	}
	deployed := 0
	for i := 0; i < 16; i++ {
		_, err := c.Platform.Deploy("greedy-ci", orchestrator.WorkloadSpec{
			Name: fmt.Sprintf("hog-%02d", i), Tenant: "greedy", ImageRef: "acme/analytics:2.0.1",
			Isolation: orchestrator.IsolationSoft,
			Resources: orchestrator.Resources{CPUMilli: 900, MemoryMB: 1800},
		})
		if err != nil {
			var quota *orchestrator.QuotaError
			if errors.As(err, &quota) {
				r.Outcome = OutcomeBlocked
				r.Detail = fmt.Sprintf("quota stopped the tenant after %d workloads at cpu=%dm/%dm (T8 counter)",
					deployed, quota.Used.CPUMilli, quota.Quota.CPUMilli)
				return r
			}
			r.Outcome = OutcomeBlocked
			r.Detail = fmt.Sprintf("deployment stopped: %v", err)
			return r
		}
		deployed++
	}
	r.Outcome = OutcomeMissed
	r.Detail = fmt.Sprintf("tenant consumed %d workloads of cluster capacity unchecked", deployed)
	return r
}

// attackDBAAbuse is the physical-layer variant of resource monopolization:
// a compromised ONU inflates its DBRu queue reports to grab the shared
// upstream wavelength. The SLA grant cap (applied when the platform
// enforces tenant quotas) restores fairness.
func (c *Campaign) attackDBAAbuse() Result {
	r := Result{ThreatID: "T8", Attack: "upstream DBA report inflation"}
	serials := []string{"onu-dba-0", "onu-dba-1", "onu-dba-2", "onu-dba-3"}
	onus := make([]*pon.ONU, 0, len(serials))
	for _, s := range serials {
		u, err := c.Platform.AttachONU(c.node.Name, s)
		if err != nil {
			r.Outcome = OutcomeBlocked
			r.Detail = fmt.Sprintf("attacker ONUs could not activate: %v", err)
			return r
		}
		onus = append(onus, u)
	}
	for _, u := range onus {
		for i := 0; i < 4; i++ {
			if err := u.QueueUpstream(make([]byte, 100)); err != nil {
				r.Outcome = OutcomeBlocked
				r.Detail = err.Error()
				return r
			}
		}
	}
	onus[0].SetReportInflation(50)
	cfg := pon.DBAConfig{CycleBytes: 800}
	if c.Platform.Config.TenantQuotas {
		cfg.PerONUCap = 200 // the SLA cap shipped with quota enforcement
	}
	res, err := c.node.OLT.RunDBACycle(cfg)
	if err != nil {
		r.Outcome = OutcomeBlocked
		r.Detail = fmt.Sprintf("cycle aborted: %v", err)
		return r
	}
	// Fairness is judged over ONUs with actual demand; idle ONUs from
	// earlier attacks legitimately receive zero grant.
	var active []pon.Grant
	for _, g := range res.Grants {
		if g.Reported > 0 {
			active = append(active, g)
		}
	}
	fairness := pon.FairnessIndex(active)
	if fairness >= 0.9 {
		r.Outcome = OutcomeBlocked
		r.Detail = fmt.Sprintf("grant cap held fairness at %.2f despite 50x inflated reports", fairness)
		return r
	}
	r.Outcome = OutcomeMissed
	r.Detail = fmt.Sprintf("greedy ONU skewed allocation (fairness %.2f); neighbours starved", fairness)
	return r
}

func (c *Campaign) allowTenant(subject, tenant string) {
	c.Platform.RBAC.SetRole(rbac.Role{
		Name: tenant + "-deployer",
		Permissions: []rbac.Permission{
			{Verb: "create", Resource: "workloads", Namespace: tenant},
		},
	})
	_ = c.Platform.RBAC.Bind(subject, tenant+"-deployer")
}
