// Package persist is the control plane's pluggable durability layer: a
// small Store interface over an ordered log of control-plane mutations
// plus periodic compacted snapshots.
//
// Two backends ship:
//
//   - Memory: today's default behavior — the log lives and dies with
//     the process. It implements the full Store contract (including
//     Snapshot/Load), so tests exercise replay without touching disk.
//   - WAL (wal.go): an append-only JSON-line log on disk, group-committed
//     in batches so the deploy hot path never waits on a per-record
//     fsync, compacted by atomic snapshot files.
//
// Records are keyed by the spine's existing audit-event vocabulary
// (node-join, node-cordon, place, workload-stop, quota,
// admission-verdict) plus the incident stream. Every record kind
// replays as an absolute last-wins operation — place is an upsert by
// name, stop a delete, cordon/quota a set, verdicts a grow-only set,
// incidents deduplicated by sequence number — so a snapshot that
// already contains the effect of a logged record converges when the
// record is replayed on top of it. That idempotence is what lets
// snapshots be taken concurrently with traffic: the snapshot's LSN is
// read before the state export, and any mutation that slips into the
// export afterwards is simply replayed again on recovery.
package persist

import (
	"errors"
	"sort"
	"sync"

	"genio/internal/orchestrator"
)

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("persist: store closed")

// Record kinds. The control-plane kinds mirror
// orchestrator.Mutation's vocabulary verbatim; KindIncident carries the
// platform incident stream.
const (
	KindNodeJoin   = orchestrator.MutNodeJoin
	KindNodeRemove = orchestrator.MutNodeRemove
	KindNodeCordon = orchestrator.MutNodeCordon
	KindPlace      = orchestrator.MutPlace
	KindStop       = orchestrator.MutStop
	KindQuota      = orchestrator.MutQuota
	KindVerdict    = orchestrator.MutVerdict
	KindIncident   = "incident"
)

// Incident mirrors core.Incident for the durable log. persist sits
// below core in the import graph (core owns the Store), so the record
// type is defined here and core converts at the boundary.
type Incident struct {
	Source   string `json:"source"`
	Workload string `json:"workload,omitempty"`
	Detail   string `json:"detail"`
	Blocked  bool   `json:"blocked"`
	AtMs     int64  `json:"atMs,omitempty"`
	Seq      uint64 `json:"seq,omitempty"`
}

// Record is one durable log entry. LSN is assigned by Append,
// monotonically from 1; exactly the fields relevant to Kind are set.
type Record struct {
	LSN  uint64 `json:"lsn"`
	Kind string `json:"kind"`
	// Node membership / cordon.
	Node     string                  `json:"node,omitempty"`
	Capacity *orchestrator.Resources `json:"capacity,omitempty"`
	Cordoned bool                    `json:"cordoned,omitempty"`
	// Placement (KindPlace) and stop (KindStop). VMSeq is the VM id
	// sequence at placement time: replay takes the maximum across place
	// records so the counter survives workloads that were later stopped.
	Workload *orchestrator.Workload `json:"workload,omitempty"`
	VMSeq    int64                  `json:"vmSeq,omitempty"`
	Name     string                 `json:"name,omitempty"`
	// Quota (KindQuota).
	Tenant string                  `json:"tenant,omitempty"`
	Quota  *orchestrator.Resources `json:"quota,omitempty"`
	// Clean admission-verdict cache key (KindVerdict).
	Key string `json:"key,omitempty"`
	// Incident payload (KindIncident).
	Incident *Incident `json:"incident,omitempty"`
}

// State is everything a restarted control plane needs: the cluster's
// replayable state plus the incident ledger. LSN is the log position
// the snapshot covers — recovery replays only records beyond it.
type State struct {
	LSN     uint64                    `json:"lsn"`
	Cluster orchestrator.ClusterState `json:"cluster"`
	// Incidents is the full incident ledger, ordered by Seq.
	Incidents []Incident `json:"incidents,omitempty"`
	// IncidentSeq is the sequence floor for new incidents after
	// recovery (>= the max Seq in Incidents; may exceed it when the
	// newest incidents were still in flight at snapshot time).
	IncidentSeq uint64 `json:"incidentSeq,omitempty"`
}

// Store is the persistence seam the platform writes through. Append is
// called on hot paths inside cluster locks: implementations must
// buffer and return immediately, deferring durability to a group
// commit (Flush is the explicit durability barrier). Snapshot persists
// a compacted state and lets the backend drop records the snapshot
// covers; Load returns the recovered state (snapshot plus replayed
// tail), or nil when the store holds nothing. Close flushes and
// releases resources without taking an implicit snapshot — the
// platform decides whether a shutdown is graceful (snapshot) or a
// simulated crash (flush only).
type Store interface {
	Append(rec Record) error
	Flush() error
	// LastLSN reports the newest assigned LSN (0 before any append).
	// Read it BEFORE exporting state for a snapshot: mutations are
	// logged inside the lock that applies them, so state exported
	// after the read is guaranteed to contain every record at or below
	// it.
	LastLSN() uint64
	Snapshot(st *State) error
	Load() (*State, error)
	Close() error
}

// apply replays records (an LSN-ordered suffix of the log) onto base,
// returning the recovered state. Records at or below base.LSN are
// skipped; everything else applies last-wins, so overlap between the
// snapshot and the tail is harmless.
func apply(base *State, recs []Record) *State {
	nodes := make(map[string]orchestrator.NodeState, len(base.Cluster.Nodes))
	for _, ns := range base.Cluster.Nodes {
		nodes[ns.Name] = ns
	}
	wls := make(map[string]orchestrator.Workload, len(base.Cluster.Workloads))
	for _, w := range base.Cluster.Workloads {
		wls[w.Spec.Name] = w
	}
	quotas := make(map[string]orchestrator.Resources, len(base.Cluster.Quotas))
	for t, q := range base.Cluster.Quotas {
		quotas[t] = q
	}
	verdicts := make(map[string]struct{}, len(base.Cluster.Verdicts))
	for _, k := range base.Cluster.Verdicts {
		verdicts[k] = struct{}{}
	}
	incidents := append([]Incident(nil), base.Incidents...)
	seenSeq := make(map[uint64]struct{}, len(incidents))
	for _, i := range incidents {
		seenSeq[i.Seq] = struct{}{}
	}

	st := &State{LSN: base.LSN, IncidentSeq: base.IncidentSeq}
	st.Cluster.VMSeq = base.Cluster.VMSeq
	for _, r := range recs {
		if r.LSN <= base.LSN {
			continue
		}
		if r.LSN > st.LSN {
			st.LSN = r.LSN
		}
		switch r.Kind {
		case KindNodeJoin:
			ns := orchestrator.NodeState{Name: r.Node}
			if r.Capacity != nil {
				ns.Capacity = *r.Capacity
			}
			nodes[r.Node] = ns
		case KindNodeRemove:
			delete(nodes, r.Node)
		case KindNodeCordon:
			if ns, ok := nodes[r.Node]; ok {
				ns.Cordoned = r.Cordoned
				nodes[r.Node] = ns
			}
		case KindPlace:
			if r.Workload != nil {
				wls[r.Workload.Spec.Name] = *r.Workload
			}
			if r.VMSeq > st.Cluster.VMSeq {
				st.Cluster.VMSeq = r.VMSeq
			}
		case KindStop:
			delete(wls, r.Name)
		case KindQuota:
			if r.Quota != nil {
				quotas[r.Tenant] = *r.Quota
			}
		case KindVerdict:
			verdicts[r.Key] = struct{}{}
		case KindIncident:
			if r.Incident == nil {
				break
			}
			if _, dup := seenSeq[r.Incident.Seq]; dup {
				break
			}
			seenSeq[r.Incident.Seq] = struct{}{}
			incidents = append(incidents, *r.Incident)
			if r.Incident.Seq > st.IncidentSeq {
				st.IncidentSeq = r.Incident.Seq
			}
		}
	}

	st.Cluster.Nodes = make([]orchestrator.NodeState, 0, len(nodes))
	for _, ns := range nodes {
		st.Cluster.Nodes = append(st.Cluster.Nodes, ns)
	}
	sort.Slice(st.Cluster.Nodes, func(i, j int) bool {
		return st.Cluster.Nodes[i].Name < st.Cluster.Nodes[j].Name
	})
	st.Cluster.Workloads = make([]orchestrator.Workload, 0, len(wls))
	for _, w := range wls {
		st.Cluster.Workloads = append(st.Cluster.Workloads, w)
	}
	sort.Slice(st.Cluster.Workloads, func(i, j int) bool {
		return st.Cluster.Workloads[i].Spec.Name < st.Cluster.Workloads[j].Spec.Name
	})
	if len(quotas) > 0 {
		st.Cluster.Quotas = quotas
	}
	st.Cluster.Verdicts = make([]string, 0, len(verdicts))
	for k := range verdicts {
		st.Cluster.Verdicts = append(st.Cluster.Verdicts, k)
	}
	sort.Strings(st.Cluster.Verdicts)
	sort.Slice(incidents, func(i, j int) bool { return incidents[i].Seq < incidents[j].Seq })
	st.Incidents = incidents
	for _, i := range incidents {
		if i.Seq > st.IncidentSeq {
			st.IncidentSeq = i.Seq
		}
	}
	return st
}

// memory is the in-process backend: the Store contract without
// durability. The default when no store is configured at all is "no
// persistence"; Memory exists so the replay machinery (snapshot +
// tail) is testable without a filesystem and so callers can switch
// backends without special-casing nil.
type memory struct {
	mu     sync.Mutex
	lsn    uint64
	recs   []Record
	snap   *State
	closed bool
}

// Memory returns the in-process Store.
func Memory() Store {
	return &memory{}
}

func (m *memory) Append(rec Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.lsn++
	rec.LSN = m.lsn
	m.recs = append(m.recs, rec)
	return nil
}

func (m *memory) Flush() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	return nil
}

func (m *memory) LastLSN() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lsn
}

func (m *memory) Snapshot(st *State) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.snap = st
	// Compact: drop records the snapshot covers.
	keep := m.recs[:0]
	for _, r := range m.recs {
		if r.LSN > st.LSN {
			keep = append(keep, r)
		}
	}
	m.recs = keep
	return nil
}

func (m *memory) Load() (*State, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.snap == nil && len(m.recs) == 0 {
		return nil, nil
	}
	base := m.snap
	if base == nil {
		base = &State{}
	}
	return apply(base, m.recs), nil
}

func (m *memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
