package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"genio/internal/orchestrator"
)

func placeRecord(name, node string, cpu int) Record {
	return Record{Kind: KindPlace, Workload: &orchestrator.Workload{
		Spec: orchestrator.WorkloadSpec{Name: name, Tenant: "acme",
			Resources: orchestrator.Resources{CPUMilli: cpu, MemoryMB: 64}},
		Node: node, VMID: "vm-001",
	}}
}

func joinRecord(node string, cpu int) Record {
	return Record{Kind: KindNodeJoin, Node: node,
		Capacity: &orchestrator.Resources{CPUMilli: cpu, MemoryMB: 1024}}
}

// seedStore drives a representative mutation sequence through any Store.
func seedStore(t *testing.T, s Store) {
	t.Helper()
	recs := []Record{
		joinRecord("olt-01", 4000),
		joinRecord("olt-02", 4000),
		{Kind: KindQuota, Tenant: "acme", Quota: &orchestrator.Resources{CPUMilli: 2000, MemoryMB: 512}},
		placeRecord("web", "olt-01", 500),
		placeRecord("db", "olt-02", 500),
		{Kind: KindVerdict, Key: "malware\x00sha256:abc"},
		{Kind: KindStop, Name: "db"},
		{Kind: KindNodeCordon, Node: "olt-02", Cordoned: true},
		{Kind: KindIncident, Incident: &Incident{Source: "falco", Detail: "probe", Seq: 1}},
	}
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			t.Fatalf("append %s: %v", r.Kind, err)
		}
	}
}

// checkSeeded asserts the state recovered from seedStore's sequence.
func checkSeeded(t *testing.T, st *State) {
	t.Helper()
	if st == nil {
		t.Fatal("recovered state is nil")
	}
	if len(st.Cluster.Nodes) != 2 {
		t.Fatalf("nodes = %+v, want 2", st.Cluster.Nodes)
	}
	if !st.Cluster.Nodes[1].Cordoned || st.Cluster.Nodes[0].Cordoned {
		t.Fatalf("cordon state wrong: %+v", st.Cluster.Nodes)
	}
	if len(st.Cluster.Workloads) != 1 || st.Cluster.Workloads[0].Spec.Name != "web" {
		t.Fatalf("workloads = %+v, want only web (db stopped)", st.Cluster.Workloads)
	}
	if q := st.Cluster.Quotas["acme"]; q.CPUMilli != 2000 {
		t.Fatalf("quota = %+v", st.Cluster.Quotas)
	}
	if len(st.Cluster.Verdicts) != 1 {
		t.Fatalf("verdicts = %v", st.Cluster.Verdicts)
	}
	if len(st.Incidents) != 1 || st.Incidents[0].Source != "falco" {
		t.Fatalf("incidents = %+v", st.Incidents)
	}
	if st.IncidentSeq != 1 {
		t.Fatalf("incident seq = %d", st.IncidentSeq)
	}
}

// TestVMSeqSurvivesStoppedWorkload: the VM id counter must recover from
// place records even when the workload that advanced it was stopped
// before the crash — otherwise a restarted cluster re-mints a spent id.
func TestVMSeqSurvivesStoppedWorkload(t *testing.T) {
	s := Memory()
	recs := []Record{
		joinRecord("olt-01", 4000),
		{Kind: KindPlace, VMSeq: 1, Workload: &orchestrator.Workload{
			Spec: orchestrator.WorkloadSpec{Name: "wl-a", Tenant: "acme"}, Node: "olt-01", VMID: "vm-001"}},
		{Kind: KindPlace, VMSeq: 2, Workload: &orchestrator.Workload{
			Spec: orchestrator.WorkloadSpec{Name: "wl-b", Tenant: "acme"}, Node: "olt-01", VMID: "vm-002"}},
		{Kind: KindStop, Name: "wl-b"},
	}
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	st, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cluster.VMSeq != 2 {
		t.Fatalf("recovered VMSeq = %d, want 2 (vm-002 was minted then stopped)", st.Cluster.VMSeq)
	}
	if len(st.Cluster.Workloads) != 1 || st.Cluster.Workloads[0].VMID != "vm-001" {
		t.Fatalf("workloads = %+v", st.Cluster.Workloads)
	}
}

func TestMemoryReplay(t *testing.T) {
	s := Memory()
	if st, err := s.Load(); err != nil || st != nil {
		t.Fatalf("empty load = %v, %v; want nil, nil", st, err)
	}
	seedStore(t, s)
	st, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	checkSeeded(t, st)

	// Snapshot compacts; replaying the (empty) tail over it converges.
	if err := s.Snapshot(st); err != nil {
		t.Fatal(err)
	}
	st2, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	checkSeeded(t, st2)

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Record{Kind: KindStop, Name: "x"}); err != ErrClosed {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
}

func TestWALCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	seedStore(t, w)
	// Crash-style close: flush the group commit, never snapshot.
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapFile)); !os.IsNotExist(err) {
		t.Fatalf("close must not snapshot, stat err = %v", err)
	}

	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	st, err := w2.Load()
	if err != nil {
		t.Fatal(err)
	}
	checkSeeded(t, st)
	if got := w2.LastLSN(); got != 9 {
		t.Fatalf("recovered LSN = %d, want 9", got)
	}

	// New appends continue the LSN sequence past recovery.
	if err := w2.Append(placeRecord("api", "olt-01", 200)); err != nil {
		t.Fatal(err)
	}
	if got := w2.LastLSN(); got != 10 {
		t.Fatalf("post-recovery LSN = %d, want 10", got)
	}
}

func TestWALSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	seedStore(t, w)
	st, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	st.LSN = w.LastLSN()
	if err := w.Snapshot(st); err != nil {
		t.Fatal(err)
	}
	// The rotated log holds nothing: the snapshot covers every record.
	if buf, err := os.ReadFile(filepath.Join(dir, walFile)); err != nil || len(buf) != 0 {
		t.Fatalf("rotated wal len=%d err=%v, want empty", len(buf), err)
	}

	// Appends after rotation land in the new log and survive reopen.
	if err := w.Append(placeRecord("api", "olt-01", 200)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	st2, err := w2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Cluster.Workloads) != 2 {
		t.Fatalf("workloads after rotation+append = %+v", st2.Cluster.Workloads)
	}
	checkOverlapConverges(t, st, st2)
}

// checkOverlapConverges asserts the pre-rotation state is a subset view of
// the post-recovery one (same nodes and quotas).
func checkOverlapConverges(t *testing.T, before, after *State) {
	t.Helper()
	if !reflect.DeepEqual(before.Cluster.Nodes, after.Cluster.Nodes) {
		t.Fatalf("nodes diverged:\n%+v\n%+v", before.Cluster.Nodes, after.Cluster.Nodes)
	}
	if !reflect.DeepEqual(before.Cluster.Quotas, after.Cluster.Quotas) {
		t.Fatalf("quotas diverged:\n%+v\n%+v", before.Cluster.Quotas, after.Cluster.Quotas)
	}
}

// TestWALSnapshotOverlapIdempotent covers the deliberate overlap window: a
// snapshot whose LSN is older than the log tail leaves records present in
// BOTH the snapshot and the tail; replay must converge, not double-apply.
func TestWALSnapshotOverlapIdempotent(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	seedStore(t, w)
	st, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	// Claim the snapshot covers only the first 3 records; records 4..9 stay
	// in the rotated log even though st already contains their effects.
	st.LSN = 3
	if err := w.Snapshot(st); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	st2, err := w2.Load()
	if err != nil {
		t.Fatal(err)
	}
	checkSeeded(t, st2)
}

// TestWALTornTail loses only the interrupted final line.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	seedStore(t, w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"lsn":10,"kind":"place","workl`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	st, err := w2.Load()
	if err != nil {
		t.Fatal(err)
	}
	checkSeeded(t, st)
	if got := w2.LastLSN(); got != 9 {
		t.Fatalf("LSN after torn tail = %d, want 9", got)
	}
}

// TestWALTornTailThenAppend is the recovery-after-recovery regression:
// OpenWAL must truncate a torn tail before appending, or the first
// post-recovery record concatenates onto the leftover bytes into one
// unparsable line — and the NEXT recovery stops there, silently
// dropping every acknowledged record written after the crash.
func TestWALTornTailThenAppend(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	seedStore(t, w) // LSNs 1..9
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"lsn":10,"kind":"place","workl`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// First recovery discards the torn record, then keeps writing.
	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(placeRecord("post-crash", "olt-01", 100)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	// Second recovery must see the seed AND the post-crash record: the
	// torn bytes may not poison the line the new record landed on.
	w3, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	st, err := w3.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got := w3.LastLSN(); got != 10 {
		t.Fatalf("LSN after torn-tail append cycle = %d, want 10", got)
	}
	names := make(map[string]bool, len(st.Cluster.Workloads))
	for _, wl := range st.Cluster.Workloads {
		names[wl.Spec.Name] = true
	}
	if !names["web"] || !names["post-crash"] {
		t.Fatalf("workloads = %+v, want web and post-crash to survive", st.Cluster.Workloads)
	}
}

// TestWALLargeRecordRecovers: the write path imposes no line-length
// limit (a record embeds a full workload snapshot), so the recovery
// path may not either — a record past any fixed scanner buffer must
// still boot. The old reader capped lines at 8MB and refused to open.
func TestWALLargeRecordRecovers(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	big := placeRecord(strings.Repeat("x", 9<<20), "olt-01", 10)
	if err := w.Append(big); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatalf("reopen over >8MB record: %v", err)
	}
	defer w2.Close()
	st, err := w2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Cluster.Workloads) != 1 || len(st.Cluster.Workloads[0].Spec.Name) != 9<<20 {
		t.Fatalf("large record did not survive recovery: %d workloads", len(st.Cluster.Workloads))
	}
}

func TestWALCorruptSnapshotRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapFile), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(dir); err == nil {
		t.Fatal("open over corrupt snapshot must fail loudly")
	}
}

// TestWALGroupCommitBatches proves Append never blocks on I/O: a burst of
// appends lands durably with far fewer fsyncs than records (indirectly, by
// verifying all records survive a flush+reopen while Append stays
// non-blocking under the store mutex only).
func TestWALGroupCommitBatches(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := w.Append(placeRecord(fmt.Sprintf("wl-%03d", i), "olt-01", 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := readLog(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("recovered %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
}

// TestWALConcurrentAppendSnapshot races appends against snapshots (run
// under -race): every record appended must survive into the final state,
// whether it travelled via a snapshot or the rotated log.
func TestWALConcurrentAppendSnapshot(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 4, 50
	var appenders sync.WaitGroup
	for g := 0; g < writers; g++ {
		appenders.Add(1)
		go func(g int) {
			defer appenders.Done()
			for i := 0; i < per; i++ {
				name := fmt.Sprintf("wl-%d-%03d", g, i)
				if err := w.Append(placeRecord(name, "olt-01", 10)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			st, err := w.Load()
			if err != nil {
				t.Errorf("load: %v", err)
				return
			}
			if st == nil {
				continue
			}
			if err := w.Snapshot(st); err != nil && err != ErrClosed {
				t.Errorf("snapshot: %v", err)
				return
			}
		}
	}()
	appenders.Wait()
	close(stop)
	<-snapDone

	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(st.Cluster.Workloads); got != writers*per {
		t.Fatalf("recovered %d workloads, want %d", got, writers*per)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// And the on-disk view agrees after reopen.
	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	st2, err := w2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(st2.Cluster.Workloads); got != writers*per {
		t.Fatalf("reopened with %d workloads, want %d", got, writers*per)
	}
}

// TestRecordJSONStable pins the wire format of a representative record so
// accidental field renames show up as a test diff, not a recovery failure.
func TestRecordJSONStable(t *testing.T) {
	r := Record{LSN: 7, Kind: KindQuota, Tenant: "acme",
		Quota: &orchestrator.Resources{CPUMilli: 100, MemoryMB: 256}}
	buf, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"lsn":7,"kind":"quota","tenant":"acme","quota":{"cpuMilli":100,"memoryMB":256}}`
	if string(buf) != want {
		t.Fatalf("record json drifted:\n got %s\nwant %s", buf, want)
	}
}
