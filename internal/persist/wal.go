package persist

// The WAL backend: an append-only JSON-line log (wal.log) plus an
// atomically replaced snapshot file (snapshot.json) in one data
// directory.
//
// Durability is group-committed: Append assigns the LSN and buffers
// the record under a mutex — it never touches the filesystem — and a
// single committer goroutine drains whatever accumulated while its
// previous write+fsync was in flight, so one fsync amortizes over the
// whole batch and the deploy hot path never waits on it. Flush blocks
// until everything appended before the call is fsynced.
//
// Snapshot writes the compacted state via tmp+rename (readers never
// see a torn snapshot), then rotates the log the same way: a new
// wal.log containing only the records beyond the snapshot's LSN,
// including any still-unsynced buffered records — rotation IS their
// durability, so the pending batch is retired in the same step.
// Recovery (Open + Load) reads the snapshot if present and replays the
// log's records beyond its LSN; a torn final line (the write the crash
// interrupted) is discarded, everything before it survives. The torn
// bytes themselves are truncated away before the log is reopened for
// append — left in place they would fuse with the next append into one
// unparsable line, and the following recovery would stop there and
// silently drop every record written after the crash.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

const (
	walFile  = "wal.log"
	snapFile = "snapshot.json"
)

// WAL is the on-disk Store. Safe for concurrent use.
type WAL struct {
	dir string

	mu   sync.Mutex
	cond *sync.Cond
	f    *os.File
	// nextLSN is the last assigned LSN; committed the last durable one.
	nextLSN   uint64
	committed uint64
	// pending holds appended-not-yet-written records; tail every record
	// beyond the last snapshot (pending is always a suffix of tail).
	pending []Record
	tail    []Record
	// base is the last snapshot state (from disk at Open, refreshed by
	// Snapshot); snapLSN its covered position.
	base    *State
	snapLSN uint64
	// inflight marks the committer writing outside the lock; paused
	// parks it while Snapshot rotates the files.
	inflight bool
	paused   bool
	closed   bool
	err      error // first write/sync error, sticky
	done     chan struct{}
}

// OpenWAL opens (creating if needed) the data directory and recovers
// its snapshot and log into memory. The returned store is ready for
// Load and for appends.
func OpenWAL(dir string) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: data dir: %w", err)
	}
	w := &WAL{dir: dir, done: make(chan struct{})}
	w.cond = sync.NewCond(&w.mu)

	if buf, err := os.ReadFile(filepath.Join(dir, snapFile)); err == nil {
		st := &State{}
		if err := json.Unmarshal(buf, st); err != nil {
			return nil, fmt.Errorf("persist: corrupt snapshot: %w", err)
		}
		w.base = st
		w.snapLSN = st.LSN
		w.nextLSN = st.LSN
		w.committed = st.LSN
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("persist: read snapshot: %w", err)
	}

	walPath := filepath.Join(dir, walFile)
	recs, durable, err := readLog(walPath)
	if err != nil {
		return nil, err
	}
	for _, r := range recs {
		if r.LSN <= w.snapLSN {
			continue // pre-rotation leftovers the snapshot already covers
		}
		w.tail = append(w.tail, r)
		if r.LSN > w.nextLSN {
			w.nextLSN = r.LSN
		}
	}
	w.committed = w.nextLSN

	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open wal: %w", err)
	}
	// Cut off a crash-torn tail before appending: new records written
	// after the torn bytes would concatenate into one unparsable line,
	// and the next recovery would stop there — dropping records a Flush
	// had already acknowledged. Truncation makes the discard permanent
	// and the file append-clean again.
	if fi, serr := f.Stat(); serr == nil && fi.Size() > durable {
		if err := f.Truncate(durable); err != nil {
			f.Close()
			return nil, fmt.Errorf("persist: truncate torn wal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("persist: sync truncated wal: %w", err)
		}
	}
	w.f = f
	go w.commitLoop()
	return w, nil
}

// readLog parses the JSON-line log, stopping at the first unparsable
// or unterminated line — a torn tail write from a crash loses only
// that record. It also returns the byte offset just past the last good
// line, so the caller can truncate the torn bytes away before
// appending. Lines are read unbounded (a record embeds a full workload
// snapshot, so no fixed cap can be assumed on both the write and the
// recovery path).
func readLog(path string) ([]Record, int64, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("persist: open wal: %w", err)
	}
	defer f.Close()
	var (
		recs    []Record
		durable int64 // offset just past the last fully-parsed line
		off     int64
	)
	rd := bufio.NewReader(f)
	for {
		line, err := rd.ReadBytes('\n')
		off += int64(len(line))
		if err == io.EOF {
			// A final line without its newline: the batch write (which
			// ends every record with '\n' before the fsync) was torn
			// mid-record. Discard it even if the bytes so far happen to
			// parse — appending after them would fuse two records.
			return recs, durable, nil
		}
		if err != nil {
			return nil, 0, fmt.Errorf("persist: read wal: %w", err)
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			durable = off
			continue
		}
		var r Record
		if err := json.Unmarshal(trimmed, &r); err != nil {
			// Torn or corrupt line: everything after it is unreachable
			// on replay, so the durable prefix ends here.
			return recs, durable, nil
		}
		recs = append(recs, r)
		durable = off
	}
}

// Append assigns the next LSN and buffers the record for the group
// committer. It performs no I/O.
func (w *WAL) Append(rec Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.err != nil {
		return w.err
	}
	w.nextLSN++
	rec.LSN = w.nextLSN
	w.pending = append(w.pending, rec)
	w.tail = append(w.tail, rec)
	w.cond.Broadcast()
	return nil
}

// commitLoop is the group committer: each iteration takes everything
// buffered since the last write and retires it with one write+fsync.
func (w *WAL) commitLoop() {
	w.mu.Lock()
	for {
		for (len(w.pending) == 0 || w.paused) && !w.closed {
			w.cond.Wait()
		}
		if w.closed && (len(w.pending) == 0 || w.err != nil) {
			break
		}
		if w.paused && !w.closed {
			continue
		}
		batch := w.pending
		w.pending = nil
		f := w.f
		w.inflight = true
		w.mu.Unlock()

		err := writeBatch(f, batch)

		w.mu.Lock()
		w.inflight = false
		if err != nil && w.err == nil {
			w.err = err
		}
		if last := batch[len(batch)-1].LSN; last > w.committed {
			w.committed = last
		}
		w.cond.Broadcast()
	}
	w.mu.Unlock()
	close(w.done)
}

// writeBatch marshals the batch into one buffer, writes it, and fsyncs.
func writeBatch(f *os.File, batch []Record) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf) // Encode appends the newline
	for _, r := range batch {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("persist: encode record: %w", err)
		}
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("persist: write wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("persist: sync wal: %w", err)
	}
	return nil
}

// Flush blocks until every record appended before the call is durable
// (or the store failed/closed), returning the sticky write error.
func (w *WAL) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	target := w.nextLSN
	for w.committed < target && w.err == nil {
		if w.closed && len(w.pending) == 0 && !w.inflight {
			break
		}
		w.cond.Wait()
	}
	return w.err
}

// LastLSN reports the newest assigned LSN.
func (w *WAL) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// Snapshot persists st atomically and compacts the log down to the
// records beyond st.LSN. The snapshot file — the expensive encode and
// fsync, proportional to the whole state — is written BEFORE the store
// mutex is taken: its contents do not depend on WAL internals, and the
// crash ordering is safe (a snapshot that lands without its log
// rotation just means recovery replays a longer, idempotent tail).
// Appends therefore only block for the short log rotation, not the
// state-sized write. Callers serialize snapshots (the platform's
// snapMu); concurrent Snapshot calls are not supported.
func (w *WAL) Snapshot(st *State) error {
	buf, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("persist: encode snapshot: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(w.dir, snapFile), buf); err != nil {
		return err
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	w.paused = true
	defer func() {
		w.paused = false
		w.cond.Broadcast()
	}()
	for w.inflight {
		w.cond.Wait()
	}
	if w.closed {
		return ErrClosed
	}
	if w.err != nil {
		return w.err
	}

	// Rotate the log: keep only records beyond the snapshot. The kept
	// set includes any pending records — once the rotated file is
	// synced and renamed they are durable, so the pending batch is
	// retired here instead of by the committer.
	keep := make([]Record, 0, len(w.tail))
	for _, r := range w.tail {
		if r.LSN > st.LSN {
			keep = append(keep, r)
		}
	}
	var logBuf bytes.Buffer
	enc := json.NewEncoder(&logBuf)
	for _, r := range keep {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("persist: encode record: %w", err)
		}
	}
	if err := writeFileAtomic(filepath.Join(w.dir, walFile), logBuf.Bytes()); err != nil {
		return err
	}
	old := w.f
	f, err := os.OpenFile(filepath.Join(w.dir, walFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		w.err = fmt.Errorf("persist: reopen wal: %w", err)
		return w.err
	}
	w.f = f
	_ = old.Close()
	w.tail = keep
	w.pending = nil
	w.committed = w.nextLSN
	w.base = st
	w.snapLSN = st.LSN
	return nil
}

// writeFileAtomic writes data via tmp + fsync + rename + directory
// fsync. The final sync is what makes the rename itself durable: the
// snapshot's rename must be on disk before the log rotation that
// depends on it, and without a dir fsync a power cut may persist the
// renames in either order — a rotated (compacted) log next to the OLD
// snapshot loses every record the new snapshot covered.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: write %s: %w", filepath.Base(path), err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("persist: write %s: %w", filepath.Base(path), err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("persist: sync %s: %w", filepath.Base(path), err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: close %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("persist: rename %s: %w", filepath.Base(path), err)
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a rename inside it survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: open dir %s: %w", dir, err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("persist: sync dir %s: %w", dir, err)
	}
	return d.Close()
}

// Load returns the recovered state: the last snapshot with the log
// tail replayed on top, or nil when the store holds nothing yet.
func (w *WAL) Load() (*State, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.base == nil && len(w.tail) == 0 {
		return nil, nil
	}
	base := w.base
	if base == nil {
		base = &State{}
	}
	return apply(base, w.tail), nil
}

// Close flushes the pending batch and releases the log file. It does
// NOT snapshot — the platform owns that decision (graceful shutdown
// snapshots; a simulated crash closes flush-only). Idempotent.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		<-w.done
		return nil
	}
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	<-w.done

	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.err
	if w.f != nil {
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
		w.f = nil
	}
	return err
}
