// Package integration holds cross-module scenarios exercising chains of
// subsystems that no single package test covers: full node reboot cycles
// with tamper detection, fleet update rollouts, multi-tenant isolation
// reviews, and the complete incident pipeline.
package integration

import (
	"bytes"
	"errors"
	"testing"

	"genio/internal/container"
	"genio/internal/core"
	"genio/internal/orchestrator"
	"genio/internal/pki"
	"genio/internal/pon"
	"genio/internal/rbac"
	"genio/internal/sandbox"
	"genio/internal/secureboot"
	"genio/internal/storage"
	"genio/internal/tpm"
	"genio/internal/trace"
	"genio/internal/updates"
)

// TestRebootCycleDetectsKernelSwap walks a node through two boots: a clean
// one that seals the disk key to the measured kernel, then a boot of a
// tampered kernel with Secure Boot disabled by the attacker — Measured
// Boot still changes the PCRs, so the sealed key is not released and the
// tenant data stays dark.
func TestRebootCycleDetectsKernelSwap(t *testing.T) {
	signer, err := secureboot.NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	chain := []secureboot.Component{
		signer.SignComponent(secureboot.StageShim, "shim", []byte("shim-15.8")),
		signer.SignComponent(secureboot.StageBootloader, "grub", []byte("grub-2.06")),
		signer.SignComponent(secureboot.StageKernel, "kernel", []byte("vmlinuz-good")),
	}

	// Boot 1: clean.
	tp, err := tpm.New()
	if err != nil {
		t.Fatal(err)
	}
	fw := secureboot.NewFirmware(signer.VendorPub, tp)
	if _, err := fw.Boot(signer.PlatformPub, chain); err != nil {
		t.Fatalf("clean boot: %v", err)
	}
	vol, err := storage.CreateVolume("data", "recovery")
	if err != nil {
		t.Fatal(err)
	}
	if err := vol.Write("/tenant/db", []byte("records")); err != nil {
		t.Fatal(err)
	}
	cfg := storage.ClevisConfig{TPM: tp, PCRSelection: []int{tpm.PCRKernel}, HasTPMLibs: true}
	if err := vol.BindTPMSlot("clevis", cfg); err != nil {
		t.Fatal(err)
	}
	vol.Lock()
	if err := vol.UnlockTPM("clevis", tp); err != nil {
		t.Fatalf("clean unlock: %v", err)
	}
	vol.Lock()

	// Boot 2: attacker swaps the kernel AND disables Secure Boot. A fresh
	// power cycle resets PCRs — modelled by a fresh TPM state extended by
	// the new measurements only. We replay the tampered chain on a new TPM
	// bank and ask the *original* TPM object whether the sealed blob would
	// release under those PCRs; since sealing bound the original PCR state,
	// extending the real TPM further (as the next boot would) must deny.
	tampered := make([]secureboot.Component, len(chain))
	copy(tampered, chain)
	tampered[2].Image = []byte("vmlinuz-evil")
	fw.SecureBoot = false
	if _, err := fw.Boot(signer.PlatformPub, tampered); err != nil {
		t.Fatalf("tampered boot (secure boot off) should start: %v", err)
	}
	if err := vol.UnlockTPM("clevis", tp); err == nil {
		t.Fatal("sealed key released after kernel swap")
	}
	if !vol.Locked() {
		t.Fatal("volume unlocked despite failed release")
	}
}

// TestFleetUpdateRollout pushes a signed OS image to a fleet via ONIE and
// verifies nodes reject a tampered image served to a subset.
func TestFleetUpdateRollout(t *testing.T) {
	signer, err := updates.NewImageSigner("genio-build")
	if err != nil {
		t.Fatal(err)
	}
	img := updates.OSImage{Version: "onl-4.19.300", Data: []byte("new-release")}
	sig := signer.Sign(img)

	applied, rejected := 0, 0
	for i := 0; i < 6; i++ {
		tp, err := tpm.New()
		if err != nil {
			t.Fatal(err)
		}
		updates.ProvisionTrustAnchor(tp, signer.PublicKey())
		onie := &updates.ONIE{TPM: tp, MinimalEnvVerified: true, CurrentVersion: "onl-4.19.81"}
		serve := img
		if i%3 == 2 { // a compromised mirror serves a modified image
			serve.Data = []byte("new-release-with-implant")
		}
		if err := onie.Apply(serve, sig); err != nil {
			rejected++
			if onie.CurrentVersion != "onl-4.19.81" {
				t.Fatal("rejected update changed version")
			}
		} else {
			applied++
		}
	}
	if applied != 4 || rejected != 2 {
		t.Fatalf("applied=%d rejected=%d, want 4/2", applied, rejected)
	}
}

// TestMultiTenantIsolationReview builds a mixed cluster and checks the
// PEACH-style review reflects the posture and the VM placement.
func TestMultiTenantIsolationReview(t *testing.T) {
	reg := container.NewRegistry()
	reg.Push(container.AnalyticsImage(), nil)
	cluster := orchestrator.NewCluster("edge", reg, orchestrator.HardenedSettings())
	cluster.AddNode("n1", orchestrator.Resources{CPUMilli: 8000, MemoryMB: 8192})

	specs := []orchestrator.WorkloadSpec{
		{Name: "a1", Tenant: "acme", ImageRef: "acme/analytics:2.0.1", Isolation: orchestrator.IsolationHard,
			Resources: orchestrator.Resources{CPUMilli: 500, MemoryMB: 512}},
		{Name: "a2", Tenant: "acme", ImageRef: "acme/analytics:2.0.1", Isolation: orchestrator.IsolationSoft,
			Resources: orchestrator.Resources{CPUMilli: 500, MemoryMB: 512}},
		{Name: "b1", Tenant: "rival", ImageRef: "acme/analytics:2.0.1", Isolation: orchestrator.IsolationHard,
			Resources: orchestrator.Resources{CPUMilli: 500, MemoryMB: 512}},
		{Name: "b2", Tenant: "rival", ImageRef: "acme/analytics:2.0.1", Isolation: orchestrator.IsolationSoft,
			Resources: orchestrator.Resources{CPUMilli: 500, MemoryMB: 512}},
	}
	hard := 0
	for _, s := range specs {
		if _, err := cluster.Deploy("ops", s); err != nil {
			t.Fatalf("deploy %s: %v", s.Name, err)
		}
		if s.Isolation == orchestrator.IsolationHard {
			hard++
		}
	}
	// No VM hosts two tenants.
	for vm, tenants := range cluster.SharedVMTenants() {
		if len(tenants) > 1 {
			t.Fatalf("vm %s mixes tenants %v", vm, tenants)
		}
	}
	share := float64(hard) / float64(len(specs))
	rev := sandbox.ReviewIsolation(cluster, share)
	if rev.Total() < rev.Max()-1 {
		t.Fatalf("hardened mixed cluster scored %d/%d: %+v", rev.Total(), rev.Max(), rev.Factors)
	}
}

// TestIncidentPipelineAttribution runs an attack through the full platform
// and checks every stage attributes incidents to the right source.
func TestIncidentPipelineAttribution(t *testing.T) {
	p, err := core.New(core.SecureConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddEdgeNode("olt-01", orchestrator.Resources{CPUMilli: 8000, MemoryMB: 8192}); err != nil {
		t.Fatal(err)
	}
	pub, err := container.NewPublisher("acme")
	if err != nil {
		t.Fatal(err)
	}
	p.Registry.TrustPublisher("acme", pub.PublicKey())
	// Insider threat: trusted publisher signs a malicious image, so it
	// passes signatures and must be caught by admission scanning.
	miner := container.CryptominerImage()
	minerSig := pub.Sign(miner)
	p.Registry.Push(miner, &minerSig)
	web := container.AnalyticsImage()
	webSig := pub.Sign(web)
	p.Registry.Push(web, &webSig)

	p.RBAC.SetRole(rbac.Role{Name: "dep", Permissions: []rbac.Permission{
		{Verb: "create", Resource: "workloads", Namespace: "acme"},
	}})
	if err := p.RBAC.Bind("ci", "dep"); err != nil {
		t.Fatal(err)
	}

	if _, err := p.Deploy("ci", orchestrator.WorkloadSpec{
		Name: "miner", Tenant: "acme", ImageRef: miner.Ref(),
		Isolation: orchestrator.IsolationSoft,
		Resources: orchestrator.Resources{CPUMilli: 100, MemoryMB: 128},
	}); !errors.Is(err, orchestrator.ErrDenied) {
		t.Fatalf("insider miner err = %v, want ErrDenied", err)
	}

	if _, err := p.Deploy("ci", orchestrator.WorkloadSpec{
		Name: "web", Tenant: "acme", ImageRef: web.Ref(),
		Isolation: orchestrator.IsolationSoft,
		Resources: orchestrator.Resources{CPUMilli: 100, MemoryMB: 128},
	}); err != nil {
		t.Fatal(err)
	}
	p.ObserveRuntime(trace.ReverseShellTrace("web", "acme"))

	counts := p.IncidentCounts()
	if counts["admission"] == 0 {
		t.Error("no admission incident for insider miner")
	}
	if counts["sandbox"] == 0 {
		t.Error("no sandbox incident for reverse shell")
	}
}

// TestPONDataPathEndToEnd moves data down and up a secured PON tree and
// confirms byte-for-byte delivery with all protections active.
func TestPONDataPathEndToEnd(t *testing.T) {
	ca, err := pki.NewCA("root")
	if err != nil {
		t.Fatal(err)
	}
	oltID, err := ca.Issue("olt", pki.RoleOLT)
	if err != nil {
		t.Fatal(err)
	}
	olt, err := pon.NewOLT("olt", pon.ModeAuthenticated, ca, oltID)
	if err != nil {
		t.Fatal(err)
	}
	onuID, err := ca.Issue("onu-1", pki.RoleONU)
	if err != nil {
		t.Fatal(err)
	}
	onu := pon.NewONU("onu-1", onuID)
	if err := olt.Activate(onu); err != nil {
		t.Fatal(err)
	}

	down := []byte("config-push-v7")
	if err := olt.SendDownstream(onu.Port(), down); err != nil {
		t.Fatal(err)
	}
	got := onu.Received()
	if len(got) != 1 || !bytes.Equal(got[0].Payload, down) {
		t.Fatalf("downstream = %+v", got)
	}

	up := []byte("sensor-batch-001")
	if err := onu.QueueUpstream(up); err != nil {
		t.Fatal(err)
	}
	res, err := olt.RunDBACycle(pon.DBAConfig{CycleBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	delivered := res.Delivered["onu-1"]
	if len(delivered) != 1 || !bytes.Equal(delivered[0], up) {
		t.Fatalf("upstream = %q", delivered)
	}

	// Rotate keys mid-session; both directions keep working.
	if err := olt.RotateKeys(); err != nil {
		t.Fatal(err)
	}
	if err := olt.SendDownstream(onu.Port(), []byte("post-rotation")); err != nil {
		t.Fatalf("downstream after rotation: %v", err)
	}
	if err := onu.QueueUpstream([]byte("up-post-rotation")); err != nil {
		t.Fatal(err)
	}
	if _, err := olt.RunDBACycle(pon.DBAConfig{CycleBytes: 4096}); err != nil {
		t.Fatalf("upstream after rotation: %v", err)
	}
}
