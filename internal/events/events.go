// Package events is GENIO's unified telemetry backbone: one generic,
// sharded pub/sub spine carrying every security-relevant stream the
// platform produces — incidents, falco alerts, control-plane audit
// records, and metrics — instead of one bespoke channel per subsystem.
//
// Events are published onto typed topics and hash-sharded by key
// (tenant, node, or workload) across N bounded queues, so producers on
// different keys never contend and events sharing a key keep their
// publish order. Each shard is drained by one goroutine that delivers in
// batches to every matching subscriber. Backpressure is an explicit
// policy: Block (a full shard queue stalls the producer; nothing is ever
// lost — the incident-log contract) or Drop (a full queue rejects the
// event and counts it, for lossy streams like metrics). Flush gives
// read-your-writes across goroutines; Close drains and stops every
// shard, blocking all callers until done.
package events

import (
	"fmt"
	"sort"
)

// Topic names one event stream. The built-in taxonomy below covers the
// platform's streams; subsystems may publish additional topics freely —
// a topic exists by being published or subscribed to.
type Topic string

// Built-in topic taxonomy.
const (
	// TopicIncident carries core.Incident payloads: every blocked or
	// detected security-relevant occurrence (admission rejections,
	// sandbox blocks, falco detections, boot/attestation failures, PON
	// activation denials).
	TopicIncident Topic = "incident"
	// TopicFalcoAlert carries falco.Alert payloads: raw runtime
	// detections before they are folded into the incident log.
	TopicFalcoAlert Topic = "falco.alert"
	// TopicAudit carries orchestrator.AuditEvent payloads: control-plane
	// decisions (admission verdicts, placements, failovers, evictions,
	// node membership changes).
	TopicAudit Topic = "audit"
	// TopicMetric carries Metric payloads: counters and gauges emitted
	// by the hot paths (deploy outcomes, runtime event volumes).
	TopicMetric Topic = "metric"
	// TopicDeployLifecycle carries core.LifecycleEvent payloads: the
	// state transitions of asynchronous deployments (pending -> scanning
	// -> placing -> running | rejected | cancelled), keyed by workload so
	// per-deployment transition order is preserved. Platform.Watch is a
	// filtered consumer of this topic.
	TopicDeployLifecycle Topic = "deploy.lifecycle"
	// TopicNodeDrain carries orchestrator.DrainEvent payloads: the
	// observable steps of a node drain (cordoned -> migrated* ->
	// completed | cancelled | failed), keyed by node so per-drain order
	// is preserved.
	TopicNodeDrain Topic = "node.drain"
)

// BuiltinTopics returns the stock taxonomy, sorted.
func BuiltinTopics() []Topic {
	return []Topic{TopicAudit, TopicDeployLifecycle, TopicFalcoAlert, TopicIncident, TopicMetric, TopicNodeDrain}
}

// Event is one published record.
type Event struct {
	Topic Topic `json:"topic"`
	// Key is the shard key — tenant, node, or workload. Events sharing a
	// non-empty key are delivered in publish order; the empty key shards
	// to a fixed queue.
	Key string `json:"key,omitempty"`
	// AtMs is the platform-clock time of the event (zero without a
	// clock).
	AtMs    int64 `json:"atMs,omitempty"`
	Payload any   `json:"payload,omitempty"`
}

// Metric is the common payload vocabulary for TopicMetric.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	// Label is one optional dimension (tenant, workload, node). A single
	// label keeps metric emission allocation-free on hot paths.
	Label string `json:"label,omitempty"`
}

// Policy selects what a publisher experiences when a shard queue is full.
type Policy int

// Backpressure policies.
const (
	// Block stalls the publisher until the shard drains: nothing is ever
	// lost. This is the default and the contract the incident log keeps.
	Block Policy = iota
	// Drop rejects the event when the shard queue is full and counts it
	// in TopicStats.Dropped — for lossy streams where producer latency
	// matters more than completeness.
	Drop
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case Drop:
		return "drop"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// BatchHandler receives delivered events. Handlers are invoked
// concurrently from shard goroutines and must be safe for concurrent
// use; the batch slice is only valid for the duration of the call (copy
// events that must be retained). A handler must not block indefinitely:
// under the Block policy a stalled handler eventually stalls publishers
// on that shard.
//
// Handlers MUST NOT call back into the spine's synchronization points —
// Flush, Close, or (on the platform) Incidents()/IncidentCounts()/
// Metrics-after-Flush, which flush internally. The handler runs on the
// shard drainer, so a Flush from inside it waits on a token the drainer
// itself must ack: a guaranteed self-deadlock that, under Block, wedges
// every publisher hashing to the shard. Handlers may Publish (to other
// topics/keys) at their own risk of backpressure; the safe pattern is
// to accumulate state and let outside readers flush.
type BatchHandler func(batch []Event)

// Middleware inspects (and may mutate) an event at publish time, before
// it is enqueued. Returning false filters the event out; filtered events
// are counted per topic and never published. Middleware runs on the
// publisher's goroutine.
type Middleware func(e *Event) bool

// TopicStats is the per-topic accounting ledger. After Flush with no
// concurrent publishers, Delivered == Published exactly; Dropped counts
// backpressure rejections (Drop policy only) and Filtered counts
// middleware suppressions. Published + Dropped + Filtered equals the
// number of Publish calls for the topic.
type TopicStats struct {
	Published uint64 `json:"published"`
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
	Filtered  uint64 `json:"filtered"`
}

// Stats maps topics to their counters.
type Stats map[Topic]TopicStats

// Topics returns the stat-carrying topics, sorted.
func (s Stats) Topics() []Topic {
	out := make([]Topic, 0, len(s))
	for t := range s {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
