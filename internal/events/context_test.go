package events

// Context-aware spine surface: PublishContext bounds Block-policy
// backpressure waits, FlushContext bounds flush waits; neither may wedge
// a shard or lose accounting.

import (
	"context"
	"errors"
	"testing"
	"time"
)

// blockedSpine builds a one-shard, capacity-one spine whose single
// subscriber blocks until release is closed, then fills the pipeline:
// one event held inside the handler, one sitting in the queue.
func blockedSpine(t *testing.T) (s *Spine, release chan struct{}) {
	t.Helper()
	release = make(chan struct{})
	entered := make(chan struct{}, 16)
	s = NewSpine(WithShards(1), WithQueueCapacity(1))
	if _, err := s.Subscribe("slow", nil, func(batch []Event) {
		entered <- struct{}{}
		<-release
	}); err != nil {
		t.Fatal(err)
	}
	ev := Event{Topic: TopicMetric, Key: "k", Payload: Metric{Name: "m", Value: 1}}
	// First publish: drained into the (now blocked) handler.
	if err := s.Publish(ev); err != nil {
		t.Fatal(err)
	}
	<-entered // the handler holds event 1; the queue is empty again
	// Second publish: sits in the full queue behind the blocked handler.
	if err := s.Publish(ev); err != nil {
		t.Fatal(err)
	}
	return s, release
}

func TestPublishContextBoundsBlockBackpressure(t *testing.T) {
	s, release := blockedSpine(t)
	defer func() {
		close(release)
		s.Close()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := s.PublishContext(ctx, Event{Topic: TopicMetric, Key: "k", Payload: Metric{Name: "m"}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("PublishContext = %v, want DeadlineExceeded", err)
	}
	// The abandoned event is neither published nor dropped: the ledger
	// still accounts exactly the two accepted events.
	st := s.Stats()[TopicMetric]
	if st.Published != 2 || st.Dropped != 0 {
		t.Fatalf("ledger = %+v, want published=2 dropped=0", st)
	}
}

func TestFlushContextBoundsWait(t *testing.T) {
	s, release := blockedSpine(t)
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.FlushContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("FlushContext = %v, want DeadlineExceeded", err)
	}
	close(release)
	// With the handler released, a fresh flush completes and the ledger
	// balances.
	if err := s.FlushContext(context.Background()); err != nil {
		t.Fatalf("FlushContext after release: %v", err)
	}
	st := s.Stats()[TopicMetric]
	if st.Delivered != st.Published {
		t.Fatalf("ledger = %+v, want delivered == published", st)
	}
}

func TestPublishContextLiveContextBehavesLikePublish(t *testing.T) {
	s := NewSpine()
	defer s.Close()
	var got int
	if _, err := s.Subscribe("count", []Topic{TopicDeployLifecycle}, func(batch []Event) {
		got += len(batch)
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.PublishContext(context.Background(), Event{Topic: TopicDeployLifecycle, Key: "w"}); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	if got != 10 {
		t.Fatalf("delivered %d, want 10", got)
	}
}

func TestPublishContextAfterCloseErrors(t *testing.T) {
	s := NewSpine()
	s.Close()
	err := s.PublishContext(context.Background(), Event{Topic: TopicMetric})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("PublishContext after close = %v, want ErrClosed", err)
	}
	if err := s.FlushContext(context.Background()); err != nil {
		t.Fatalf("FlushContext after close = %v, want nil", err)
	}
}

func TestHasSubscribers(t *testing.T) {
	s := NewSpine()
	defer s.Close()
	if s.HasSubscribers(TopicDeployLifecycle) {
		t.Fatal("fresh spine reports subscribers")
	}
	sub, err := s.Subscribe("one", []Topic{TopicDeployLifecycle}, func([]Event) {})
	if err != nil {
		t.Fatal(err)
	}
	if !s.HasSubscribers(TopicDeployLifecycle) {
		t.Fatal("topic-scoped subscription not reported")
	}
	if s.HasSubscribers(TopicMetric) {
		t.Fatal("unrelated topic reported subscribed")
	}
	all, err := s.Subscribe("all", nil, func([]Event) {})
	if err != nil {
		t.Fatal(err)
	}
	if !s.HasSubscribers(TopicMetric) {
		t.Fatal("wildcard subscription must match every topic")
	}
	sub.Cancel()
	all.Cancel()
	if s.HasSubscribers(TopicDeployLifecycle) {
		t.Fatal("cancelled subscriptions still reported")
	}
}
