package events

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collector is a test subscriber accumulating delivered events.
type collector struct {
	mu  sync.Mutex
	evs []Event
}

func (c *collector) handle(batch []Event) {
	c.mu.Lock()
	c.evs = append(c.evs, batch...)
	c.mu.Unlock()
}

func (c *collector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.evs)
}

func (c *collector) events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.evs))
	copy(out, c.evs)
	return out
}

func TestPublishSubscribeFlush(t *testing.T) {
	s := NewSpine()
	defer s.Close()
	c := &collector{}
	if _, err := s.Subscribe("c", []Topic{TopicIncident}, c.handle); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.Publish(Event{Topic: TopicIncident, Key: fmt.Sprintf("k%d", i%7), Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	if got := c.len(); got != 100 {
		t.Fatalf("delivered %d events after flush, want 100", got)
	}
	st := s.Stats()[TopicIncident]
	if st.Published != 100 || st.Delivered != 100 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTopicFiltering(t *testing.T) {
	s := NewSpine()
	defer s.Close()
	inc, all := &collector{}, &collector{}
	if _, err := s.Subscribe("inc", []Topic{TopicIncident}, inc.handle); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Subscribe("all", nil, all.handle); err != nil {
		t.Fatal(err)
	}
	s.Publish(Event{Topic: TopicIncident, Key: "a"})
	s.Publish(Event{Topic: TopicMetric, Key: "a"})
	s.Publish(Event{Topic: TopicAudit, Key: "b"})
	s.Flush()
	if inc.len() != 1 {
		t.Fatalf("incident subscriber saw %d events, want 1", inc.len())
	}
	if all.len() != 3 {
		t.Fatalf("wildcard subscriber saw %d events, want 3", all.len())
	}
}

// TestPerKeyOrdering: events sharing a key are delivered in publish
// order, whatever the shard count or batching does.
func TestPerKeyOrdering(t *testing.T) {
	s := NewSpine(WithShards(4), WithBatchSize(3))
	defer s.Close()
	c := &collector{}
	if _, err := s.Subscribe("c", nil, c.handle); err != nil {
		t.Fatal(err)
	}
	const perKey = 200
	keys := []string{"tenant-a", "tenant-b", "tenant-c"}
	var wg sync.WaitGroup
	for _, k := range keys {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perKey; i++ {
				s.Publish(Event{Topic: TopicMetric, Key: k, Payload: i})
			}
		}()
	}
	wg.Wait()
	s.Flush()
	seen := map[string]int{}
	for _, e := range c.events() {
		want := seen[e.Key]
		if got := e.Payload.(int); got != want {
			t.Fatalf("key %s: event %d arrived when %d was expected (order broken)", e.Key, got, want)
		}
		seen[e.Key]++
	}
	for _, k := range keys {
		if seen[k] != perKey {
			t.Fatalf("key %s: %d events, want %d", k, seen[k], perKey)
		}
	}
}

func TestPublishAfterCloseErrors(t *testing.T) {
	s := NewSpine()
	// A filtering middleware must not run (or charge its budget) on a
	// closed spine — ErrClosed wins over filtering.
	mwCalls := 0
	s.Use(TopicIncident, func(*Event) bool { mwCalls++; return false })
	s.Publish(Event{Topic: TopicIncident, Key: "a"})
	if mwCalls != 1 {
		t.Fatalf("middleware calls before close = %d, want 1", mwCalls)
	}
	s.Close()
	if err := s.Publish(Event{Topic: TopicIncident, Key: "a"}); err != ErrClosed {
		t.Fatalf("publish after close: err = %v, want ErrClosed", err)
	}
	if mwCalls != 1 {
		t.Fatalf("middleware ran on a closed spine (%d calls)", mwCalls)
	}
	if _, err := s.Subscribe("late", nil, func([]Event) {}); err != ErrClosed {
		t.Fatalf("subscribe after close: err = %v, want ErrClosed", err)
	}
	s.Flush() // must not block or panic
	s.Close() // idempotent
}

// TestCloseDrainsForEveryCaller: all concurrent Close calls block until
// the queued backlog has been delivered.
func TestCloseDrainsForEveryCaller(t *testing.T) {
	s := NewSpine(WithShards(2))
	var delivered atomic.Int64
	if _, err := s.Subscribe("count", nil, func(b []Event) {
		delivered.Add(int64(len(b)))
	}); err != nil {
		t.Fatal(err)
	}
	const n = 800
	for i := 0; i < n; i++ {
		s.Publish(Event{Topic: TopicIncident, Key: fmt.Sprintf("k%d", i%5)})
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Close()
			if got := delivered.Load(); got != n {
				t.Errorf("only %d/%d events delivered when Close returned", got, n)
			}
		}()
	}
	wg.Wait()
}

func TestDropPolicyCountsExactly(t *testing.T) {
	s := NewSpine(WithShards(1), WithQueueCapacity(4), WithPolicy(Drop))
	// A slow subscriber guarantees queue pressure.
	gate := make(chan struct{})
	var delivered atomic.Int64
	if _, err := s.Subscribe("slow", nil, func(b []Event) {
		<-gate
		delivered.Add(int64(len(b)))
	}); err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if err := s.Publish(Event{Topic: TopicMetric, Key: "hot"}); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	s.Flush()
	st := s.Stats()[TopicMetric]
	if st.Dropped == 0 {
		t.Fatal("full queue with a stalled consumer dropped nothing")
	}
	if st.Published+st.Dropped != n {
		t.Fatalf("published %d + dropped %d != %d offered", st.Published, st.Dropped, n)
	}
	if st.Delivered != st.Published {
		t.Fatalf("delivered %d != published %d after flush", st.Delivered, st.Published)
	}
	if got := delivered.Load(); uint64(got) != st.Delivered {
		t.Fatalf("subscriber saw %d, stats say %d", got, st.Delivered)
	}
}

func TestBlockPolicyLosesNothing(t *testing.T) {
	s := NewSpine(WithShards(2), WithQueueCapacity(2))
	defer s.Close()
	var delivered atomic.Int64
	if _, err := s.Subscribe("count", nil, func(b []Event) {
		delivered.Add(int64(len(b)))
	}); err != nil {
		t.Fatal(err)
	}
	const producers, perProducer = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := s.Publish(Event{Topic: TopicIncident, Key: fmt.Sprintf("p%d", g)}); err != nil {
					t.Errorf("publish: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	s.Flush()
	if got := delivered.Load(); got != producers*perProducer {
		t.Fatalf("delivered %d, want %d", got, producers*perProducer)
	}
	if st := s.Stats()[TopicIncident]; st.Dropped != 0 {
		t.Fatalf("block policy dropped %d events", st.Dropped)
	}
}

// TestTopicPolicyOverride: a Drop-default spine with one topic pinned to
// Block drops only on the lossy topics; the pinned topic never loses an
// event even with a deliberately stalled consumer.
func TestTopicPolicyOverride(t *testing.T) {
	s := NewSpine(WithShards(1), WithQueueCapacity(2), WithPolicy(Drop),
		WithTopicPolicy(TopicIncident, Block))
	if got := s.PolicyFor(TopicIncident); got != Block {
		t.Fatalf("incident policy = %v, want block", got)
	}
	if got := s.PolicyFor(TopicMetric); got != Drop {
		t.Fatalf("metric policy = %v, want drop (default)", got)
	}
	var delivered atomic.Int64
	if _, err := s.Subscribe("count", []Topic{TopicIncident}, func(b []Event) {
		delivered.Add(int64(len(b)))
	}); err != nil {
		t.Fatal(err)
	}
	const n = 500
	done := make(chan struct{})
	go func() { // a flood of droppable metrics competes for the same shard
		for i := 0; i < n; i++ {
			s.Publish(Event{Topic: TopicMetric, Key: "k"})
		}
		close(done)
	}()
	for i := 0; i < n; i++ {
		if err := s.Publish(Event{Topic: TopicIncident, Key: "k"}); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	s.Flush()
	if st := s.Stats()[TopicIncident]; st.Dropped != 0 || st.Published != n {
		t.Fatalf("pinned topic stats = %+v, want %d published, 0 dropped", st, n)
	}
	if got := delivered.Load(); got != n {
		t.Fatalf("delivered %d incidents, want %d", got, n)
	}
	s.Close()
}

func TestMiddlewareFilters(t *testing.T) {
	s := NewSpine()
	defer s.Close()
	s.Use(TopicMetric, func(e *Event) bool {
		m, ok := e.Payload.(Metric)
		return !ok || m.Value >= 0 // negative gauges filtered
	})
	c := &collector{}
	if _, err := s.Subscribe("c", []Topic{TopicMetric}, c.handle); err != nil {
		t.Fatal(err)
	}
	s.Publish(Event{Topic: TopicMetric, Payload: Metric{Name: "a", Value: 1}})
	s.Publish(Event{Topic: TopicMetric, Payload: Metric{Name: "b", Value: -1}})
	s.Publish(Event{Topic: TopicMetric, Payload: Metric{Name: "c", Value: 2}})
	s.Flush()
	if c.len() != 2 {
		t.Fatalf("delivered %d, want 2 (one filtered)", c.len())
	}
	st := s.Stats()[TopicMetric]
	if st.Filtered != 1 || st.Published != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSubscriptionCancel(t *testing.T) {
	s := NewSpine()
	defer s.Close()
	c := &collector{}
	sub, err := s.Subscribe("c", nil, c.handle)
	if err != nil {
		t.Fatal(err)
	}
	s.Publish(Event{Topic: TopicAudit})
	s.Flush()
	sub.Cancel()
	sub.Cancel() // idempotent
	s.Publish(Event{Topic: TopicAudit})
	s.Flush()
	if c.len() != 1 {
		t.Fatalf("cancelled subscriber saw %d events, want 1", c.len())
	}
}

// TestFlushIsReadYourWrites: a goroutine that published then flushed
// must observe its own events in any subscriber's state.
func TestFlushIsReadYourWrites(t *testing.T) {
	s := NewSpine(WithShards(4))
	defer s.Close()
	var count atomic.Int64
	if _, err := s.Subscribe("count", nil, func(b []Event) {
		count.Add(int64(len(b)))
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Publish(Event{Topic: TopicIncident, Key: fmt.Sprintf("g%d", g)})
				s.Flush()
				if got := count.Load(); got < int64(i+1) {
					t.Errorf("after %d publishes + flush, subscriber saw %d", i+1, got)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestNoGoroutineLeak: closing a spine stops every drainer. A
// goleak-style check without the dependency: goroutine count returns to
// baseline after many spine lifecycles.
func TestNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		s := NewSpine(WithShards(16))
		if _, err := s.Subscribe("c", nil, func([]Event) {}); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 100; j++ {
			s.Publish(Event{Topic: TopicIncident, Key: fmt.Sprintf("k%d", j)})
		}
		s.Close()
	}
	// Allow the runtime a moment to retire exited goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

// TestConcurrentEverything is the race-detector stress: publishers,
// flushers, subscribers coming and going, stats readers, and a final
// close, all at once.
func TestConcurrentEverything(t *testing.T) {
	s := NewSpine(WithShards(4), WithQueueCapacity(64))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if err := s.Publish(Event{Topic: TopicIncident, Key: fmt.Sprintf("g%d", g%3)}); err != nil {
					return // spine closed under us: fine
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sub, err := s.Subscribe("churn", []Topic{TopicIncident}, func([]Event) {})
			if err != nil {
				return
			}
			s.Stats()
			sub.Cancel()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			s.Flush()
		}
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	s.Close()
}
