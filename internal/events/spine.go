package events

// The spine: N hash-sharded bounded queues, one drainer goroutine per
// shard, per-subscriber fan-out with batch delivery. The lifecycle
// mirrors (and subsumes) the old core incident bus: Flush is a token
// pushed through every shard — when it pops out, everything enqueued
// before it has been delivered to every subscriber; Close flips a flag
// under a write lock (so no publisher can send on a closed channel),
// closes the shard channels, and every concurrent caller blocks until
// the drain completes.

import (
	"context"
	"errors"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// Defaults. Eight shards keep key-space contention low without spawning
// a goroutine herd on small hosts; capacity matches the old incident
// bus's buffer; batches bound subscriber-call overhead, not latency —
// a drainer never waits to fill one.
const (
	DefaultShards        = 8
	DefaultQueueCapacity = 1024
	DefaultBatchSize     = 64
)

// ErrClosed is returned by Publish and Subscribe after Close.
var ErrClosed = errors.New("events: spine closed")

// Option configures a Spine at construction.
type Option func(*Spine)

// WithShards sets the shard count (values < 1 keep the default).
func WithShards(n int) Option {
	return func(s *Spine) {
		if n >= 1 {
			s.nshards = n
		}
	}
}

// WithQueueCapacity sets the per-shard queue capacity (values < 1 keep
// the default).
func WithQueueCapacity(n int) Option {
	return func(s *Spine) {
		if n >= 1 {
			s.capacity = n
		}
	}
}

// WithBatchSize caps the events handed to a subscriber per call (values
// < 1 keep the default).
func WithBatchSize(n int) Option {
	return func(s *Spine) {
		if n >= 1 {
			s.batchSize = n
		}
	}
}

// WithPolicy sets the default backpressure policy (Block unless set).
func WithPolicy(p Policy) Option {
	return func(s *Spine) { s.policy = p }
}

// WithTopicPolicy overrides the backpressure policy for one topic —
// e.g. a spine that drops lossy metrics under load while incidents stay
// on the never-lose Block contract.
func WithTopicPolicy(t Topic, p Policy) Option {
	return func(s *Spine) {
		if s.topicPolicy == nil {
			s.topicPolicy = make(map[Topic]Policy)
		}
		s.topicPolicy[t] = p
	}
}

type shardMsg struct {
	ev Event
	// flush, when non-nil, is a synchronization token: the drainer
	// delivers everything queued ahead of it, then closes it.
	flush chan struct{}
}

type shard struct {
	ch chan shardMsg
}

// Subscription is one registered subscriber; Cancel detaches it.
type Subscription struct {
	name    string
	topics  map[Topic]bool // nil = every topic
	handler BatchHandler
	spine   *Spine
}

// Name returns the subscriber name given at Subscribe time.
func (s *Subscription) Name() string { return s.name }

// Cancel detaches the subscription; events published afterwards are no
// longer delivered to it. Idempotent.
func (s *Subscription) Cancel() {
	if s.spine != nil {
		s.spine.unsubscribe(s)
	}
}

type topicCounters struct {
	published, delivered, dropped, filtered atomic.Uint64
}

// Spine is the sharded pub/sub backbone. Safe for concurrent use.
type Spine struct {
	nshards     int
	capacity    int
	batchSize   int
	policy      Policy
	topicPolicy map[Topic]Policy // per-topic overrides; read-only after NewSpine

	// stateMu guards closed so no producer can send on a closed shard
	// channel; publishers and flushers share it, Close takes it
	// exclusively.
	stateMu sync.RWMutex
	closed  bool

	shards []shard
	wg     sync.WaitGroup
	seed   maphash.Seed

	// regMu serializes writers of the subscriber list and middleware
	// registry; both are published as copy-on-write snapshots through
	// atomic pointers so the publish/deliver hot paths read lock-free.
	regMu sync.RWMutex
	subs  atomic.Pointer[[]*Subscription]
	mws   atomic.Pointer[map[Topic][]Middleware]

	// cmu serializes growth of the per-topic counter map; reads go
	// through the atomic snapshot. The four built-in topics are
	// pre-registered, so growth only happens on first publish of a
	// custom topic.
	cmu      sync.Mutex
	counters atomic.Pointer[map[Topic]*topicCounters]
}

// NewSpine builds and starts a spine.
func NewSpine(opts ...Option) *Spine {
	s := &Spine{
		nshards:   DefaultShards,
		capacity:  DefaultQueueCapacity,
		batchSize: DefaultBatchSize,
		seed:      maphash.MakeSeed(),
	}
	for _, opt := range opts {
		opt(s)
	}
	subs := []*Subscription{}
	s.subs.Store(&subs)
	mws := map[Topic][]Middleware{}
	s.mws.Store(&mws)
	counters := make(map[Topic]*topicCounters, 4)
	for _, t := range BuiltinTopics() {
		counters[t] = &topicCounters{}
	}
	s.counters.Store(&counters)
	s.shards = make([]shard, s.nshards)
	for i := range s.shards {
		s.shards[i] = shard{ch: make(chan shardMsg, s.capacity)}
		s.wg.Add(1)
		go s.runShard(&s.shards[i])
	}
	return s
}

// Policy returns the spine's default backpressure policy.
func (s *Spine) Policy() Policy { return s.policy }

// PolicyFor returns the backpressure policy governing one topic.
func (s *Spine) PolicyFor(t Topic) Policy {
	if p, ok := s.topicPolicy[t]; ok {
		return p
	}
	return s.policy
}

// counter resolves a topic's counters lock-free; the built-in topics are
// pre-registered, so the slow copy-on-write path only runs on the first
// publish of each custom topic.
func (s *Spine) counter(t Topic) *topicCounters {
	if c := (*s.counters.Load())[t]; c != nil {
		return c
	}
	s.cmu.Lock()
	defer s.cmu.Unlock()
	cur := *s.counters.Load()
	if c := cur[t]; c != nil {
		return c
	}
	next := make(map[Topic]*topicCounters, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	c := &topicCounters{}
	next[t] = c
	s.counters.Store(&next)
	return c
}

func (s *Spine) shardFor(key string) *shard {
	if len(s.shards) == 1 {
		return &s.shards[0]
	}
	return &s.shards[maphash.String(s.seed, key)%uint64(len(s.shards))]
}

// Use registers middleware on a topic, applied in registration order at
// publish time. Register middleware during wiring, before traffic.
func (s *Spine) Use(t Topic, mw Middleware) {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	cur := *s.mws.Load()
	next := make(map[Topic][]Middleware, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[t] = append(append([]Middleware(nil), cur[t]...), mw)
	s.mws.Store(&next)
}

// Subscribe registers a handler for the given topics (nil or empty =
// every topic) and returns the subscription handle. The handler is
// called from shard goroutines — see BatchHandler for the contract.
func (s *Spine) Subscribe(name string, topics []Topic, h BatchHandler) (*Subscription, error) {
	// Hold the state lock across registration so a racing Close cannot
	// complete between the closed check and the registry update — a
	// subscription returned with a nil error is attached to a live
	// spine. Lock order: stateMu before regMu (Publish/deliver never
	// take regMu, so there is no inversion).
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	sub := &Subscription{name: name, handler: h, spine: s}
	if len(topics) > 0 {
		sub.topics = make(map[Topic]bool, len(topics))
		for _, t := range topics {
			sub.topics[t] = true
		}
	}
	s.regMu.Lock()
	// Copy-on-write so in-flight deliveries iterating the old slice are
	// unaffected.
	cur := *s.subs.Load()
	subs := make([]*Subscription, len(cur), len(cur)+1)
	copy(subs, cur)
	subs = append(subs, sub)
	s.subs.Store(&subs)
	s.regMu.Unlock()
	return sub, nil
}

// HasSubscribers reports whether any live subscription matches the
// topic. Lock-free (reads the copy-on-write subscriber snapshot), so hot
// paths can elide publishing observer-only telemetry — e.g. deployment
// lifecycle events — when nobody is listening. Callers must tolerate the
// inherent race: a subscription registered after the check misses events
// published before it either way.
func (s *Spine) HasSubscribers(t Topic) bool {
	for _, sub := range *s.subs.Load() {
		if sub.topics == nil || sub.topics[t] {
			return true
		}
	}
	return false
}

func (s *Spine) unsubscribe(sub *Subscription) {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	cur := *s.subs.Load()
	subs := make([]*Subscription, 0, len(cur))
	for _, x := range cur {
		if x != sub {
			subs = append(subs, x)
		}
	}
	s.subs.Store(&subs)
}

// Publish routes an event through the topic's middleware and enqueues it
// on its key's shard. Under Block it waits for queue space; under Drop a
// full queue rejects the event (counted, nil error). After Close it
// returns ErrClosed.
func (s *Spine) Publish(e Event) error {
	return s.publish(nil, e)
}

// PublishContext is Publish with bounded waiting: under the Block policy
// a full shard queue normally stalls the producer indefinitely, but here
// a done ctx abandons the attempt and returns the context error — the
// event is neither published nor counted (the caller still owns it).
// Under Drop the context is only consulted up front, since a full queue
// rejects immediately. After Close it returns ErrClosed.
func (s *Spine) PublishContext(ctx context.Context, e Event) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.publish(ctx, e)
}

// publish is the shared body: ctx is nil (or never-done) on the
// unbounded path, which keeps the hot path on a plain channel send
// instead of a select.
func (s *Spine) publish(ctx context.Context, e Event) error {
	c := s.counter(e.Topic)
	s.stateMu.RLock()
	if s.closed {
		s.stateMu.RUnlock()
		return ErrClosed
	}
	// Middleware runs after the closed check (a closed spine must
	// return ErrClosed before any filter charges its budget) and under
	// the state read-lock, so a concurrent Close waits for in-flight
	// filters. Middleware is wiring-time-registered and fast by
	// contract.
	if mws := (*s.mws.Load())[e.Topic]; mws != nil {
		for _, mw := range mws {
			if !mw(&e) {
				s.stateMu.RUnlock()
				c.filtered.Add(1)
				return nil
			}
		}
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	sh := s.shardFor(e.Key)
	switch {
	case s.PolicyFor(e.Topic) == Drop:
		select {
		case sh.ch <- shardMsg{ev: e}:
		default:
			s.stateMu.RUnlock()
			c.dropped.Add(1)
			return nil
		}
	case done == nil:
		sh.ch <- shardMsg{ev: e}
	default:
		select {
		case sh.ch <- shardMsg{ev: e}:
		case <-done:
			s.stateMu.RUnlock()
			return ctx.Err()
		}
	}
	s.stateMu.RUnlock()
	c.published.Add(1)
	return nil
}

// Flush blocks until every event published before the call has been
// delivered to every subscriber. A no-op after Close (Close already
// drained).
func (s *Spine) Flush() {
	s.stateMu.RLock()
	if s.closed {
		s.stateMu.RUnlock()
		return
	}
	tokens := make([]chan struct{}, len(s.shards))
	for i := range s.shards {
		tokens[i] = make(chan struct{})
		s.shards[i].ch <- shardMsg{flush: tokens[i]}
	}
	s.stateMu.RUnlock()
	for _, t := range tokens {
		<-t
	}
}

// FlushContext is Flush with bounded waiting: a done ctx abandons the
// wait and returns the context error. Tokens already pushed keep flowing
// (their acknowledgements are simply discarded), so an abandoned flush
// never wedges a shard. A nil return means every event published before
// the call was delivered.
func (s *Spine) FlushContext(ctx context.Context) error {
	s.stateMu.RLock()
	if s.closed {
		s.stateMu.RUnlock()
		return nil
	}
	done := ctx.Done()
	tokens := make([]chan struct{}, 0, len(s.shards))
	for i := range s.shards {
		t := make(chan struct{})
		select {
		case s.shards[i].ch <- shardMsg{flush: t}:
			tokens = append(tokens, t)
		case <-done:
			s.stateMu.RUnlock()
			return ctx.Err()
		}
	}
	s.stateMu.RUnlock()
	for _, t := range tokens {
		select {
		case <-t:
		case <-done:
			return ctx.Err()
		}
	}
	return nil
}

// Close drains every shard and stops the drainer goroutines. Idempotent
// and safe to call concurrently: every caller — not just the one that
// flips the flag — blocks until the drain completes.
func (s *Spine) Close() {
	s.stateMu.Lock()
	if !s.closed {
		s.closed = true
		for i := range s.shards {
			close(s.shards[i].ch)
		}
	}
	s.stateMu.Unlock()
	s.wg.Wait()
}

// Stats snapshots the per-topic counters.
func (s *Spine) Stats() Stats {
	counters := *s.counters.Load()
	out := make(Stats, len(counters))
	for t, c := range counters {
		out[t] = TopicStats{
			Published: c.published.Load(),
			Delivered: c.delivered.Load(),
			Dropped:   c.dropped.Load(),
			Filtered:  c.filtered.Load(),
		}
	}
	return out
}

// runShard drains one queue: it accumulates a batch opportunistically
// (never waiting to fill one), delivers it to every matching subscriber,
// and acks flush tokens only after everything ahead of them is out.
func (s *Spine) runShard(sh *shard) {
	defer s.wg.Done()
	batch := make([]Event, 0, s.batchSize)
	for {
		m, ok := <-sh.ch
		if !ok {
			s.deliver(batch)
			return
		}
		if m.flush != nil {
			s.deliver(batch)
			batch = batch[:0]
			close(m.flush)
			continue
		}
		batch = append(batch, m.ev)
	drain:
		for len(batch) < s.batchSize {
			select {
			case m2, ok2 := <-sh.ch:
				if !ok2 {
					s.deliver(batch)
					return
				}
				if m2.flush != nil {
					s.deliver(batch)
					batch = batch[:0]
					close(m2.flush)
					continue drain
				}
				batch = append(batch, m2.ev)
			default:
				break drain
			}
		}
		s.deliver(batch)
		batch = batch[:0]
	}
}

// deliver fans a batch out to every matching subscriber, then counts the
// events delivered (once per event, not per subscriber).
func (s *Spine) deliver(batch []Event) {
	if len(batch) == 0 {
		return
	}
	subs := *s.subs.Load()
	for _, sub := range subs {
		if sub.topics == nil {
			sub.handler(batch)
			continue
		}
		var filtered []Event
		for _, e := range batch {
			if sub.topics[e.Topic] {
				filtered = append(filtered, e)
			}
		}
		if len(filtered) > 0 {
			sub.handler(filtered)
		}
	}
	// Coalesce counter updates over same-topic runs — batches are
	// typically dominated by one topic.
	for i := 0; i < len(batch); {
		t := batch[i].Topic
		j := i + 1
		for j < len(batch) && batch[j].Topic == t {
			j++
		}
		s.counter(t).delivered.Add(uint64(j - i))
		i = j
	}
}
