package sca

import (
	"testing"

	"genio/internal/container"
	"genio/internal/vuln"
)

func TestScanFindsKnownVulns(t *testing.T) {
	s := NewScanner(DependencyDatabase())
	rep := s.Scan(container.IoTGatewayImage())
	if rep.DependenciesScanned != 5 {
		t.Fatalf("DependenciesScanned = %d, want 5", rep.DependenciesScanned)
	}
	ids := map[string]bool{}
	for _, f := range rep.Findings {
		ids[f.CVE.ID] = true
	}
	for _, want := range []string{"CVE-2018-2001", "CVE-2018-2002", "CVE-2017-2003", "CVE-2019-2004", "CVE-2020-2006"} {
		if !ids[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestFindingsSortedByCVSS(t *testing.T) {
	s := NewScanner(DependencyDatabase())
	rep := s.Scan(container.IoTGatewayImage())
	for i := 1; i < len(rep.Findings); i++ {
		if rep.Findings[i].CVE.CVSS > rep.Findings[i-1].CVE.CVSS {
			t.Fatal("findings not sorted by CVSS")
		}
	}
}

func TestReachabilityFilterShrinksReport(t *testing.T) {
	// Lesson 7: plain SCA flags unreachable dependencies; the filter trims
	// them without dropping reachable ones.
	s := NewScanner(DependencyDatabase())
	full := s.Scan(container.IoTGatewayImage())
	filtered := full.ReachableOnly()
	if len(filtered.Findings) >= len(full.Findings) {
		t.Fatalf("filter did not shrink report: %d -> %d", len(full.Findings), len(filtered.Findings))
	}
	for _, f := range filtered.Findings {
		if !f.Dependency.Reachable {
			t.Fatalf("unreachable finding survived filter: %+v", f.Dependency)
		}
	}
	// The pyyaml RCE (critical but unreachable) is exactly the noise case.
	for _, f := range filtered.Findings {
		if f.CVE.ID == "CVE-2017-2003" {
			t.Fatal("unreachable pyyaml finding not filtered")
		}
	}
	// The reachable flask RCE must survive.
	var hasFlask bool
	for _, f := range filtered.Findings {
		if f.CVE.ID == "CVE-2018-2001" {
			hasFlask = true
		}
	}
	if !hasFlask {
		t.Fatal("reachable flask finding dropped by filter")
	}
}

func TestCleanImageNoFindings(t *testing.T) {
	s := NewScanner(DependencyDatabase())
	rep := s.Scan(container.AnalyticsImage())
	if len(rep.Findings) != 0 {
		t.Fatalf("analytics image findings = %+v", rep.Findings)
	}
}

func TestMLImageLog4Shell(t *testing.T) {
	s := NewScanner(DependencyDatabase())
	rep := s.Scan(container.MLInferenceImage())
	var found bool
	for _, f := range rep.Findings {
		if f.CVE.ID == "CVE-2021-44228" {
			found = true
			if f.CVE.Severity() != vuln.SeverityCritical {
				t.Fatal("log4shell not critical")
			}
		}
	}
	if !found {
		t.Fatal("log4shell missed")
	}
}

func TestCountBySeverity(t *testing.T) {
	s := NewScanner(DependencyDatabase())
	counts := s.Scan(container.IoTGatewayImage()).CountBySeverity()
	if counts[vuln.SeverityCritical] == 0 {
		t.Fatalf("counts = %v, want a critical (pyyaml)", counts)
	}
}
