// Package sca implements Software Composition Analysis for container
// images (M13): it extracts the dependency manifest, matches versions
// against a CVE database, and reports vulnerable components.
//
// Lesson 7 is reproduced structurally: plain SCA flags every vulnerable
// dependency in the image — including ones the application never calls —
// bloating reports and complicating prioritization. The scanner therefore
// supports a reachability filter; experiments compare report sizes with and
// without it.
package sca

import (
	"context"
	"sort"

	"genio/internal/container"
	"genio/internal/vuln"
)

// Finding is one vulnerable dependency in an image.
type Finding struct {
	CVE        vuln.CVE             `json:"cve"`
	Dependency container.Dependency `json:"dependency"`
	ImageRef   string               `json:"imageRef"`
}

// Report is the outcome of scanning one image.
type Report struct {
	ImageRef string    `json:"imageRef"`
	Findings []Finding `json:"findings"`
	// DependenciesScanned counts manifest entries inspected.
	DependenciesScanned int `json:"dependenciesScanned"`
}

// CountBySeverity tallies findings.
func (r *Report) CountBySeverity() map[vuln.Severity]int {
	out := make(map[vuln.Severity]int)
	for _, f := range r.Findings {
		out[f.CVE.Severity()]++
	}
	return out
}

// ReachableOnly filters the report to findings in dependencies the
// application actually exercises — the Lesson-7 noise reduction.
func (r *Report) ReachableOnly() *Report {
	out := &Report{ImageRef: r.ImageRef, DependenciesScanned: r.DependenciesScanned}
	for _, f := range r.Findings {
		if f.Dependency.Reachable {
			out.Findings = append(out.Findings, f)
		}
	}
	return out
}

// Scanner matches image manifests against a CVE database.
type Scanner struct {
	DB *vuln.Database
}

// NewScanner creates a scanner over db.
func NewScanner(db *vuln.Database) *Scanner {
	return &Scanner{DB: db}
}

// Scan inspects every dependency in the image manifest.
func (s *Scanner) Scan(img *container.Image) *Report {
	rep, _ := s.ScanContext(context.Background(), img)
	return rep
}

// ScanContext is Scan with cancellation: the context is polled between
// dependencies, and a done context abandons the scan, returning the
// context error with a nil report.
func (s *Scanner) ScanContext(ctx context.Context, img *container.Image) (*Report, error) {
	rep := &Report{ImageRef: img.Ref()}
	for _, dep := range img.Dependencies {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rep.DependenciesScanned++
		for _, c := range s.DB.Match(dep.Name, dep.Version) {
			rep.Findings = append(rep.Findings, Finding{CVE: c, Dependency: dep, ImageRef: img.Ref()})
		}
	}
	sort.Slice(rep.Findings, func(i, j int) bool {
		return rep.Findings[i].CVE.CVSS > rep.Findings[j].CVE.CVSS
	})
	return rep, nil
}

// DependencyDatabase returns the CVE dataset for application-level
// dependencies used by the fixture images. Records are synthetic but
// patterned on the well-known advisories for those version lines.
func DependencyDatabase() *vuln.Database {
	db := vuln.NewDatabase()
	for _, c := range []vuln.CVE{
		{ID: "CVE-2018-2001", Package: "flask", Introduced: "0.1", FixedIn: "1.0",
			CVSS: 7.5, Description: "debug mode RCE via werkzeug console", DisclosedDay: 2},
		{ID: "CVE-2018-2002", Package: "requests", Introduced: "2.0", FixedIn: "2.20.0",
			CVSS: 6.1, Description: "credential leak on redirect", DisclosedDay: 4},
		{ID: "CVE-2017-2003", Package: "pyyaml", Introduced: "3.0", FixedIn: "5.1",
			CVSS: 9.8, Exploitable: true, Description: "yaml.load arbitrary code execution", DisclosedDay: 1},
		{ID: "CVE-2019-2004", Package: "urllib3", Introduced: "1.0", FixedIn: "1.24.2",
			CVSS: 5.9, Description: "CRLF injection in request parameter", DisclosedDay: 6},
		{ID: "CVE-2021-44228", Package: "log4j-core", Introduced: "2.0", FixedIn: "2.15.0",
			CVSS: 10.0, Exploitable: true, Description: "JNDI lookup remote code execution", DisclosedDay: 3},
		{ID: "CVE-2022-2005", Package: "commons-text", Introduced: "1.5", FixedIn: "1.10.0",
			CVSS: 9.8, Description: "string interpolation RCE", DisclosedDay: 7},
		{ID: "CVE-2020-2006", Package: "left-unused", Introduced: "0.1", FixedIn: "",
			CVSS: 8.1, Description: "prototype pollution in helper", DisclosedDay: 5},
	} {
		db.Add(c)
	}
	return db
}
