// Package trace defines the runtime event model shared by GENIO's
// enforcement (sandbox, M17) and detection (falco, M18) layers: a stream of
// syscall-level events attributed to workloads, as an eBPF/LSM probe would
// deliver them. Fixture generators produce benign workload traffic and the
// attack traces of T7/T8 so experiments can measure detection and false-
// positive rates on identical inputs.
package trace

import "fmt"

// EventType classifies runtime events.
type EventType int

// Event types, matching the hook points KubeArmor/Falco observe.
const (
	EventExec EventType = iota + 1
	EventFileOpen
	EventFileWrite
	EventConnect
	EventListen
	EventSyscall
	EventCapability
)

var eventNames = map[EventType]string{
	EventExec:       "exec",
	EventFileOpen:   "file-open",
	EventFileWrite:  "file-write",
	EventConnect:    "connect",
	EventListen:     "listen",
	EventSyscall:    "syscall",
	EventCapability: "capability",
}

// String names the event type.
func (t EventType) String() string {
	if n, ok := eventNames[t]; ok {
		return n
	}
	return fmt.Sprintf("event(%d)", int(t))
}

// Event is one observed runtime action.
type Event struct {
	Seq      int       `json:"seq"`
	Workload string    `json:"workload"`
	Tenant   string    `json:"tenant"`
	Type     EventType `json:"type"`
	// Target is the object acted on: binary path for exec, file path for
	// opens/writes, host:port for connect/listen, syscall or capability
	// name otherwise.
	Target string `json:"target"`
	// Process is the acting process name.
	Process string `json:"process"`
}

// Builder accumulates a trace with sequential numbering.
type Builder struct {
	workload string
	tenant   string
	events   []Event
}

// NewBuilder starts a trace for one workload.
func NewBuilder(workload, tenant string) *Builder {
	return &Builder{workload: workload, tenant: tenant}
}

// Add appends an event.
func (b *Builder) Add(t EventType, process, target string) *Builder {
	b.events = append(b.events, Event{
		Seq: len(b.events) + 1, Workload: b.workload, Tenant: b.tenant,
		Type: t, Process: process, Target: target,
	})
	return b
}

// Events returns the accumulated trace.
func (b *Builder) Events() []Event {
	out := make([]Event, len(b.events))
	copy(out, b.events)
	return out
}

// BenignWebTrace models normal traffic of a REST workload: serving
// requests, reading its config, writing logs, talking to its database.
func BenignWebTrace(workload, tenant string, requests int) []Event {
	b := NewBuilder(workload, tenant)
	b.Add(EventExec, "runc", "/app/server")
	b.Add(EventFileOpen, "server", "/app/config.yaml")
	b.Add(EventListen, "server", "0.0.0.0:8080")
	for i := 0; i < requests; i++ {
		b.Add(EventConnect, "server", "db.internal:5432")
		b.Add(EventFileWrite, "server", "/var/log/app/access.log")
	}
	return b.Events()
}

// BenignBatchTrace models a batch/ML workload: reading a model, crunching,
// writing results.
func BenignBatchTrace(workload, tenant string, iterations int) []Event {
	b := NewBuilder(workload, tenant)
	b.Add(EventExec, "runc", "/app/inference")
	b.Add(EventFileOpen, "inference", "/app/model.bin")
	for i := 0; i < iterations; i++ {
		b.Add(EventFileWrite, "inference", "/out/results.json")
	}
	return b.Events()
}

// ContainerEscapeTrace models a T8 malicious application abusing
// CAP_SYS_ADMIN to escape: capability use, host filesystem access, and a
// privileged mount syscall.
func ContainerEscapeTrace(workload, tenant string) []Event {
	return NewBuilder(workload, tenant).
		Add(EventExec, "runc", "/usr/bin/optimizer").
		Add(EventCapability, "optimizer", "CAP_SYS_ADMIN").
		Add(EventSyscall, "optimizer", "mount").
		Add(EventFileOpen, "optimizer", "/host/proc/1/root/etc/shadow").
		Add(EventFileWrite, "optimizer", "/host/etc/cron.d/backdoor").
		Events()
}

// ReverseShellTrace models a compromised web app (T7 exploited) spawning an
// interactive shell and dialing out.
func ReverseShellTrace(workload, tenant string) []Event {
	return NewBuilder(workload, tenant).
		Add(EventExec, "runc", "/app/server").
		Add(EventListen, "server", "0.0.0.0:8080").
		Add(EventExec, "server", "/bin/bash").
		Add(EventConnect, "bash", "203.0.113.7:4444").
		Add(EventFileOpen, "bash", "/etc/shadow").
		Events()
}

// CryptominerTrace models a miner: CPU-heavy process dialing a mining pool.
func CryptominerTrace(workload, tenant string) []Event {
	b := NewBuilder(workload, tenant)
	b.Add(EventExec, "runc", "/usr/bin/optimizer")
	for i := 0; i < 5; i++ {
		b.Add(EventConnect, "optimizer", "pool.minexmr.example:4444")
	}
	return b.Events()
}

// DataExfiltrationTrace models a tenant app reading sensitive mounts and
// shipping them to an external host.
func DataExfiltrationTrace(workload, tenant string) []Event {
	return NewBuilder(workload, tenant).
		Add(EventExec, "runc", "/app/server").
		Add(EventFileOpen, "server", "/var/run/secrets/api-token").
		Add(EventConnect, "server", "203.0.113.99:443").
		Events()
}
