package trace

// Seeded randomized trace generation: the simulation engine (internal/sim)
// drives incident storms and bursty tenant traffic through these
// generators. All randomness comes from the caller's *rand.Rand, so a
// trace — and therefore every alert and incident it causes downstream —
// is fully determined by (seed, arguments).

import "math/rand"

// AttackKind names one of the scripted malicious traces.
type AttackKind int

// Attack kinds, in the order RandomAttackTrace draws them.
const (
	AttackContainerEscape AttackKind = iota
	AttackReverseShell
	AttackCryptominer
	AttackDataExfiltration
	attackKindCount
)

// String names the attack kind.
func (k AttackKind) String() string {
	switch k {
	case AttackContainerEscape:
		return "container-escape"
	case AttackReverseShell:
		return "reverse-shell"
	case AttackCryptominer:
		return "cryptominer"
	case AttackDataExfiltration:
		return "data-exfiltration"
	default:
		return "attack(?)"
	}
}

// AttackTrace returns the scripted trace for a kind.
func AttackTrace(k AttackKind, workload, tenant string) []Event {
	switch k {
	case AttackContainerEscape:
		return ContainerEscapeTrace(workload, tenant)
	case AttackReverseShell:
		return ReverseShellTrace(workload, tenant)
	case AttackCryptominer:
		return CryptominerTrace(workload, tenant)
	default:
		return DataExfiltrationTrace(workload, tenant)
	}
}

// RandomAttackTrace draws one of the malicious traces uniformly.
func RandomAttackTrace(r *rand.Rand, workload, tenant string) (AttackKind, []Event) {
	k := AttackKind(r.Intn(int(attackKindCount)))
	return k, AttackTrace(k, workload, tenant)
}

// RandomBenignTrace draws a benign workload trace: a web trace or a batch
// trace, with a request/iteration count in [1, maxOps].
func RandomBenignTrace(r *rand.Rand, workload, tenant string, maxOps int) []Event {
	if maxOps < 1 {
		maxOps = 1
	}
	ops := 1 + r.Intn(maxOps)
	if r.Intn(2) == 0 {
		return BenignWebTrace(workload, tenant, ops)
	}
	return BenignBatchTrace(workload, tenant, ops)
}

// RandomStorm generates a bursty mixed stream across the given workloads:
// each burst picks a workload and, with the given attack ratio (0..1),
// either a malicious or a benign trace. It returns the concatenated
// event stream and how many bursts were malicious.
func RandomStorm(r *rand.Rand, workloads []string, tenant string, bursts int, attackRatio float64) ([]Event, int) {
	var out []Event
	malicious := 0
	for i := 0; i < bursts && len(workloads) > 0; i++ {
		w := workloads[r.Intn(len(workloads))]
		if r.Float64() < attackRatio {
			_, evs := RandomAttackTrace(r, w, tenant)
			out = append(out, evs...)
			malicious++
		} else {
			out = append(out, RandomBenignTrace(r, w, tenant, 8)...)
		}
	}
	return out, malicious
}
