package trace

import "testing"

func TestBuilderSequencesEvents(t *testing.T) {
	events := NewBuilder("w", "t").
		Add(EventExec, "runc", "/app/x").
		Add(EventConnect, "x", "db.internal:5432").
		Events()
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	for i, e := range events {
		if e.Seq != i+1 {
			t.Fatalf("event %d seq = %d", i, e.Seq)
		}
		if e.Workload != "w" || e.Tenant != "t" {
			t.Fatalf("attribution lost: %+v", e)
		}
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	b := NewBuilder("w", "t").Add(EventExec, "runc", "/app/x")
	ev := b.Events()
	ev[0].Target = "mutated"
	if b.Events()[0].Target != "/app/x" {
		t.Fatal("Events exposed internal slice")
	}
}

func TestFixtureTracesNonEmpty(t *testing.T) {
	cases := map[string][]Event{
		"web":    BenignWebTrace("w", "t", 3),
		"batch":  BenignBatchTrace("w", "t", 3),
		"escape": ContainerEscapeTrace("w", "t"),
		"shell":  ReverseShellTrace("w", "t"),
		"miner":  CryptominerTrace("w", "t"),
		"exfil":  DataExfiltrationTrace("w", "t"),
	}
	for name, events := range cases {
		if len(events) == 0 {
			t.Errorf("%s trace empty", name)
		}
	}
	if len(BenignWebTrace("w", "t", 10)) <= len(BenignWebTrace("w", "t", 1)) {
		t.Fatal("request count does not scale web trace")
	}
}

func TestEventTypeString(t *testing.T) {
	if EventExec.String() != "exec" || EventType(99).String() != "event(99)" {
		t.Fatal("EventType.String mismatch")
	}
}
