package trace

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestRandomStormDeterministic(t *testing.T) {
	gen := func() ([]Event, int) {
		r := rand.New(rand.NewSource(42))
		return RandomStorm(r, []string{"w1", "w2", "w3"}, "acme", 20, 0.3)
	}
	e1, m1 := gen()
	e2, m2 := gen()
	if m1 != m2 || !reflect.DeepEqual(e1, e2) {
		t.Fatalf("same seed produced different storms: %d vs %d malicious", m1, m2)
	}
	if len(e1) == 0 {
		t.Fatal("empty storm")
	}
}

func TestRandomAttackTraceCoversKinds(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	seen := map[AttackKind]bool{}
	for i := 0; i < 200; i++ {
		k, evs := RandomAttackTrace(r, "w", "t")
		if len(evs) == 0 {
			t.Fatalf("kind %s produced empty trace", k)
		}
		seen[k] = true
	}
	if len(seen) != int(attackKindCount) {
		t.Fatalf("only saw kinds %v", seen)
	}
}

func TestRandomBenignTraceBounds(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		evs := RandomBenignTrace(r, "w", "t", 0) // maxOps clamped to 1
		if len(evs) == 0 {
			t.Fatal("empty benign trace")
		}
	}
}
