// Faredge: ultra-low-latency workloads on ONU hardware (the far-edge layer
// of Figure 1) plus the shared-wavelength upstream path: deployments pass
// the same admission controls as the edge, ONU capacity is scarce, and the
// DBA grant cap keeps a greedy device from starving its neighbours.
package main

import (
	"fmt"
	"log"

	"genio"
	"genio/internal/container"
	"genio/internal/pon"
	"genio/internal/rbac"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p, err := genio.NewPlatform(genio.SecureConfig())
	if err != nil {
		return err
	}
	if _, err := p.AddEdgeNode("olt-01", genio.Resources{CPUMilli: 8000, MemoryMB: 16384}); err != nil {
		return err
	}
	var onus []*pon.ONU
	for i := 1; i <= 4; i++ {
		onu, err := p.AttachONU("olt-01", fmt.Sprintf("onu-%04d", i))
		if err != nil {
			return err
		}
		onus = append(onus, onu)
	}

	pub, err := container.NewPublisher("acme")
	if err != nil {
		return err
	}
	p.Registry.TrustPublisher("acme", pub.PublicKey())
	img := container.AnalyticsImage()
	sig := pub.Sign(img)
	p.Registry.Push(img, &sig)
	miner := container.CryptominerImage()
	minerSig := pub.Sign(miner) // insider-signed malicious image
	p.Registry.Push(miner, &minerSig)

	p.RBAC.SetRole(rbac.Role{Name: "acme-deployer", Permissions: []rbac.Permission{
		{Verb: "create", Resource: "workloads", Namespace: "acme"},
	}})
	if err := p.RBAC.Bind("acme-ci", "acme-deployer"); err != nil {
		return err
	}

	// Ultra-low-latency camera analytics on the customer-premises ONU.
	w, err := p.DeployFarEdge("acme-ci", "olt-01", "onu-0001", genio.WorkloadSpec{
		Name: "cam-analytics", Tenant: "acme", ImageRef: img.Ref(),
		Resources: genio.Resources{CPUMilli: 400, MemoryMB: 384},
	})
	if err != nil {
		return fmt.Errorf("far-edge deploy: %w", err)
	}
	fmt.Printf("far-edge workload %s on %s/%s (soft isolation forced)\n",
		w.Spec.Name, w.Node, w.Serial)

	// Admission scanning still applies at the far edge.
	if _, err := p.DeployFarEdge("acme-ci", "olt-01", "onu-0001", genio.WorkloadSpec{
		Name: "optimizer", Tenant: "acme", ImageRef: miner.Ref(),
		Resources: genio.Resources{CPUMilli: 100, MemoryMB: 128},
	}); err != nil {
		fmt.Printf("malicious far-edge deploy rejected: %v\n", err)
	}

	// Upstream: every ONU ships sensor batches; onu-0002 turns greedy and
	// inflates its queue reports 50x.
	node, err := p.Node("olt-01")
	if err != nil {
		return err
	}
	for _, onu := range onus {
		for i := 0; i < 4; i++ {
			if err := onu.QueueUpstream(make([]byte, 100)); err != nil {
				return err
			}
		}
	}
	onus[1].SetReportInflation(50)

	uncapped, err := node.OLT.RunDBACycle(pon.DBAConfig{CycleBytes: 800})
	if err != nil {
		return err
	}
	fmt.Printf("\nDBA without SLA cap: fairness %.2f\n", pon.FairnessIndex(uncapped.Grants))
	for _, g := range uncapped.Grants {
		fmt.Printf("  %s reported=%d granted=%d\n", g.Serial, g.Reported, g.Granted)
	}

	for _, onu := range onus {
		for i := 0; i < 4; i++ {
			if err := onu.QueueUpstream(make([]byte, 100)); err != nil {
				return err
			}
		}
	}
	capped, err := node.OLT.RunDBACycle(pon.DBAConfig{CycleBytes: 800, PerONUCap: 200})
	if err != nil {
		return err
	}
	fmt.Printf("\nDBA with 200B SLA cap: fairness %.2f\n", pon.FairnessIndex(capped.Grants))
	for _, g := range capped.Grants {
		fmt.Printf("  %s reported=%d granted=%d\n", g.Serial, g.Reported, g.Granted)
	}
	return nil
}
