// Rebalance: the placement engine end to end. A 4-node fleet fills up
// under the binpack default (density: one hot node), the hot node is
// cordoned and drained — live migrations stream on the node.drain spine
// topic — and a second wave deploys under the spread policy while the
// lifecycle watch API reports where each workload lands. The final
// utilization table shows the rebalanced fleet.
package main

import (
	"context"
	"fmt"
	"log"

	"genio"
	"genio/internal/container"
	"genio/internal/rbac"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p, err := genio.NewPlatform(genio.SecureConfig())
	if err != nil {
		return fmt.Errorf("platform: %w", err)
	}
	defer p.Close()

	// A 4-node fleet of equal OLTs.
	for i := 1; i <= 4; i++ {
		name := fmt.Sprintf("olt-%02d", i)
		if _, err := p.AddEdgeNode(name, genio.Resources{CPUMilli: 8000, MemoryMB: 16384}); err != nil {
			return fmt.Errorf("edge node %s: %w", name, err)
		}
	}

	// Signed image + deploy rights + room to rebalance.
	pub, err := container.NewPublisher("acme")
	if err != nil {
		return err
	}
	p.Registry.TrustPublisher("acme", pub.PublicKey())
	img := container.AnalyticsImage()
	sig := pub.Sign(img)
	p.Registry.Push(img, &sig)
	p.RBAC.SetRole(rbac.Role{Name: "acme-deployer", Permissions: []rbac.Permission{
		{Verb: "create", Resource: "workloads", Namespace: "acme"},
	}})
	if err := p.RBAC.Bind("acme-ci", "acme-deployer"); err != nil {
		return err
	}
	p.Cluster.SetQuota("acme", genio.Resources{CPUMilli: 16000, MemoryMB: 32768})

	spec := func(name, policy string) genio.WorkloadSpec {
		return genio.WorkloadSpec{
			Name: name, Tenant: "acme", ImageRef: "acme/analytics:2.0.1",
			Isolation: genio.IsolationSoft, PlacementPolicy: policy,
			Resources: genio.Resources{CPUMilli: 500, MemoryMB: 512},
		}
	}

	// Phase 1 — binpack (the density default): six workloads, one node.
	fmt.Println("phase 1: deploy 6 workloads under binpack (density default)")
	for i := 0; i < 6; i++ {
		w, err := p.Deploy("acme-ci", spec(fmt.Sprintf("dense-%d", i), ""))
		if err != nil {
			return fmt.Errorf("deploy dense-%d: %w", i, err)
		}
		fmt.Printf("  %-8s -> %s (strategy %s, score %.3f)\n", w.Spec.Name, w.Node, w.Strategy, w.Score)
	}
	printUtilization(p)

	// Phase 2 — cordon + drain the hot node. Every migration publishes
	// on the node.drain topic; subscribe the way a dashboard would.
	hot := hottestNode(p)
	sub, err := p.Subscribe("rebalance-drain", []genio.Topic{genio.TopicNodeDrain},
		func(batch []genio.Event) {
			for _, ev := range batch {
				if de, ok := ev.Payload.(genio.DrainEvent); ok && de.Phase == genio.DrainMigrated {
					fmt.Printf("  drain: %-8s %s -> %s (score %.3f)\n", de.Workload, de.Node, de.Target, de.Score)
				}
			}
		})
	if err != nil {
		return err
	}
	fmt.Printf("\nphase 2: cordon + drain hot node %s\n", hot)
	if err := p.Cordon(hot); err != nil {
		return err
	}
	res, err := p.Drain(context.Background(), hot)
	if err != nil {
		return fmt.Errorf("drain %s: %w", hot, err)
	}
	p.Flush()
	sub.Cancel()
	fmt.Printf("  drained %s: %d migrated, node stays cordoned\n", hot, len(res.Migrated))
	printUtilization(p)

	// Phase 3 — spread re-placement, observed through the lifecycle
	// watch API: each new workload lands on the least-loaded node.
	fmt.Println("\nphase 3: deploy 4 workloads under spread, via the watch API")
	watchCtx, stopWatch := context.WithCancel(context.Background())
	defer stopWatch()
	lifecycle, err := p.Watch(watchCtx, genio.WatchSelector{Tenant: "acme", TerminalOnly: true})
	if err != nil {
		return fmt.Errorf("watch: %w", err)
	}
	done := make(chan struct{})
	const spreadWave = 4
	go func() {
		defer close(done)
		seen := 0
		for ev := range lifecycle {
			fmt.Printf("  watch: %-8s %-9s on %s\n", ev.Workload, ev.State, ev.Node)
			if seen++; seen == spreadWave {
				return
			}
		}
	}()
	// Lifecycle events flow from the async deploy surface; pipeline the
	// whole wave, then await the futures.
	futures := make([]*genio.Deployment, 0, spreadWave)
	for i := 0; i < spreadWave; i++ {
		d, err := p.DeployAsync(context.Background(), "acme-ci", spec(fmt.Sprintf("ha-%d", i), genio.PlacementSpread))
		if err != nil {
			return fmt.Errorf("deploy ha-%d: %w", i, err)
		}
		futures = append(futures, d)
	}
	for i, d := range futures {
		if _, err := d.Result(); err != nil {
			return fmt.Errorf("deploy ha-%d: %w", i, err)
		}
	}
	<-done
	printUtilization(p)
	return nil
}

// hottestNode returns the node carrying the most workloads.
func hottestNode(p *genio.Platform) string {
	var hot string
	max := -1
	for _, u := range p.Cluster.Utilization() {
		if u.Workloads > max {
			hot, max = u.Node, u.Workloads
		}
	}
	return hot
}

// printUtilization renders the fleet table.
func printUtilization(p *genio.Platform) {
	fmt.Println("  fleet:")
	for _, u := range p.Cluster.Utilization() {
		state := "ready"
		if u.Cordoned {
			state = "cordoned"
		}
		fmt.Printf("    %-8s %9s %2d workload(s)  %s\n",
			u.Node, fmt.Sprintf("%dm/%dm", u.Used.CPUMilli, u.Capacity.CPUMilli), u.Workloads, state)
	}
}
