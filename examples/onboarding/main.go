// Onboarding: the T1/M3/M4 story on the optical segment. A fiber tap
// captures downstream traffic in all three PON security modes, a rogue ONU
// tries to join, and a captured frame is replayed — showing exactly which
// attacks each mode stops.
package main

import (
	"bytes"
	"fmt"
	"log"

	"genio/internal/pki"
	"genio/internal/pon"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for _, mode := range []pon.SecurityMode{
		pon.ModePlaintext, pon.ModeEncrypted, pon.ModeAuthenticated,
	} {
		if err := demo(mode); err != nil {
			return fmt.Errorf("mode %s: %w", mode, err)
		}
	}
	return nil
}

func demo(mode pon.SecurityMode) error {
	fmt.Printf("=== PON mode: %s ===\n", mode)
	ca, err := pki.NewCA("genio-root")
	if err != nil {
		return err
	}
	oltID, err := ca.Issue("olt-01", pki.RoleOLT)
	if err != nil {
		return err
	}
	olt, err := pon.NewOLT("olt-01", mode, ca, oltID)
	if err != nil {
		return err
	}

	// Legitimate ONU (with certificate when the mode verifies it).
	var id *pki.Identity
	if mode == pon.ModeAuthenticated {
		if id, err = ca.Issue("onu-0001", pki.RoleONU); err != nil {
			return err
		}
	}
	onu := pon.NewONU("onu-0001", id)
	if err := olt.Activate(onu); err != nil {
		return fmt.Errorf("activate: %w", err)
	}

	// Attack 1: rogue ONU without credentials.
	rogue := pon.NewONU("onu-rogue", nil)
	if err := olt.Activate(rogue); err != nil {
		fmt.Printf("  rogue ONU:   REJECTED (%v)\n", err)
	} else {
		fmt.Println("  rogue ONU:   JOINED the PON (no authentication in this mode)")
	}

	// Attack 2: fiber tap on the downstream broadcast.
	var captured []pon.XGEMFrame
	olt.AttachTap(pon.TapFunc(func(f pon.XGEMFrame) { captured = append(captured, f) }))
	secret := []byte("meter-reading-kwh-4711")
	if err := olt.SendDownstream(onu.Port(), secret); err != nil {
		return err
	}
	if bytes.Contains(captured[0].Payload, secret) {
		fmt.Println("  fiber tap:   CAPTURED PLAINTEXT payload")
	} else {
		fmt.Println("  fiber tap:   sees only ciphertext")
	}

	// Attack 3: replay the captured frame.
	before := len(onu.Received())
	errs := olt.InjectDownstream(captured[0])
	switch {
	case len(errs) > 0:
		fmt.Printf("  replay:      REJECTED (%v)\n", errs[0])
	case len(onu.Received()) > before:
		fmt.Println("  replay:      command PROCESSED TWICE")
	default:
		fmt.Println("  replay:      ignored")
	}
	fmt.Println()
	return nil
}
