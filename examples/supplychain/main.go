// Supplychain: the application-security pipeline (M13–M16) applied to the
// images business users publish: SCA with reachability filtering, SAST,
// YARA malware scanning, docker-bench image hardening, and live REST
// fuzzing of a vulnerable vs a fixed build (M15).
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"genio/internal/container"
	"genio/internal/dast"
	"genio/internal/malware"
	"genio/internal/sast"
	"genio/internal/sca"
	"genio/internal/scap"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	images := []*container.Image{
		container.IoTGatewayImage(),
		container.MLInferenceImage(),
		container.AnalyticsImage(),
		container.CryptominerImage(),
	}

	scaScanner := sca.NewScanner(sca.DependencyDatabase())
	sastScanner := sast.NewScanner(sast.DefaultRules())
	malScanner, err := malware.NewScanner(malware.DefaultRules())
	if err != nil {
		return err
	}
	bench := scap.DockerBenchProfile()

	for _, img := range images {
		fmt.Printf("=== %s ===\n", img.Ref())

		full := scaScanner.Scan(img)
		reachable := full.ReachableOnly()
		fmt.Printf("  SCA:          %d findings (%d after reachability filter)\n",
			len(full.Findings), len(reachable.Findings))
		for _, f := range reachable.Findings {
			fmt.Printf("                %s %s %s (cvss %.1f)\n",
				f.CVE.ID, f.Dependency.Name, f.Dependency.Version, f.CVE.CVSS)
		}

		sastRep := sastScanner.Scan(img)
		fmt.Printf("  SAST:         %d findings (%d actionable)\n",
			len(sastRep.Findings), len(sastRep.Actionable()))
		for _, f := range sastRep.Actionable() {
			fmt.Printf("                %s at %s:%d\n", f.RuleID, f.Path, f.Line)
		}

		malRep := malScanner.Scan(img)
		if malRep.Malicious() {
			fmt.Printf("  malware:      DETECTED (%s in %s) — image rejected\n",
				malRep.Matches[0].Rule, malRep.Matches[0].Path)
		} else {
			fmt.Println("  malware:      clean")
		}

		benchRep := scap.EvaluateImage(bench, img)
		pass, fail, _, _ := benchRep.Counts()
		fmt.Printf("  docker-bench: %d pass, %d fail\n", pass, fail)
		fmt.Println()
	}

	// M15: live fuzzing of the vulnerable and fixed API builds.
	fmt.Println("=== DAST: fuzzing the iot-gateway REST API (live servers) ===")
	vulnSrv := httptest.NewServer(dast.VulnerableHandler())
	defer vulnSrv.Close()
	fixedSrv := httptest.NewServer(dast.FixedHandler("prod-token"))
	defer fixedSrv.Close()

	fz := dast.NewFuzzer()
	rep, err := fz.Fuzz(vulnSrv.URL, dast.VulnerableSpec())
	if err != nil {
		return err
	}
	fmt.Printf("vulnerable build: %d requests, %d findings\n", rep.RequestsSent, len(rep.Findings))
	for _, f := range rep.Findings {
		fmt.Printf("  [%s] %s (payload %.24q -> %d)\n", f.Kind, f.Endpoint, f.Payload, f.Status)
	}

	fzAuth := dast.NewFuzzer()
	fzAuth.AuthToken = "prod-token"
	fixed, err := fzAuth.Fuzz(fixedSrv.URL, dast.VulnerableSpec())
	if err != nil {
		return err
	}
	fmt.Printf("fixed build:      %d requests, %d findings\n", fixed.RequestsSent, len(fixed.Findings))
	return nil
}
