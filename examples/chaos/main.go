// Chaos: drive the platform through a deterministic fault campaign with
// the internal/sim engine — a failover storm followed by an admission
// flood — and show that every dependability invariant held at every step.
//
// The whole run is a pure function of the seed: run it twice and the
// reports are byte-identical, which is how a failing campaign becomes a
// replayable bug report (`genio-sim -campaign failover-storm -seed 42`).
package main

import (
	"fmt"
	"log"

	"genio/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const seed = 42
	engine := sim.NewEngine(nil)

	for _, name := range []string{"failover-storm", "admission-flood"} {
		sc, err := sim.NewCampaign(name, seed)
		if err != nil {
			return err
		}
		rep, err := engine.Run(sc)
		if err != nil {
			return err
		}

		fmt.Printf("=== campaign %s (seed %d, posture %s) ===\n", rep.Scenario, rep.Seed, rep.Posture)
		for _, s := range rep.Steps {
			fmt.Printf("  t=%5dms %-18s %-13s %s\n", s.AtMs, s.Name, s.Status, s.Detail)
			for _, v := range s.Violations {
				fmt.Printf("           !! %s\n", v)
			}
		}
		fmt.Printf("invariants checked after every step: %v\n", rep.Invariants)
		fmt.Printf("result: passed=%v violations=%d | admitted=%d rejected=%d | %d workloads on %d nodes | incidents=%v\n\n",
			rep.Passed, rep.Violations, rep.Final.Admitted, rep.Final.Rejected,
			rep.Final.Workloads, len(rep.Final.LiveNodes), rep.Final.Incidents)
		if !rep.Passed {
			return fmt.Errorf("campaign %s violated invariants", name)
		}
	}
	return nil
}
