// Quickstart: bring up a secure GENIO platform, provision an edge OLT and
// a far-edge ONU, publish a signed image, and deploy tenant workloads
// through the v2 control-plane API — an asynchronous, cancellable deploy
// future with lifecycle watch and typed rejection errors.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"genio"
	"genio/internal/container"
	"genio/internal/rbac"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Platform in the paper's security-by-design posture.
	p, err := genio.NewPlatform(genio.SecureConfig())
	if err != nil {
		return fmt.Errorf("platform: %w", err)
	}

	// 2. An OLT in a central office becomes an edge hub: hardened OS,
	//    verified boot, attestation, sealed storage, FIM baseline.
	node, err := p.AddEdgeNode("olt-01", genio.Resources{CPUMilli: 8000, MemoryMB: 16384})
	if err != nil {
		return fmt.Errorf("edge node: %w", err)
	}
	fmt.Printf("edge node %s: attested=%v sealed-storage=%v\n",
		node.Name, node.Attested, !node.Volume.Locked())

	// 3. A far-edge ONU onboards with certificate-based mutual auth.
	onu, err := p.AttachONU("olt-01", "onu-0001")
	if err != nil {
		return fmt.Errorf("onu: %w", err)
	}
	fmt.Printf("onu %s active on XGEM port %d\n", onu.Serial, onu.Port())

	// 4. A business user publishes a signed container image.
	pub, err := container.NewPublisher("acme")
	if err != nil {
		return err
	}
	p.Registry.TrustPublisher("acme", pub.PublicKey())
	img := container.AnalyticsImage()
	sig := pub.Sign(img)
	p.Registry.Push(img, &sig)

	// 5. The tenant's CI identity gets least-privilege deploy rights.
	p.RBAC.SetRole(rbac.Role{Name: "acme-deployer", Permissions: []rbac.Permission{
		{Verb: "create", Resource: "workloads", Namespace: "acme"},
	}})
	if err := p.RBAC.Bind("acme-ci", "acme-deployer"); err != nil {
		return err
	}

	// 6. Watch the deployment lifecycle the way genioctl or a SIEM
	//    exporter would: a filtered channel over the deploy.lifecycle
	//    topic.
	watchCtx, stopWatch := context.WithCancel(context.Background())
	defer stopWatch()
	lifecycle, err := p.Watch(watchCtx, genio.WatchSelector{Tenant: "acme"})
	if err != nil {
		return fmt.Errorf("watch: %w", err)
	}
	watched := make(chan struct{})
	go func() {
		defer close(watched)
		for ev := range lifecycle {
			fmt.Printf("  lifecycle: %-10s %s\n", ev.Workload, ev.State)
			if ev.State.Terminal() {
				return
			}
		}
	}()

	// 7. Deploy asynchronously through the full admission pipeline, under
	//    a deadline: cancellation or expiry aborts the in-flight scans
	//    without ever placing the workload.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	d, err := p.DeployAsync(ctx, "acme-ci", genio.WorkloadSpec{
		Name: "analytics", Tenant: "acme", ImageRef: "acme/analytics:2.0.1",
		Isolation: genio.IsolationSoft,
		Resources: genio.Resources{CPUMilli: 500, MemoryMB: 512},
	})
	if err != nil {
		return fmt.Errorf("deploy: %w", err)
	}
	w, err := d.Result()
	if err != nil {
		return fmt.Errorf("deploy: %w", err)
	}
	<-watched
	fmt.Printf("workload %s running on %s in VM %s\n", w.Spec.Name, w.Node, w.VMID)

	// 8. Rejections are typed: a hostile image reports the scanner that
	//    caught it, not an opaque string.
	p.Registry.Push(container.CryptominerImage(), nil) // adversary upload, unsigned
	_, err = p.Deploy("acme-ci", genio.WorkloadSpec{
		Name: "optimizer", Tenant: "acme", ImageRef: "freestuff/optimizer:latest",
		Isolation: genio.IsolationSoft,
		Resources: genio.Resources{CPUMilli: 500, MemoryMB: 512},
	})
	var pull *genio.ImagePullError
	switch {
	case errors.As(err, &pull):
		fmt.Printf("hostile image rejected at pull: %v\n", pull.Err)
	case errors.Is(err, genio.ErrRejected):
		fmt.Printf("hostile image rejected: %v\n", err)
	case err == nil:
		return fmt.Errorf("hostile image was admitted")
	default:
		return fmt.Errorf("deploy optimizer: %w", err)
	}

	fmt.Println()
	fmt.Println(p.RenderDeployment())
	return nil
}
