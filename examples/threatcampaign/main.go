// Threatcampaign: the end-to-end evaluation. The full T1–T8 adversary
// playbook runs against three platform postures — legacy, detection-only,
// and secure-by-design — reproducing the paper's overall claim that the
// layered mitigations close the identified risks.
package main

import (
	"fmt"
	"log"

	"genio"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	postures := []struct {
		name string
		cfg  genio.Config
	}{
		{"legacy (no mitigations)", genio.LegacyConfig()},
		{"detection-only (Falco)", detectionOnly()},
		{"secure-by-design (M1-M18)", genio.SecureConfig()},
	}
	for _, posture := range postures {
		fmt.Printf("=== %s ===\n", posture.name)
		p, err := genio.NewPlatform(posture.cfg)
		if err != nil {
			return fmt.Errorf("platform: %w", err)
		}
		c, err := genio.NewCampaign(p)
		if err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
		results := c.Run()
		for _, r := range results {
			fmt.Printf("  %-3s %-42s %-9s %s\n", r.ThreatID, r.Attack, r.Outcome, r.Detail)
		}
		s := genio.SummarizeAttacks(results)
		fmt.Printf("  => blocked=%d detected=%d missed=%d\n\n",
			s[genio.AttackBlocked], s[genio.AttackDetected], s[genio.AttackMissed])
	}
	return nil
}

func detectionOnly() genio.Config {
	cfg := genio.LegacyConfig()
	cfg.RuntimeMonitoring = true
	return cfg
}
