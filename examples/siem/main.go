// SIEM: a security-operations exporter built on the v2 control-plane
// API. It consumes the platform exactly like an external SIEM would —
// a lifecycle Watch for workload state (terminal states only), plus a
// spine subscription for incidents and control-plane audit records —
// and emits normalized JSON-line records, correlating each terminal
// deployment with the incidents its admission scan raised.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"sync"

	"genio"
	"genio/internal/container"
	"genio/internal/rbac"
)

// record is the exporter's normalized output shape.
type record struct {
	Kind     string `json:"kind"` // lifecycle | incident | audit
	Workload string `json:"workload,omitempty"`
	State    string `json:"state,omitempty"`
	Node     string `json:"node,omitempty"`
	Source   string `json:"source,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p, err := genio.NewPlatform(genio.SecureConfig())
	if err != nil {
		return err
	}
	defer p.Close()
	if _, err := p.AddEdgeNode("olt-01", genio.Resources{CPUMilli: 16000, MemoryMB: 32768}); err != nil {
		return err
	}

	pub, err := container.NewPublisher("acme")
	if err != nil {
		return err
	}
	p.Registry.TrustPublisher("acme", pub.PublicKey())
	for _, img := range []*container.Image{
		container.AnalyticsImage(),
		container.IoTGatewayImage(),
		container.CryptominerImage(),
	} {
		sig := pub.Sign(img)
		p.Registry.Push(img, &sig)
	}
	p.RBAC.SetRole(rbac.Role{Name: "deployer", Permissions: []rbac.Permission{
		{Verb: "create", Resource: "workloads", Namespace: "acme"},
	}})
	if err := p.RBAC.Bind("ci", "deployer"); err != nil {
		return err
	}

	// Incident export rides a plain spine subscription; the exporter
	// buffers under its own lock because handlers run on shard
	// goroutines.
	var mu sync.Mutex
	var exported []record
	sub, err := p.Subscribe("siem-incidents", []genio.Topic{genio.TopicIncident},
		func(batch []genio.Event) {
			mu.Lock()
			defer mu.Unlock()
			for _, e := range batch {
				if inc, ok := e.Payload.(genio.Incident); ok {
					exported = append(exported, record{Kind: "incident",
						Workload: inc.Workload, Source: inc.Source, Detail: inc.Detail})
				}
			}
		})
	if err != nil {
		return err
	}
	defer sub.Cancel()

	// Workload state rides the lifecycle Watch: terminal transitions
	// only — a SIEM cares what happened, not what is in flight.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	lifecycle, err := p.Watch(ctx, genio.WatchSelector{TerminalOnly: true})
	if err != nil {
		return err
	}

	// Drive a mixed batch: one clean app, one SAST-flagged build, one
	// signed cryptominer — three terminal events, each typed.
	specs := []genio.WorkloadSpec{
		{Name: "web", Tenant: "acme", ImageRef: "acme/analytics:2.0.1",
			Isolation: genio.IsolationSoft, Resources: genio.Resources{CPUMilli: 200, MemoryMB: 256}},
		{Name: "gateway", Tenant: "acme", ImageRef: "acme/iot-gateway:1.4.2",
			Isolation: genio.IsolationSoft, Resources: genio.Resources{CPUMilli: 200, MemoryMB: 256}},
		{Name: "miner", Tenant: "acme", ImageRef: "freestuff/optimizer:latest",
			Isolation: genio.IsolationSoft, Resources: genio.Resources{CPUMilli: 200, MemoryMB: 256}},
	}
	go p.DeployBatch("ci", specs)

	for terminals := 0; terminals < len(specs); terminals++ {
		ev := <-lifecycle
		mu.Lock()
		exported = append(exported, record{Kind: "lifecycle",
			Workload: ev.Workload, State: string(ev.State), Node: ev.Node, Detail: ev.Detail})
		mu.Unlock()
	}

	p.Flush() // incident export is complete once the spine drains
	mu.Lock()
	defer mu.Unlock()
	for _, r := range exported {
		js, err := json.Marshal(r)
		if err != nil {
			return err
		}
		fmt.Println(string(js))
	}
	fmt.Printf("exported %d records\n", len(exported))
	return nil
}
