package genio_test

import (
	"sync"
	"testing"

	"genio"
	"genio/internal/container"
	"genio/internal/rbac"
)

// TestFacadeEndToEnd exercises the public API exactly as the quickstart
// example does: secure platform, edge node, ONU, signed deploy, campaign.
func TestFacadeEndToEnd(t *testing.T) {
	p, err := genio.NewPlatform(genio.SecureConfig())
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	if _, err := p.AddEdgeNode("olt-01", genio.Resources{CPUMilli: 8000, MemoryMB: 16384}); err != nil {
		t.Fatalf("AddEdgeNode: %v", err)
	}
	if _, err := p.AttachONU("olt-01", "onu-0001"); err != nil {
		t.Fatalf("AttachONU: %v", err)
	}

	pub, err := container.NewPublisher("acme")
	if err != nil {
		t.Fatal(err)
	}
	p.Registry.TrustPublisher("acme", pub.PublicKey())
	img := container.AnalyticsImage()
	sig := pub.Sign(img)
	p.Registry.Push(img, &sig)

	p.RBAC.SetRole(rbac.Role{Name: "acme-deployer", Permissions: []rbac.Permission{
		{Verb: "create", Resource: "workloads", Namespace: "acme"},
	}})
	if err := p.RBAC.Bind("acme-ci", "acme-deployer"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Deploy("acme-ci", genio.WorkloadSpec{
		Name: "analytics", Tenant: "acme", ImageRef: "acme/analytics:2.0.1",
		Isolation: genio.IsolationSoft,
		Resources: genio.Resources{CPUMilli: 500, MemoryMB: 512},
	}); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
}

// TestFacadeEventSpine drives the Subscribe/Metrics surface the way an
// external SIEM exporter would: subscribe to two topics, generate
// traffic, flush, and check both the delivered stream and the ledger.
func TestFacadeEventSpine(t *testing.T) {
	p, err := genio.NewPlatform(genio.SecureConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.AddEdgeNode("olt-01", genio.Resources{CPUMilli: 8000, MemoryMB: 16384}); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	byTopic := map[genio.Topic]int{}
	sub, err := p.Subscribe("siem", []genio.Topic{genio.TopicIncident, genio.TopicAudit},
		func(batch []genio.Event) {
			mu.Lock()
			for _, e := range batch {
				byTopic[e.Topic]++
			}
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()

	pub, err := container.NewPublisher("acme")
	if err != nil {
		t.Fatal(err)
	}
	p.Registry.TrustPublisher("acme", pub.PublicKey())
	img := container.AnalyticsImage()
	sig := pub.Sign(img)
	p.Registry.Push(img, &sig)
	p.RBAC.SetRole(rbac.Role{Name: "acme-deployer", Permissions: []rbac.Permission{
		{Verb: "create", Resource: "workloads", Namespace: "acme"},
	}})
	if err := p.RBAC.Bind("acme-ci", "acme-deployer"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Deploy("acme-ci", genio.WorkloadSpec{
		Name: "analytics", Tenant: "acme", ImageRef: "acme/analytics:2.0.1",
		Isolation: genio.IsolationSoft,
		Resources: genio.Resources{CPUMilli: 500, MemoryMB: 512},
	}); err != nil {
		t.Fatal(err)
	}
	p.RecordIncident(genio.Incident{Source: "external-ids", Detail: "facade test"})
	p.Flush()

	mu.Lock()
	defer mu.Unlock()
	if byTopic[genio.TopicIncident] == 0 {
		t.Fatal("subscriber saw no incident events")
	}
	if byTopic[genio.TopicAudit] == 0 {
		t.Fatal("subscriber saw no audit events (deploy should emit verdict + placement)")
	}
	stats := p.Metrics()
	for _, topic := range []genio.Topic{genio.TopicIncident, genio.TopicAudit, genio.TopicMetric} {
		ts := stats[topic]
		if ts.Published == 0 || ts.Published != ts.Delivered {
			t.Fatalf("topic %s ledger = %+v, want published==delivered>0", topic, ts)
		}
	}
}

func TestFacadeThreatModel(t *testing.T) {
	m := genio.ThreatModel()
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(m.Threats) != 8 || len(m.Mitigations) != 18 {
		t.Fatalf("model shape = %d/%d", len(m.Threats), len(m.Mitigations))
	}
}

func TestFacadeCampaign(t *testing.T) {
	p, err := genio.NewPlatform(genio.SecureConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := genio.NewCampaign(p)
	if err != nil {
		t.Fatal(err)
	}
	results := c.Run()
	summary := genio.SummarizeAttacks(results)
	if summary[genio.AttackMissed] != 0 {
		t.Fatalf("secure platform missed attacks: %+v", results)
	}
}
