package api

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"genio/internal/container"
	"genio/internal/core"
	"genio/internal/events"
	"genio/internal/federation"
	"genio/internal/orchestrator"
)

// TestWireErrorTaxonomyRoundTrip drives every error in the control-plane
// taxonomy (internal/orchestrator/errors.go + core.ClosedError) through
// encode → JSON → decode and asserts (a) each class gets a distinct wire
// code and a distinct HTTP status, and (b) the decoded error still
// satisfies the library's errors.Is/errors.As contract.
func TestWireErrorTaxonomyRoundTrip(t *testing.T) {
	cases := []struct {
		name       string
		err        error
		code       string
		status     int
		is         []error
		notIs      []error
		checkTyped func(t *testing.T, decoded error)
	}{
		{
			name: "admission",
			err: &orchestrator.AdmissionError{
				Workload: "wl", Tenant: "acme",
				Verdicts: []orchestrator.ScannerVerdict{
					{Scanner: "malware-scan", Passed: false, Detail: "trojan"},
					{Scanner: "sca-gate", Passed: true, Cached: true},
				},
			},
			code:   CodeAdmissionDenied,
			status: 422,
			is:     []error{orchestrator.ErrDenied, orchestrator.ErrRejected},
			notIs:  []error{orchestrator.ErrCancelled},
			checkTyped: func(t *testing.T, decoded error) {
				var ae *orchestrator.AdmissionError
				if !errors.As(decoded, &ae) {
					t.Fatalf("decoded %T, want *AdmissionError", decoded)
				}
				if len(ae.Verdicts) != 2 || ae.Verdicts[0].Detail != "trojan" || !ae.Verdicts[1].Cached {
					t.Fatalf("verdicts lost in transit: %+v", ae.Verdicts)
				}
				if ae.Tenant != "acme" || ae.Workload != "wl" {
					t.Fatalf("fields lost: %+v", ae)
				}
			},
		},
		{
			name:   "image-pull-unsigned",
			err:    &orchestrator.ImagePullError{Ref: "evil/backdoor:1.0", Err: container.ErrUnsigned},
			code:   CodeImagePull,
			status: 424,
			is:     []error{container.ErrUnsigned, orchestrator.ErrRejected},
			notIs:  []error{container.ErrNotFound, container.ErrBadSignature},
			checkTyped: func(t *testing.T, decoded error) {
				var pe *orchestrator.ImagePullError
				if !errors.As(decoded, &pe) || pe.Ref != "evil/backdoor:1.0" {
					t.Fatalf("decoded %v, want ImagePullError with ref", decoded)
				}
			},
		},
		{
			name:   "image-pull-not-found",
			err:    &orchestrator.ImagePullError{Ref: "ghost/none:1", Err: container.ErrNotFound},
			code:   CodeImagePull,
			status: 424,
			is:     []error{container.ErrNotFound, orchestrator.ErrRejected},
			notIs:  []error{container.ErrUnsigned},
		},
		{
			name:   "image-pull-bad-signature",
			err:    &orchestrator.ImagePullError{Ref: "acme/tampered:1", Err: container.ErrBadSignature},
			code:   CodeImagePull,
			status: 424,
			is:     []error{container.ErrBadSignature, orchestrator.ErrRejected},
			notIs:  []error{container.ErrNotFound},
		},
		{
			name: "quota",
			err: &orchestrator.QuotaError{
				Tenant:    "acme",
				Requested: orchestrator.Resources{CPUMilli: 2000, MemoryMB: 4096},
				Used:      orchestrator.Resources{CPUMilli: 1500, MemoryMB: 2048},
				Quota:     orchestrator.Resources{CPUMilli: 3000, MemoryMB: 6144},
			},
			code:   CodeQuotaExceeded,
			status: 429,
			is:     []error{orchestrator.ErrQuotaExceeded, orchestrator.ErrRejected},
			notIs:  []error{orchestrator.ErrNoCapacity},
			checkTyped: func(t *testing.T, decoded error) {
				var qe *orchestrator.QuotaError
				if !errors.As(decoded, &qe) {
					t.Fatalf("decoded %T, want *QuotaError", decoded)
				}
				if qe.Used.CPUMilli != 1500 || qe.Quota.MemoryMB != 6144 {
					t.Fatalf("quota arithmetic lost: %+v", qe)
				}
			},
		},
		{
			name: "capacity",
			err: &orchestrator.CapacityError{
				Workload:  "wl",
				Requested: orchestrator.Resources{CPUMilli: 64000, MemoryMB: 1},
				Nodes:     3,
			},
			code:   CodeNoCapacity,
			status: 507,
			is:     []error{orchestrator.ErrNoCapacity, orchestrator.ErrRejected},
			notIs:  []error{orchestrator.ErrQuotaExceeded},
			checkTyped: func(t *testing.T, decoded error) {
				var ce *orchestrator.CapacityError
				if !errors.As(decoded, &ce) || ce.Nodes != 3 {
					t.Fatalf("decoded %v, want CapacityError with 3 nodes", decoded)
				}
			},
		},
		{
			name:   "unauthorized",
			err:    &orchestrator.UnauthorizedError{Subject: "mallory", Verb: "create", Tenant: "acme"},
			code:   CodeUnauthorized,
			status: 403,
			is:     []error{orchestrator.ErrUnauthorized, orchestrator.ErrRejected},
			notIs:  []error{orchestrator.ErrDenied},
			checkTyped: func(t *testing.T, decoded error) {
				var ue *orchestrator.UnauthorizedError
				if !errors.As(decoded, &ue) || ue.Subject != "mallory" {
					t.Fatalf("decoded %v, want UnauthorizedError for mallory", decoded)
				}
			},
		},
		{
			name:   "duplicate-name",
			err:    &orchestrator.DuplicateNameError{Workload: "wl"},
			code:   CodeDuplicateName,
			status: 409,
			is:     []error{orchestrator.ErrDuplicateName, orchestrator.ErrRejected},
			notIs:  []error{orchestrator.ErrDenied},
		},
		{
			name:   "node-not-found-cluster",
			err:    &orchestrator.NodeNotFoundError{Node: "ghost", Err: orchestrator.ErrNodeUnknown},
			code:   CodeNodeNotFound,
			status: 404,
			is:     []error{orchestrator.ErrNodeUnknown},
			notIs:  []error{core.ErrNoNode, orchestrator.ErrRejected},
		},
		{
			name:   "node-not-found-core",
			err:    &orchestrator.NodeNotFoundError{Node: "ghost", Err: core.ErrNoNode},
			code:   CodeNodeNotFound,
			status: 404,
			is:     []error{core.ErrNoNode},
			notIs:  []error{orchestrator.ErrNodeUnknown},
		},
		{
			name:   "placement-policy",
			err:    &orchestrator.PlacementPolicyError{Workload: "wl", Policy: "tightpack"},
			code:   CodePlacementPolicy,
			status: 400,
			is:     []error{orchestrator.ErrRejected},
			notIs:  []error{orchestrator.ErrNoCapacity},
			checkTyped: func(t *testing.T, decoded error) {
				var pe *orchestrator.PlacementPolicyError
				if !errors.As(decoded, &pe) || pe.Policy != "tightpack" {
					t.Fatalf("decoded %v, want PlacementPolicyError tightpack", decoded)
				}
			},
		},
		{
			name:   "cancelled",
			err:    &orchestrator.CancelledError{Workload: "wl", Stage: "admission", Err: context.Canceled},
			code:   CodeCancelled,
			status: 499,
			is:     []error{orchestrator.ErrCancelled, context.Canceled},
			notIs:  []error{orchestrator.ErrRejected, context.DeadlineExceeded},
			checkTyped: func(t *testing.T, decoded error) {
				var ce *orchestrator.CancelledError
				if !errors.As(decoded, &ce) || ce.Stage != "admission" {
					t.Fatalf("decoded %v, want CancelledError at admission", decoded)
				}
			},
		},
		{
			name:   "deadline",
			err:    &orchestrator.CancelledError{Workload: "wl", Stage: "reservation", Err: context.DeadlineExceeded},
			code:   CodeCancelled,
			status: 499,
			is:     []error{orchestrator.ErrCancelled, context.DeadlineExceeded},
			notIs:  []error{context.Canceled},
		},
		{
			name: "drain-blocked",
			err: &orchestrator.DrainError{
				Node: "olt-01", Workload: "wl",
				Err: &orchestrator.CapacityError{Workload: "wl", Requested: orchestrator.Resources{CPUMilli: 9000}, Nodes: 1},
			},
			code:   CodeDrainBlocked,
			status: 423,
			is:     []error{orchestrator.ErrNoCapacity},
			notIs:  []error{orchestrator.ErrCancelled},
			checkTyped: func(t *testing.T, decoded error) {
				var de *orchestrator.DrainError
				if !errors.As(decoded, &de) || de.Node != "olt-01" {
					t.Fatalf("decoded %v, want DrainError on olt-01", decoded)
				}
				var ce *orchestrator.CapacityError
				if !errors.As(de.Err, &ce) || ce.Requested.CPUMilli != 9000 {
					t.Fatalf("nested cause lost: %v", de.Err)
				}
			},
		},
		{
			name:   "closed",
			err:    &core.ClosedError{Op: "Deploy"},
			code:   CodeClosed,
			status: 503,
			is:     []error{events.ErrClosed},
			notIs:  []error{orchestrator.ErrRejected},
			checkTyped: func(t *testing.T, decoded error) {
				var ce *core.ClosedError
				if !errors.As(decoded, &ce) || ce.Op != "Deploy" {
					t.Fatalf("decoded %v, want ClosedError for Deploy", decoded)
				}
			},
		},
		{
			name:   "internal",
			err:    errors.New("disk on fire"),
			code:   CodeInternal,
			status: 500,
		},
	}

	codes := map[string]string{}   // code -> first case name (dup detection per class)
	statuses := map[int]string{}   // status -> code
	classSeen := map[string]bool{} // code for which is/status uniqueness already checked
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			we := Encode(tc.err)
			if we.Code != tc.code {
				t.Fatalf("code = %q, want %q", we.Code, tc.code)
			}
			if got := we.Status(); got != tc.status {
				t.Fatalf("status = %d, want %d", got, tc.status)
			}
			if we.Message != tc.err.Error() {
				t.Fatalf("message = %q, want %q", we.Message, tc.err.Error())
			}
			// Distinctness: every error class maps to its own code, and
			// every code to its own status.
			if !classSeen[tc.code] {
				classSeen[tc.code] = true
				if prev, dup := codes[tc.code]; dup {
					t.Fatalf("code %q already used by class %q", tc.code, prev)
				}
				codes[tc.code] = tc.name
				if prev, dup := statuses[tc.status]; dup {
					t.Fatalf("status %d already used by code %q", tc.status, prev)
				}
				statuses[tc.status] = tc.code
			}

			// Round trip through actual JSON, as the wire would.
			data, err := json.Marshal(we)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			var back WireError
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			decoded := Decode(&back)
			if decoded.Error() == "" {
				t.Fatal("decoded error has empty message")
			}
			for _, want := range tc.is {
				if !errors.Is(decoded, want) {
					t.Errorf("errors.Is(decoded, %v) = false, want true", want)
				}
			}
			for _, not := range tc.notIs {
				if errors.Is(decoded, not) {
					t.Errorf("errors.Is(decoded, %v) = true, want false", not)
				}
			}
			if tc.checkTyped != nil {
				tc.checkTyped(t, decoded)
			}
		})
	}
}

// TestFederationErrorTaxonomyRoundTrip covers the federation error
// classes separately from the main table: cluster-not-found
// deliberately shares HTTP 404 with node-not-found (Decode switches on
// Code, not status), so the main table's one-status-per-code
// distinctness check does not apply here.
func TestFederationErrorTaxonomyRoundTrip(t *testing.T) {
	cases := []struct {
		name       string
		err        error
		code       string
		status     int
		is         []error
		notIs      []error
		checkTyped func(t *testing.T, decoded error)
	}{
		{
			name: "region-pinned",
			err: &federation.RegionPinnedError{
				Workload: "wl", Tenant: "gov", Region: "region-a", Requested: "region-b",
			},
			code:   CodeRegionPinned,
			status: 451,
			is:     []error{federation.ErrRegionPinned, orchestrator.ErrRejected},
			notIs:  []error{orchestrator.ErrNoCapacity, federation.ErrClusterNotFound},
			checkTyped: func(t *testing.T, decoded error) {
				var pe *federation.RegionPinnedError
				if !errors.As(decoded, &pe) {
					t.Fatalf("decoded %T, want *RegionPinnedError", decoded)
				}
				if pe.Tenant != "gov" || pe.Region != "region-a" || pe.Requested != "region-b" || pe.Workload != "wl" {
					t.Fatalf("fields lost: %+v", pe)
				}
			},
		},
		{
			name: "federation-capacity",
			err: &federation.FederationCapacityError{
				Workload: "wl", Tenant: "acme", Region: "region-b", Clusters: 3,
				Err: &orchestrator.CapacityError{Workload: "wl", Nodes: 12},
			},
			code:   CodeFedCapacity,
			status: 502,
			is:     []error{orchestrator.ErrNoCapacity, orchestrator.ErrRejected},
			notIs:  []error{federation.ErrRegionPinned},
			checkTyped: func(t *testing.T, decoded error) {
				var fe *federation.FederationCapacityError
				if !errors.As(decoded, &fe) {
					t.Fatalf("decoded %T, want *FederationCapacityError", decoded)
				}
				if fe.Tenant != "acme" || fe.Region != "region-b" || fe.Clusters != 3 {
					t.Fatalf("fields lost: %+v", fe)
				}
				// The last per-cluster capacity error survives the nested
				// wire encoding as a typed error, not a flat string.
				var ce *orchestrator.CapacityError
				if !errors.As(fe.Err, &ce) || ce.Nodes != 12 {
					t.Fatalf("wrapped capacity cause lost: %v", fe.Err)
				}
			},
		},
		{
			name:   "cluster-not-found",
			err:    &federation.ClusterNotFoundError{Cluster: "edge-x"},
			code:   CodeClusterNotFound,
			status: 404,
			is:     []error{federation.ErrClusterNotFound, orchestrator.ErrNotFound},
			notIs:  []error{orchestrator.ErrRejected, orchestrator.ErrNodeUnknown},
			checkTyped: func(t *testing.T, decoded error) {
				var ce *federation.ClusterNotFoundError
				if !errors.As(decoded, &ce) {
					t.Fatalf("decoded %T, want *ClusterNotFoundError", decoded)
				}
				if ce.Cluster != "edge-x" {
					t.Fatalf("cluster name lost: %+v", ce)
				}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			we := Encode(tc.err)
			if we.Code != tc.code {
				t.Fatalf("code = %q, want %q", we.Code, tc.code)
			}
			if got := we.Status(); got != tc.status {
				t.Fatalf("status = %d, want %d", got, tc.status)
			}
			if we.Message != tc.err.Error() {
				t.Fatalf("message = %q, want %q", we.Message, tc.err.Error())
			}
			data, err := json.Marshal(we)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			var back WireError
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			decoded := Decode(&back)
			for _, want := range tc.is {
				if !errors.Is(decoded, want) {
					t.Errorf("errors.Is(decoded, %v) = false, want true", want)
				}
			}
			for _, not := range tc.notIs {
				if errors.Is(decoded, not) {
					t.Errorf("errors.Is(decoded, %v) = true, want false", not)
				}
			}
			if tc.checkTyped != nil {
				tc.checkTyped(t, decoded)
			}
		})
	}
}

func TestEncodeNil(t *testing.T) {
	if Encode(nil) != nil {
		t.Fatal("Encode(nil) != nil")
	}
	if Decode(nil) != nil {
		t.Fatal("Decode(nil) != nil")
	}
}

func TestDecodeUnknownCodeIsWireError(t *testing.T) {
	we := &WireError{Code: "from-the-future", Message: "novel failure"}
	decoded := Decode(we)
	var back *WireError
	if !errors.As(decoded, &back) || back.Code != "from-the-future" {
		t.Fatalf("decoded = %v, want the wire error itself", decoded)
	}
	if HTTPStatus("from-the-future") != 500 {
		t.Fatal("unknown code should map to 500")
	}
}

// TestContextSentinelsEncodeAsCancelled covers the bare-context path:
// a handler whose request context died before the pipeline wrapped it.
func TestContextSentinelsEncodeAsCancelled(t *testing.T) {
	if we := Encode(context.Canceled); we.Code != CodeCancelled || we.Cause != CauseCanceled {
		t.Fatalf("Encode(context.Canceled) = %+v", we)
	}
	if we := Encode(context.DeadlineExceeded); we.Code != CodeCancelled || we.Cause != CauseDeadline {
		t.Fatalf("Encode(context.DeadlineExceeded) = %+v", we)
	}
}
