package api

import (
	"context"
	"errors"
	"net/http"

	"genio/internal/container"
	"genio/internal/core"
	"genio/internal/federation"
	"genio/internal/orchestrator"
)

// Wire codes: one stable machine-readable code per control-plane error
// class. Codes are the compatibility contract — clients switch on them,
// and Decode reconstructs the library's typed error from them — so a
// code, once shipped, never changes meaning.
const (
	CodeAdmissionDenied = "admission-denied"
	CodeImagePull       = "image-pull"
	CodeQuotaExceeded   = "quota-exceeded"
	CodeNoCapacity      = "no-capacity"
	CodeUnauthorized    = "unauthorized"
	CodeDuplicateName   = "duplicate-name"
	CodeNodeNotFound    = "node-not-found"
	CodePlacementPolicy = "placement-policy"
	CodeCancelled       = "cancelled"
	CodeDrainBlocked    = "drain-blocked"
	CodeRegionPinned    = "region-pinned"
	CodeFedCapacity     = "federation-capacity"
	CodeClusterNotFound = "cluster-not-found"
	CodeClosed          = "platform-closed"
	CodeBadRequest      = "bad-request"
	CodeUnauthenticated = "unauthenticated"
	// CodeSessionExpired is the recoverable subset of unauthenticated:
	// the session token is no longer live. Clients re-handshake (POST
	// /v2/session) and retry instead of surfacing an auth failure.
	CodeSessionExpired = "session-expired"
	CodeInternal       = "internal"
)

// Cause discriminators for wire errors whose library form wraps a
// sentinel that Error() alone cannot recover.
const (
	// ImagePullError causes.
	CauseImageNotFound = "not-found"
	CauseImageUnsigned = "unsigned"
	CauseBadSignature  = "bad-signature"
	// CancelledError causes.
	CauseCanceled = "canceled"
	CauseDeadline = "deadline"
	// NodeNotFoundError causes: which package's sentinel the error
	// carried (core.ErrNoNode vs orchestrator.ErrNodeUnknown).
	CauseNodeCore    = "core"
	CauseNodeCluster = "cluster"
)

// httpStatus maps each wire code to a distinct HTTP status, so a client
// that only looks at the status line still distinguishes every class.
// 499 (client closed request, nginx convention) reports cancellation —
// the caller withdrew, nobody refused.
var httpStatus = map[string]int{
	CodeAdmissionDenied: http.StatusUnprocessableEntity, // 422
	CodeImagePull:       http.StatusFailedDependency,    // 424
	CodeQuotaExceeded:   http.StatusTooManyRequests,     // 429
	CodeNoCapacity:      http.StatusInsufficientStorage, // 507
	CodeUnauthorized:    http.StatusForbidden,           // 403
	CodeDuplicateName:   http.StatusConflict,            // 409
	CodeNodeNotFound:    http.StatusNotFound,            // 404
	CodePlacementPolicy: http.StatusBadRequest,          // 400
	CodeCancelled:       499,
	CodeDrainBlocked:    http.StatusLocked, // 423
	// 451: a data-residency pin is a legal/policy constraint, not a
	// resource one, so it gets the legal-reasons status.
	CodeRegionPinned:    http.StatusUnavailableForLegalReasons, // 451
	CodeFedCapacity:     http.StatusBadGateway,                 // 502: no cluster behind the federation could take it
	CodeClusterNotFound: http.StatusNotFound,                   // 404 (shared with node-not-found; Decode switches on Code)
	CodeClosed:          http.StatusServiceUnavailable,         // 503
	CodeBadRequest:      http.StatusBadRequest,                 // 400
	CodeUnauthenticated: http.StatusUnauthorized,               // 401
	CodeSessionExpired:  http.StatusUnauthorized,               // 401 (shared with unauthenticated; clients switch on Code)
	CodeInternal:        http.StatusInternalServerError,
}

// HTTPStatus returns the status for a wire code (500 for unknown
// codes).
func HTTPStatus(code string) int {
	if s, ok := httpStatus[code]; ok {
		return s
	}
	return http.StatusInternalServerError
}

// WireError is the JSON error body of every non-2xx control-plane
// response. Code selects the class; Message is the library error's
// formatted text; the remaining fields carry the typed error's
// structured payload so Decode can rebuild it losslessly.
type WireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`

	Workload string `json:"workload,omitempty"`
	Tenant   string `json:"tenant,omitempty"`
	Node     string `json:"node,omitempty"`
	Subject  string `json:"subject,omitempty"`
	Verb     string `json:"verb,omitempty"`
	Ref      string `json:"ref,omitempty"`
	Policy   string `json:"policy,omitempty"`
	Stage    string `json:"stage,omitempty"`
	Op       string `json:"op,omitempty"`
	Cause    string `json:"cause,omitempty"`

	Verdicts  []orchestrator.ScannerVerdict `json:"verdicts,omitempty"`
	Requested *Resources                    `json:"requested,omitempty"`
	Used      *Resources                    `json:"used,omitempty"`
	Quota     *Resources                    `json:"quota,omitempty"`
	Nodes     int                           `json:"nodes,omitempty"`

	// Federation payloads: Region is a tenant's pinned region,
	// RequestedRegion the region a refused deploy asked for, Cluster a
	// federation member name, Clusters the eligible-member count an
	// exhausted placement walked.
	Region          string `json:"region,omitempty"`
	RequestedRegion string `json:"requestedRegion,omitempty"`
	Cluster         string `json:"cluster,omitempty"`
	Clusters        int    `json:"clusters,omitempty"`

	// Wrapped carries a nested wire error (DrainError's scheduling
	// cause).
	Wrapped *WireError `json:"wrapped,omitempty"`
}

// Error makes *WireError usable as an error directly (a client that
// skips Decode still gets the server-side message).
func (e *WireError) Error() string {
	if e.Message != "" {
		return e.Message
	}
	return "api: " + e.Code
}

// Status returns the HTTP status for the error's code.
func (e *WireError) Status() int { return HTTPStatus(e.Code) }

func wireResources(r orchestrator.Resources) *Resources {
	return &Resources{CPUMilli: r.CPUMilli, MemoryMB: r.MemoryMB}
}

func libResources(r *Resources) orchestrator.Resources {
	if r == nil {
		return orchestrator.Resources{}
	}
	return orchestrator.Resources{CPUMilli: r.CPUMilli, MemoryMB: r.MemoryMB}
}

// Encode maps a control-plane error to its wire form. Every type in the
// taxonomy gets a distinct code; anything unrecognized becomes
// CodeInternal with the message preserved. Nil maps to nil.
//
// Order matters where wrap chains cross classes: a DrainError typically
// wraps a capacity failure, and a CancelledError wraps a context
// sentinel, so the wrapping types are matched before the types they may
// contain.
func Encode(err error) *WireError {
	if err == nil {
		return nil
	}
	var (
		closedErr *core.ClosedError
		cancelled *orchestrator.CancelledError
		drain     *orchestrator.DrainError
		admission *orchestrator.AdmissionError
		pull      *orchestrator.ImagePullError
		quota     *orchestrator.QuotaError
		capacity  *orchestrator.CapacityError
		unauth    *orchestrator.UnauthorizedError
		dup       *orchestrator.DuplicateNameError
		notFound  *orchestrator.NodeNotFoundError
		policy    *orchestrator.PlacementPolicyError
		pinned    *federation.RegionPinnedError
		fedCap    *federation.FederationCapacityError
		noCluster *federation.ClusterNotFoundError
	)
	switch {
	case errors.As(err, &pinned):
		return &WireError{
			Code:            CodeRegionPinned,
			Message:         err.Error(),
			Workload:        pinned.Workload,
			Tenant:          pinned.Tenant,
			Region:          pinned.Region,
			RequestedRegion: pinned.Requested,
		}
	// A FederationCapacityError may wrap the last member cluster's
	// *CapacityError, so the federation class must match first.
	case errors.As(err, &fedCap):
		return &WireError{
			Code:     CodeFedCapacity,
			Message:  err.Error(),
			Workload: fedCap.Workload,
			Tenant:   fedCap.Tenant,
			Region:   fedCap.Region,
			Clusters: fedCap.Clusters,
			Wrapped:  Encode(fedCap.Err),
		}
	case errors.As(err, &noCluster):
		return &WireError{Code: CodeClusterNotFound, Message: err.Error(), Cluster: noCluster.Cluster}
	case errors.As(err, &closedErr):
		return &WireError{Code: CodeClosed, Message: err.Error(), Op: closedErr.Op}
	case errors.As(err, &cancelled):
		we := &WireError{
			Code:     CodeCancelled,
			Message:  err.Error(),
			Workload: cancelled.Workload,
			Stage:    cancelled.Stage,
		}
		switch {
		case errors.Is(cancelled.Err, context.DeadlineExceeded):
			we.Cause = CauseDeadline
		case errors.Is(cancelled.Err, context.Canceled):
			we.Cause = CauseCanceled
		}
		return we
	case errors.As(err, &drain):
		return &WireError{
			Code:     CodeDrainBlocked,
			Message:  err.Error(),
			Node:     drain.Node,
			Workload: drain.Workload,
			Wrapped:  Encode(drain.Err),
		}
	case errors.As(err, &admission):
		return &WireError{
			Code:     CodeAdmissionDenied,
			Message:  err.Error(),
			Workload: admission.Workload,
			Tenant:   admission.Tenant,
			Verdicts: admission.Verdicts,
		}
	case errors.As(err, &pull):
		we := &WireError{Code: CodeImagePull, Message: err.Error(), Ref: pull.Ref}
		switch {
		case errors.Is(pull.Err, container.ErrNotFound):
			we.Cause = CauseImageNotFound
		case errors.Is(pull.Err, container.ErrBadSignature):
			we.Cause = CauseBadSignature
		case errors.Is(pull.Err, container.ErrUnsigned):
			we.Cause = CauseImageUnsigned
		}
		return we
	case errors.As(err, &quota):
		return &WireError{
			Code:      CodeQuotaExceeded,
			Message:   err.Error(),
			Tenant:    quota.Tenant,
			Requested: wireResources(quota.Requested),
			Used:      wireResources(quota.Used),
			Quota:     wireResources(quota.Quota),
		}
	case errors.As(err, &capacity):
		return &WireError{
			Code:      CodeNoCapacity,
			Message:   err.Error(),
			Workload:  capacity.Workload,
			Requested: wireResources(capacity.Requested),
			Nodes:     capacity.Nodes,
		}
	case errors.As(err, &unauth):
		return &WireError{
			Code:    CodeUnauthorized,
			Message: err.Error(),
			Subject: unauth.Subject,
			Verb:    unauth.Verb,
			Tenant:  unauth.Tenant,
		}
	case errors.As(err, &dup):
		return &WireError{Code: CodeDuplicateName, Message: err.Error(), Workload: dup.Workload}
	case errors.As(err, &notFound):
		we := &WireError{Code: CodeNodeNotFound, Message: err.Error(), Node: notFound.Node}
		switch {
		case errors.Is(err, core.ErrNoNode):
			we.Cause = CauseNodeCore
		case errors.Is(err, orchestrator.ErrNodeUnknown):
			we.Cause = CauseNodeCluster
		}
		return we
	case errors.As(err, &policy):
		return &WireError{
			Code:     CodePlacementPolicy,
			Message:  err.Error(),
			Workload: policy.Workload,
			Policy:   policy.Policy,
		}
	case errors.Is(err, context.Canceled):
		return &WireError{Code: CodeCancelled, Message: err.Error(), Cause: CauseCanceled}
	case errors.Is(err, context.DeadlineExceeded):
		return &WireError{Code: CodeCancelled, Message: err.Error(), Cause: CauseDeadline}
	default:
		return &WireError{Code: CodeInternal, Message: err.Error()}
	}
}

// Decode reconstructs the library's typed error from a wire error. The
// result satisfies the same errors.Is/errors.As assertions as the error
// the server encoded: sentinels (ErrRejected, ErrDenied, ErrCancelled,
// ErrNoCapacity, container.ErrUnsigned, core.ErrNoNode, ...) survive
// the round trip. Unknown codes come back as the *WireError itself.
// Nil maps to nil.
func Decode(we *WireError) error {
	if we == nil {
		return nil
	}
	switch we.Code {
	case CodeAdmissionDenied:
		return &orchestrator.AdmissionError{
			Workload: we.Workload,
			Tenant:   we.Tenant,
			Verdicts: we.Verdicts,
		}
	case CodeImagePull:
		var cause error
		switch we.Cause {
		case CauseImageNotFound:
			cause = container.ErrNotFound
		case CauseBadSignature:
			cause = container.ErrBadSignature
		case CauseImageUnsigned:
			cause = container.ErrUnsigned
		default:
			cause = errors.New(we.Message)
		}
		return &orchestrator.ImagePullError{Ref: we.Ref, Err: cause}
	case CodeQuotaExceeded:
		return &orchestrator.QuotaError{
			Tenant:    we.Tenant,
			Requested: libResources(we.Requested),
			Used:      libResources(we.Used),
			Quota:     libResources(we.Quota),
		}
	case CodeNoCapacity:
		return &orchestrator.CapacityError{
			Workload:  we.Workload,
			Requested: libResources(we.Requested),
			Nodes:     we.Nodes,
		}
	case CodeUnauthorized:
		return &orchestrator.UnauthorizedError{Subject: we.Subject, Verb: we.Verb, Tenant: we.Tenant}
	case CodeDuplicateName:
		return &orchestrator.DuplicateNameError{Workload: we.Workload}
	case CodeNodeNotFound:
		sentinel := orchestrator.ErrNodeUnknown
		if we.Cause == CauseNodeCore {
			sentinel = core.ErrNoNode
		}
		return &orchestrator.NodeNotFoundError{Node: we.Node, Err: sentinel}
	case CodePlacementPolicy:
		return &orchestrator.PlacementPolicyError{Workload: we.Workload, Policy: we.Policy}
	case CodeCancelled:
		var cause error
		switch we.Cause {
		case CauseDeadline:
			cause = context.DeadlineExceeded
		default:
			cause = context.Canceled
		}
		return &orchestrator.CancelledError{Workload: we.Workload, Stage: we.Stage, Err: cause}
	case CodeRegionPinned:
		return &federation.RegionPinnedError{
			Workload:  we.Workload,
			Tenant:    we.Tenant,
			Region:    we.Region,
			Requested: we.RequestedRegion,
		}
	case CodeFedCapacity:
		return &federation.FederationCapacityError{
			Workload: we.Workload,
			Tenant:   we.Tenant,
			Region:   we.Region,
			Clusters: we.Clusters,
			Err:      Decode(we.Wrapped),
		}
	case CodeClusterNotFound:
		return &federation.ClusterNotFoundError{Cluster: we.Cluster}
	case CodeDrainBlocked:
		cause := Decode(we.Wrapped)
		if cause == nil {
			cause = errors.New(we.Message)
		}
		return &orchestrator.DrainError{Node: we.Node, Workload: we.Workload, Err: cause}
	case CodeClosed:
		return &core.ClosedError{Op: we.Op}
	default:
		return we
	}
}
