package api

// DTO conversion contract: the wire shapes are a re-declaration, so
// every converter must carry each field across exactly, and the spec
// round trip (library → wire → library) must be the identity.

import (
	"reflect"
	"testing"

	"genio/internal/core"
	"genio/internal/events"
	"genio/internal/orchestrator"
)

func TestWorkloadSpecRoundTrip(t *testing.T) {
	for _, iso := range []orchestrator.IsolationMode{orchestrator.IsolationSoft, orchestrator.IsolationHard} {
		lib := orchestrator.WorkloadSpec{
			Name: "web", Tenant: "acme", ImageRef: "acme/analytics:2.0.1",
			Isolation:       iso,
			Resources:       orchestrator.Resources{CPUMilli: 500, MemoryMB: 512},
			PlacementPolicy: "spread",
		}
		back, err := FromWorkloadSpec(lib).ToOrchestrator()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back, lib) {
			t.Fatalf("round trip lost data:\n got %+v\nwant %+v", back, lib)
		}
	}
	// Empty isolation defaults to soft; unknown names refuse.
	spec, err := WorkloadSpec{Name: "w", Tenant: "t"}.ToOrchestrator()
	if err != nil || spec.Isolation != orchestrator.IsolationSoft {
		t.Fatalf("default isolation: %v / %v", spec.Isolation, err)
	}
	if _, err := (WorkloadSpec{Isolation: "quantum"}).ToOrchestrator(); err == nil {
		t.Fatal("unknown isolation accepted")
	}
}

func TestFromWorkload(t *testing.T) {
	if FromWorkload(nil) != nil {
		t.Fatal("nil workload must map to nil")
	}
	wl := FromWorkload(&orchestrator.Workload{
		Spec: orchestrator.WorkloadSpec{Name: "web", Tenant: "acme",
			Isolation: orchestrator.IsolationHard},
		Node: "olt-01", VMID: "vm-007", PlacedAtMs: 42, Strategy: "binpack", Score: 0.5,
	})
	if wl.Node != "olt-01" || wl.VMID != "vm-007" || wl.PlacedAtMs != 42 ||
		wl.Strategy != "binpack" || wl.Score != 0.5 || wl.Spec.Isolation != IsolationHard {
		t.Fatalf("fields lost: %+v", wl)
	}
}

func TestLifecycleEventConversion(t *testing.T) {
	ev := FromLifecycleEvent(core.LifecycleEvent{
		Workload: "web", Tenant: "acme",
		From: core.StateScanning, State: core.StateRunning,
		Node: "olt-01", Detail: "d", AtMs: 7,
	})
	want := LifecycleEvent{Workload: "web", Tenant: "acme",
		From: "scanning", State: "running", Node: "olt-01", Detail: "d", AtMs: 7}
	if ev != want {
		t.Fatalf("got %+v want %+v", ev, want)
	}
	if !ev.Terminal() {
		t.Fatal("running must be terminal")
	}
	if (LifecycleEvent{State: "scanning"}).Terminal() {
		t.Fatal("scanning must not be terminal")
	}
}

func TestWatchSelectorToCore(t *testing.T) {
	sel := WatchSelector{Tenant: "acme", Workload: "web", TerminalOnly: true}.ToCore()
	if sel.Tenant != "acme" || sel.Workload != "web" || !sel.TerminalOnly {
		t.Fatalf("selector lost fields: %+v", sel)
	}
}

func TestFromUtilization(t *testing.T) {
	ns := FromUtilization(orchestrator.NodeUtilization{
		Node:     "olt-01",
		Used:     orchestrator.Resources{CPUMilli: 100, MemoryMB: 200},
		Capacity: orchestrator.Resources{CPUMilli: 1000, MemoryMB: 2000},
		Cordoned: true, Workloads: 3, SharedVMs: 2,
	})
	if ns.Node != "olt-01" || ns.Used.CPUMilli != 100 || ns.Capacity.MemoryMB != 2000 ||
		!ns.Cordoned || ns.Workloads != 3 || ns.SharedVMs != 2 ||
		ns.Binpack != nil || ns.Spread != nil {
		t.Fatalf("fields lost: %+v", ns)
	}
}

func TestResultConversions(t *testing.T) {
	if FromDrainResult(nil) != nil || FromFailoverResult(nil) != nil {
		t.Fatal("nil results must map to nil")
	}
	dr := FromDrainResult(&orchestrator.DrainResult{
		Node: "olt-01", Migrated: []string{"a"}, Remaining: []string{"b"},
		Cancelled: true, AtMs: 9,
	})
	if dr.Node != "olt-01" || len(dr.Migrated) != 1 || len(dr.Remaining) != 1 ||
		!dr.Cancelled || dr.AtMs != 9 {
		t.Fatalf("drain fields lost: %+v", dr)
	}
	fr := FromFailoverResult(&orchestrator.FailoverResult{
		Node: "olt-02", Rescheduled: []string{"a", "b"}, Evicted: []string{"c"}, AtMs: 4,
	})
	if fr.Node != "olt-02" || len(fr.Rescheduled) != 2 || len(fr.Evicted) != 1 || fr.AtMs != 4 {
		t.Fatalf("failover fields lost: %+v", fr)
	}
}

func TestFromStats(t *testing.T) {
	ledger := FromStats(events.Stats{
		events.TopicMetric: {Published: 5, Delivered: 4, Dropped: 1, Filtered: 2},
	})
	got := ledger["metric"]
	if got.Published != 5 || got.Delivered != 4 || got.Dropped != 1 || got.Filtered != 2 {
		t.Fatalf("counters lost: %+v", got)
	}
}
