package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"genio/api"
	"genio/api/client"
	"genio/internal/container"
	"genio/internal/core"
	"genio/internal/events"
	"genio/internal/orchestrator"
	"genio/internal/persist"
	"genio/internal/pki"
	"genio/internal/rbac"
)

// testPlatform builds the standard secure fixture: two nodes, a trusted
// publisher with the signed image set plus one unsigned hostile image,
// and an all-powerful operator role.
func testPlatform(t *testing.T) *core.Platform {
	t.Helper()
	p, err := core.New(core.SecureConfig())
	if err != nil {
		t.Fatalf("platform: %v", err)
	}
	t.Cleanup(p.Close)
	for _, node := range []string{"olt-01", "olt-02"} {
		if _, err := p.AddEdgeNode(node, orchestrator.Resources{CPUMilli: 16000, MemoryMB: 32768}); err != nil {
			t.Fatalf("node %s: %v", node, err)
		}
	}
	pub, err := container.NewPublisher("acme")
	if err != nil {
		t.Fatalf("publisher: %v", err)
	}
	p.Registry.TrustPublisher("acme", pub.PublicKey())
	for _, img := range []*container.Image{
		container.AnalyticsImage(),
		container.IoTGatewayImage(),
		container.MLInferenceImage(),
		container.CryptominerImage(),
	} {
		sig := pub.Sign(img)
		p.Registry.Push(img, &sig)
	}
	p.Registry.Push(container.BackdoorImage(), nil) // unsigned
	p.RBAC.SetRole(rbac.Role{Name: "operator", Permissions: []rbac.Permission{
		{Verb: "*", Resource: "*", Namespace: "*"},
	}})
	if err := p.RBAC.Bind("operator", "operator"); err != nil {
		t.Fatalf("bind: %v", err)
	}
	// Roomy quota so capacity, not quota, is the binding constraint.
	p.Cluster.SetQuota("acme", orchestrator.Resources{CPUMilli: 1 << 30, MemoryMB: 1 << 30})
	return p
}

// testServer hosts the platform behind httptest and returns an
// authenticated remote client for subject "operator".
func testServer(t *testing.T, p *core.Platform) (*Server, *httptest.Server, *client.HTTP) {
	t.Helper()
	srv := New(p, Options{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	id, err := p.CA.Issue("operator", pki.RoleService)
	if err != nil {
		t.Fatalf("issue identity: %v", err)
	}
	c := client.NewHTTP(ts.URL, client.WithIdentity(id),
		client.WithBackoff(5*time.Millisecond, 50*time.Millisecond))
	t.Cleanup(func() { _ = c.Close() })
	return srv, ts, c
}

func spec(name, ref string, cpu, mem int) api.WorkloadSpec {
	return api.WorkloadSpec{
		Name: name, Tenant: "acme", ImageRef: ref, Isolation: api.IsolationSoft,
		Resources: api.Resources{CPUMilli: cpu, MemoryMB: mem},
	}
}

// TestE2EOverHTTP drives the acceptance path entirely over the wire:
// deploy (sync + async), lifecycle watch, drain, failover.
func TestE2EOverHTTP(t *testing.T) {
	p := testPlatform(t)
	_, _, c := testServer(t, p)
	ctx := context.Background()

	// Watch first, so every lifecycle transition of the async deploy is
	// observed through the SSE stream.
	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	eventsCh, err := c.Watch(watchCtx, api.WatchSelector{Tenant: "acme"})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}

	// Sync deploy.
	wl, err := c.Deploy(ctx, spec("web", "acme/analytics:2.0.1", 500, 512))
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	if wl.Node == "" || wl.VMID == "" {
		t.Fatalf("placement incomplete: %+v", wl)
	}

	// Async deploy through the future endpoints.
	d, err := c.DeployAsync(ctx, spec("api", "acme/analytics:2.0.1", 400, 256))
	if err != nil {
		t.Fatalf("deploy async: %v", err)
	}
	if d.ID() == "" {
		t.Fatal("async deploy has no ID")
	}
	placed, err := d.Await(ctx)
	if err != nil {
		t.Fatalf("await: %v", err)
	}
	if placed == nil || placed.Node == "" {
		t.Fatalf("await returned no placement: %+v", placed)
	}
	st, err := d.Status(ctx)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.State != string(core.StateRunning) || st.Placed == nil {
		t.Fatalf("status = %+v, want running with placement", st)
	}

	// The watch stream must deliver the async deploy's full lifecycle.
	seen := map[string]bool{}
	deadline := time.After(5 * time.Second)
	for !seen["running"] {
		select {
		case ev, ok := <-eventsCh:
			if !ok {
				t.Fatal("watch stream closed early")
			}
			if ev.Workload == "api" {
				seen[ev.State] = true
			}
		case <-deadline:
			t.Fatalf("timed out waiting for lifecycle events; saw %v", seen)
		}
	}
	for _, want := range []string{"pending", "scanning", "placing", "running"} {
		if !seen[want] {
			t.Errorf("lifecycle state %q never seen on the wire", want)
		}
	}

	// Drain the hot node over HTTP; binpack stacked both workloads.
	hot := wl.Node
	res, err := c.Drain(ctx, hot)
	if err != nil {
		t.Fatalf("drain %s: %v", hot, err)
	}
	if len(res.Migrated) == 0 {
		t.Fatalf("drain migrated nothing: %+v", res)
	}

	// Fail the node the workloads migrated to; they must reschedule
	// back onto the (still cordoned? no — drain cordons the source) —
	// uncordon the drained node first so failover has a target.
	if err := c.Uncordon(ctx, hot); err != nil {
		t.Fatalf("uncordon: %v", err)
	}
	other := "olt-02"
	if hot == "olt-02" {
		other = "olt-01"
	}
	fo, err := c.FailNode(ctx, other)
	if err != nil {
		t.Fatalf("fail %s: %v", other, err)
	}
	if len(fo.Rescheduled) == 0 {
		t.Fatalf("failover rescheduled nothing: %+v", fo)
	}

	// Fleet table reflects the failure: one node left.
	nodes, err := c.Nodes(ctx, &api.Resources{CPUMilli: 500, MemoryMB: 512}, "")
	if err != nil {
		t.Fatalf("nodes: %v", err)
	}
	if len(nodes) != 1 || nodes[0].Node != hot {
		t.Fatalf("nodes = %+v, want only %s", nodes, hot)
	}
	if nodes[0].Binpack == nil || nodes[0].Spread == nil {
		t.Fatalf("probe scores missing: %+v", nodes[0])
	}

	// Ledger and incidents read back over the wire.
	ledger, err := c.Ledger(ctx)
	if err != nil {
		t.Fatalf("ledger: %v", err)
	}
	if ledger[string(events.TopicDeployLifecycle)].Published == 0 {
		t.Fatalf("ledger shows no lifecycle publishes: %+v", ledger)
	}
	if _, err := c.Incidents(ctx); err != nil {
		t.Fatalf("incidents: %v", err)
	}
}

// TestTypedErrorsOverTheWire asserts the deploy rejection paths produce
// decodable typed errors through a real server round trip.
func TestTypedErrorsOverTheWire(t *testing.T) {
	p := testPlatform(t)
	_, _, c := testServer(t, p)
	ctx := context.Background()

	cases := []struct {
		name  string
		spec  api.WorkloadSpec
		check func(t *testing.T, err error)
	}{
		{
			name: "admission",
			spec: spec("miner", "freestuff/optimizer:latest", 100, 128),
			check: func(t *testing.T, err error) {
				var ae *orchestrator.AdmissionError
				if !errors.As(err, &ae) || len(ae.Verdicts) == 0 {
					t.Fatalf("err = %v, want AdmissionError with verdicts", err)
				}
				if !errors.Is(err, orchestrator.ErrDenied) || !errors.Is(err, orchestrator.ErrRejected) {
					t.Fatalf("sentinels lost: %v", err)
				}
			},
		},
		{
			name: "unsigned",
			spec: spec("backdoor", "freestuff/log-shipper:3.1", 100, 128),
			check: func(t *testing.T, err error) {
				if !errors.Is(err, container.ErrUnsigned) {
					t.Fatalf("err = %v, want ErrUnsigned", err)
				}
			},
		},
		{
			name: "not-found",
			spec: spec("ghost", "nobody/none:0", 100, 128),
			check: func(t *testing.T, err error) {
				if !errors.Is(err, container.ErrNotFound) {
					t.Fatalf("err = %v, want ErrNotFound", err)
				}
			},
		},
		{
			name: "capacity",
			spec: spec("huge", "acme/analytics:2.0.1", 1_000_000, 1),
			check: func(t *testing.T, err error) {
				var ce *orchestrator.CapacityError
				if !errors.As(err, &ce) || ce.Nodes != 2 {
					t.Fatalf("err = %v, want CapacityError across 2 nodes", err)
				}
			},
		},
		{
			name: "policy",
			spec: api.WorkloadSpec{Name: "typo", Tenant: "acme", ImageRef: "acme/analytics:2.0.1",
				Isolation: api.IsolationSoft, Resources: api.Resources{CPUMilli: 100, MemoryMB: 128},
				PlacementPolicy: "tightpack"},
			check: func(t *testing.T, err error) {
				var pe *orchestrator.PlacementPolicyError
				if !errors.As(err, &pe) || pe.Policy != "tightpack" {
					t.Fatalf("err = %v, want PlacementPolicyError", err)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Deploy(ctx, tc.spec)
			if err == nil {
				t.Fatal("deploy unexpectedly succeeded")
			}
			tc.check(t, err)
		})
	}

	// Duplicate name: deploy once, then collide.
	if _, err := c.Deploy(ctx, spec("dup", "acme/analytics:2.0.1", 100, 128)); err != nil {
		t.Fatalf("first deploy: %v", err)
	}
	_, err := c.Deploy(ctx, spec("dup", "acme/analytics:2.0.1", 100, 128))
	if !errors.Is(err, orchestrator.ErrDuplicateName) {
		t.Fatalf("err = %v, want ErrDuplicateName", err)
	}

	// Unknown node over the wire.
	_, err = c.Drain(ctx, "olt-ghost")
	if !errors.Is(err, orchestrator.ErrNodeUnknown) {
		t.Fatalf("drain err = %v, want ErrNodeUnknown", err)
	}
	var nfe *orchestrator.NodeNotFoundError
	if !errors.As(err, &nfe) || nfe.Node != "olt-ghost" {
		t.Fatalf("drain err = %v, want NodeNotFoundError", err)
	}

	// RBAC: an unbound subject is refused with a typed error.
	id, err := p.CA.Issue("mallory", pki.RoleService)
	if err != nil {
		t.Fatalf("issue: %v", err)
	}
	ts := httptest.NewServer(New(p, Options{}).Handler())
	defer ts.Close()
	mc := client.NewHTTP(ts.URL, client.WithIdentity(id))
	_, err = mc.Deploy(ctx, spec("intrusion", "acme/analytics:2.0.1", 100, 128))
	if !errors.Is(err, orchestrator.ErrUnauthorized) {
		t.Fatalf("err = %v, want ErrUnauthorized", err)
	}
	if _, err := mc.Nodes(ctx, nil, ""); !errors.Is(err, orchestrator.ErrUnauthorized) {
		t.Fatalf("nodes err = %v, want ErrUnauthorized", err)
	}
}

// TestAuthRequired asserts the secure posture refuses unauthenticated
// requests with 401 and does not fall back to anonymous.
func TestAuthRequired(t *testing.T) {
	p := testPlatform(t)
	_, ts, _ := testServer(t, p)
	resp, err := http.Get(ts.URL + "/v2/nodes")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status = %d, want 401", resp.StatusCode)
	}
	var we api.WireError
	if err := json.NewDecoder(resp.Body).Decode(&we); err != nil || we.Code != api.CodeUnauthenticated {
		t.Fatalf("body = %+v (%v), want code %s", we, err, api.CodeUnauthenticated)
	}
	// Health stays open for probes.
	hr, err := http.Get(ts.URL + "/v2/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", hr.StatusCode)
	}
}

// TestAnonymousModeUsesSubjectHeader covers the legacy posture: no
// certificate, subject taken from the header.
func TestAnonymousModeUsesSubjectHeader(t *testing.T) {
	p := testPlatform(t)
	srv := New(p, Options{AllowAnonymous: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.NewHTTP(ts.URL, client.WithSubject("operator"))
	if _, err := c.Deploy(context.Background(), spec("anon", "acme/analytics:2.0.1", 100, 128)); err != nil {
		t.Fatalf("deploy as header subject: %v", err)
	}
	// A presented-but-bogus certificate must NOT demote to anonymous.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v2/nodes", nil)
	req.Header.Set(api.HeaderCertificate, "bm90LWEtY2VydA==")
	req.Header.Set(api.HeaderSignature, "AAAA")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bogus cert status = %d, want 401", resp.StatusCode)
	}
}

// TestClientDisconnectCancelsSyncDeploy verifies the
// cancelled-never-placed invariant path over the wire: a sync deploy
// whose client vanishes mid-admission is cancelled by the server and
// rolled back, leaving no workload behind.
func TestClientDisconnectCancelsSyncDeploy(t *testing.T) {
	p := testPlatform(t)

	// Gate admission so the deploy is provably in-flight when the
	// client disconnects.
	entered := make(chan struct{}, 1)
	p.Cluster.RegisterAdmissionCtx("test-gate",
		func(ctx context.Context, s orchestrator.WorkloadSpec, _ *container.Image) error {
			if s.Name != "doomed" {
				return nil
			}
			entered <- struct{}{}
			<-ctx.Done()
			return ctx.Err()
		})
	_, _, c := testServer(t, p)

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Deploy(ctx, spec("doomed", "acme/analytics:2.0.1", 100, 128))
		errCh <- err
	}()
	<-entered // the pipeline holds the deploy inside admission
	cancel()  // client disconnects; server ctx dies with the request

	err := <-errCh
	if err == nil {
		t.Fatal("deploy survived client disconnect")
	}
	// Cancelled-never-placed: the workload must not exist.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := p.Cluster.Workload("doomed"); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled workload still placed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var ce *orchestrator.CancelledError
	if !errors.As(err, &ce) && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want cancellation", err)
	}
}

// TestAsyncCancelOverWire cancels an in-flight async deployment through
// DELETE and asserts the terminal state decodes to a CancelledError.
func TestAsyncCancelOverWire(t *testing.T) {
	p := testPlatform(t)
	entered := make(chan struct{}, 1)
	p.Cluster.RegisterAdmissionCtx("test-gate",
		func(ctx context.Context, s orchestrator.WorkloadSpec, _ *container.Image) error {
			if s.Name != "held" {
				return nil
			}
			entered <- struct{}{}
			<-ctx.Done()
			return ctx.Err()
		})
	_, _, c := testServer(t, p)
	ctx := context.Background()

	d, err := c.DeployAsync(ctx, spec("held", "acme/analytics:2.0.1", 100, 128))
	if err != nil {
		t.Fatalf("deploy async: %v", err)
	}
	<-entered
	if err := d.Cancel(ctx); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	_, err = d.Await(ctx)
	if !errors.Is(err, orchestrator.ErrCancelled) {
		t.Fatalf("await err = %v, want ErrCancelled", err)
	}
	var ce *orchestrator.CancelledError
	if !errors.As(err, &ce) {
		t.Fatalf("await err = %v, want CancelledError", err)
	}
	if _, ok := p.Cluster.Workload("held"); ok {
		t.Fatal("cancelled workload was placed")
	}
}

// TestWatchReconnectAfterKilledStream is the SSE regression test: a
// proxy kills the stream mid-flight; the client must reconnect with
// backoff and keep delivering filtered events.
func TestWatchReconnectAfterKilledStream(t *testing.T) {
	p := testPlatform(t)
	srv := New(p, Options{})

	// killerProxy fronts the real handler and hard-closes the first
	// watch connection after its first event.
	var mu sync.Mutex
	kills := 0
	proxy := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v2/watch" {
			srv.Handler().ServeHTTP(w, r)
			return
		}
		mu.Lock()
		shouldKill := kills == 0
		kills++
		mu.Unlock()
		if !shouldKill {
			srv.Handler().ServeHTTP(w, r)
			return
		}
		// Serve the stream but slam the TCP connection after the first
		// event flushes.
		rc := http.NewResponseController(w)
		kw := &killAfterFirstEvent{w: w, rc: rc}
		srv.Handler().ServeHTTP(kw, r)
	})
	ts := httptest.NewServer(proxy)
	defer ts.Close()

	id, err := p.CA.Issue("operator", pki.RoleService)
	if err != nil {
		t.Fatalf("issue: %v", err)
	}
	c := client.NewHTTP(ts.URL, client.WithIdentity(id),
		client.WithBackoff(5*time.Millisecond, 50*time.Millisecond))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Terminal-only filter: it must still hold after the reconnect.
	eventsCh, err := c.Watch(ctx, api.WatchSelector{Tenant: "acme", TerminalOnly: true})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}

	// First deploy (async, so it emits lifecycle events): its terminal
	// event rides the doomed connection.
	deployAsync := func(name string) {
		t.Helper()
		d, err := c.DeployAsync(ctx, spec(name, "acme/analytics:2.0.1", 100, 128))
		if err != nil {
			t.Fatalf("deploy async %s: %v", name, err)
		}
		if _, err := d.Await(ctx); err != nil {
			t.Fatalf("await %s: %v", name, err)
		}
	}
	deployAsync("before-kill")
	var got []api.LifecycleEvent
	select {
	case ev := <-eventsCh:
		got = append(got, ev)
	case <-time.After(5 * time.Second):
		t.Fatal("no event before the kill")
	}

	// Give the client time to notice the kill and reconnect, then
	// deploy again: the event must arrive on the new connection.
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		reconnected := kills >= 2
		mu.Unlock()
		if reconnected {
			break
		}
		select {
		case <-deadline:
			t.Fatal("client never reconnected")
		case <-time.After(5 * time.Millisecond):
		}
	}
	deployAsync("after-kill")
	select {
	case ev := <-eventsCh:
		got = append(got, ev)
	case <-time.After(5 * time.Second):
		t.Fatal("no event after reconnect")
	}
	for _, ev := range got {
		if !ev.Terminal() {
			t.Fatalf("terminal-only filter leaked %+v", ev)
		}
	}
	names := map[string]bool{}
	for _, ev := range got {
		names[ev.Workload] = true
	}
	if !names["before-kill"] || !names["after-kill"] {
		t.Fatalf("events lost across reconnect: %v", names)
	}
}

// killAfterFirstEvent lets one SSE event through, then severs the
// underlying connection.
type killAfterFirstEvent struct {
	w      http.ResponseWriter
	rc     *http.ResponseController
	events int
	dead   bool
}

func (k *killAfterFirstEvent) Header() http.Header { return k.w.Header() }

func (k *killAfterFirstEvent) WriteHeader(code int) { k.w.WriteHeader(code) }

func (k *killAfterFirstEvent) Write(b []byte) (int, error) {
	if k.dead {
		return 0, fmt.Errorf("connection killed")
	}
	n, err := k.w.Write(b)
	if bytes.Contains(b, []byte("data: ")) { // one event frame
		k.events++
	}
	return n, err
}

func (k *killAfterFirstEvent) Flush() {
	if k.dead {
		return
	}
	_ = k.rc.Flush()
	if k.events >= 1 {
		k.dead = true
		conn, _, err := k.rc.Hijack()
		if err == nil {
			_ = conn.Close()
		}
	}
}

// TestDeploymentEndpointsEnforceOwnership: async deployment status,
// await, and cancel are reachable by their creator and by subjects the
// RBAC table allows — not by any authenticated stranger holding the ID.
func TestDeploymentEndpointsEnforceOwnership(t *testing.T) {
	p := testPlatform(t)
	_, ts, c := testServer(t, p)
	ctx := context.Background()

	d, err := c.DeployAsync(ctx, spec("owned", "acme/analytics:2.0.1", 100, 128))
	if err != nil {
		t.Fatalf("deploy async: %v", err)
	}
	if _, err := d.Await(ctx); err != nil {
		t.Fatalf("await: %v", err)
	}
	// IDs must be unguessable, not sequential.
	if d.ID() == "d-1" || len(d.ID()) < 10 {
		t.Fatalf("deployment id %q looks enumerable", d.ID())
	}

	// mallory authenticates fine (valid cert) but has no RBAC grants and
	// did not create the deployment: status and cancel are refused.
	mid, err := p.CA.Issue("mallory", pki.RoleService)
	if err != nil {
		t.Fatalf("issue: %v", err)
	}
	mc := client.NewHTTP(ts.URL, client.WithIdentity(mid))
	t.Cleanup(func() { _ = mc.Close() })
	md := remoteHandle(t, mc, d.ID())
	if _, err := md.Status(ctx); !errors.Is(err, orchestrator.ErrUnauthorized) {
		t.Fatalf("stranger status err = %v, want ErrUnauthorized", err)
	}
	if err := md.Cancel(ctx); !errors.Is(err, orchestrator.ErrUnauthorized) {
		t.Fatalf("stranger cancel err = %v, want ErrUnauthorized", err)
	}

	// An RBAC-privileged subject (bound to the wildcard operator role)
	// may inspect deployments it did not create.
	if err := p.RBAC.Bind("admin", "operator"); err != nil {
		t.Fatalf("bind: %v", err)
	}
	aid, err := p.CA.Issue("admin", pki.RoleService)
	if err != nil {
		t.Fatalf("issue: %v", err)
	}
	ac := client.NewHTTP(ts.URL, client.WithIdentity(aid))
	t.Cleanup(func() { _ = ac.Close() })
	if _, err := remoteHandle(t, ac, d.ID()).Status(ctx); err != nil {
		t.Fatalf("admin status: %v", err)
	}

	// The owner, of course, still can.
	if st, err := d.Status(ctx); err != nil || st.State != string(core.StateRunning) {
		t.Fatalf("owner status: %+v / %v", st, err)
	}
}

// remoteHandle rebuilds a Deployment handle for an existing server-side
// ID on another client — the "stranger who learned the ID" scenario.
func remoteHandle(t *testing.T, c *client.HTTP, id string) client.Deployment {
	t.Helper()
	return c.Deployment(id)
}

// TestTerminalDeploymentEviction: the async registry retains only the
// configured number of completed deployments.
func TestTerminalDeploymentEviction(t *testing.T) {
	p := testPlatform(t)
	srv := New(p, Options{TerminalRetention: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	id, err := p.CA.Issue("operator", pki.RoleService)
	if err != nil {
		t.Fatalf("issue: %v", err)
	}
	c := client.NewHTTP(ts.URL, client.WithIdentity(id))
	t.Cleanup(func() { _ = c.Close() })
	ctx := context.Background()

	var handles []client.Deployment
	for i := 0; i < 3; i++ {
		d, err := c.DeployAsync(ctx, spec(fmt.Sprintf("evict-%d", i), "acme/analytics:2.0.1", 100, 128))
		if err != nil {
			t.Fatalf("deploy %d: %v", i, err)
		}
		if _, err := d.Await(ctx); err != nil {
			t.Fatalf("await %d: %v", i, err)
		}
		handles = append(handles, d)
	}
	// Retirement runs just after the future settles; poll for the oldest
	// entry to fall out.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := handles[0].Status(ctx)
		var we *api.WireError
		if errors.As(err, &we) && we.Code == api.CodeBadRequest {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("oldest terminal deployment never evicted (err = %v)", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The newest two stay pollable.
	for i := 1; i < 3; i++ {
		if _, err := handles[i].Status(ctx); err != nil {
			t.Fatalf("deployment %d evicted too early: %v", i, err)
		}
	}
}

// TestWatchResumeReplaysMissedEvents: events published while the client
// is disconnected must still arrive — the reconnect presents
// Last-Event-ID and the server replays from its buffer.
func TestWatchResumeReplaysMissedEvents(t *testing.T) {
	p := testPlatform(t)
	srv := New(p, Options{})

	// The proxy moves through three modes for /v2/watch connections:
	// 0 = serve but kill after the first event; 1 = refuse outright
	// (transport error, client keeps retrying); 2 = pass through.
	var mu sync.Mutex
	mode := 0
	setMode := func(m int) { mu.Lock(); mode = m; mu.Unlock() }
	proxy := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v2/watch" {
			srv.Handler().ServeHTTP(w, r)
			return
		}
		mu.Lock()
		m := mode
		mu.Unlock()
		switch m {
		case 0:
			rc := http.NewResponseController(w)
			srv.Handler().ServeHTTP(&killAfterFirstEvent{w: w, rc: rc}, r)
		case 1:
			conn, _, err := http.NewResponseController(w).Hijack()
			if err == nil {
				_ = conn.Close()
			}
		default:
			srv.Handler().ServeHTTP(w, r)
		}
	})
	ts := httptest.NewServer(proxy)
	defer ts.Close()

	id, err := p.CA.Issue("operator", pki.RoleService)
	if err != nil {
		t.Fatalf("issue: %v", err)
	}
	c := client.NewHTTP(ts.URL, client.WithIdentity(id),
		client.WithBackoff(5*time.Millisecond, 20*time.Millisecond))
	t.Cleanup(func() { _ = c.Close() })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eventsCh, err := c.Watch(ctx, api.WatchSelector{Tenant: "acme", TerminalOnly: true})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}

	deployAsync := func(name string) {
		t.Helper()
		d, err := c.DeployAsync(ctx, spec(name, "acme/analytics:2.0.1", 100, 128))
		if err != nil {
			t.Fatalf("deploy async %s: %v", name, err)
		}
		if _, err := d.Await(ctx); err != nil {
			t.Fatalf("await %s: %v", name, err)
		}
	}

	// First event rides the doomed connection; receiving it records its
	// id client-side, and flushing it kills the connection.
	deployAsync("before-gap")
	select {
	case ev := <-eventsCh:
		if ev.Workload != "before-gap" {
			t.Fatalf("unexpected first event: %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no event before the gap")
	}

	// Hold the client out while the next deployment completes: its
	// terminal event lands only in the server's replay buffer.
	setMode(1)
	deployAsync("during-gap")
	setMode(2)

	// The reconnect must resume from Last-Event-ID and replay the missed
	// terminal event, still honouring the terminal-only filter.
	select {
	case ev, ok := <-eventsCh:
		if !ok {
			t.Fatal("watch stream closed instead of resuming")
		}
		if ev.Workload != "during-gap" || !ev.Terminal() {
			t.Fatalf("resumed event = %+v, want during-gap terminal", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("event published during disconnect was never replayed")
	}
}

// TestWatchStopsOnPermanentError: a reconnect the control plane refuses
// (401/403) must end the stream and surface the typed error — not spin
// silently forever.
func TestWatchStopsOnPermanentError(t *testing.T) {
	p := testPlatform(t)
	srv := New(p, Options{})

	var mu sync.Mutex
	conns := 0
	proxy := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v2/watch" {
			srv.Handler().ServeHTTP(w, r)
			return
		}
		mu.Lock()
		conns++
		first := conns == 1
		mu.Unlock()
		if first {
			rc := http.NewResponseController(w)
			srv.Handler().ServeHTTP(&killAfterFirstEvent{w: w, rc: rc}, r)
			return
		}
		// Every reconnect is now refused as if the cert were revoked.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusForbidden)
		_ = json.NewEncoder(w).Encode(&api.WireError{
			Code: api.CodeUnauthorized, Message: "subject revoked", Subject: "operator",
		})
	})
	ts := httptest.NewServer(proxy)
	defer ts.Close()

	id, err := p.CA.Issue("operator", pki.RoleService)
	if err != nil {
		t.Fatalf("issue: %v", err)
	}
	streamErr := make(chan error, 1)
	c := client.NewHTTP(ts.URL, client.WithIdentity(id),
		client.WithBackoff(5*time.Millisecond, 20*time.Millisecond),
		client.WithStreamErrorHandler(func(err error) { streamErr <- err }))
	t.Cleanup(func() { _ = c.Close() })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eventsCh, err := c.Watch(ctx, api.WatchSelector{Tenant: "acme"})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	// Drive one event through the doomed connection to trigger the kill
	// and the fatal reconnect.
	d, err := c.DeployAsync(ctx, spec("trigger", "acme/analytics:2.0.1", 100, 128))
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	if _, err := d.Await(ctx); err != nil {
		t.Fatalf("await: %v", err)
	}

	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-eventsCh:
			if !ok {
				// Stream ended; the typed error must have been surfaced.
				select {
				case err := <-streamErr:
					if !errors.Is(err, orchestrator.ErrUnauthorized) {
						t.Fatalf("stream error = %v, want ErrUnauthorized", err)
					}
					return
				case <-time.After(time.Second):
					t.Fatal("stream closed but no error surfaced")
				}
			}
		case <-deadline:
			t.Fatal("stream never terminated after permanent refusal")
		}
	}
}

// TestGracefulDrain verifies the shutdown sequence: in-flight async
// deploys finish, new ones are refused with the closed error.
func TestGracefulDrain(t *testing.T) {
	p := testPlatform(t)
	release := make(chan struct{})
	p.Cluster.RegisterAdmissionCtx("test-gate",
		func(ctx context.Context, s orchestrator.WorkloadSpec, _ *container.Image) error {
			if s.Name != "slow" {
				return nil
			}
			select {
			case <-release:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		})
	srv, _, c := testServer(t, p)
	ctx := context.Background()

	d, err := c.DeployAsync(ctx, spec("slow", "acme/analytics:2.0.1", 100, 128))
	if err != nil {
		t.Fatalf("deploy async: %v", err)
	}

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(ctx) }()

	// Drain must refuse new async deploys...
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := c.DeployAsync(ctx, spec("late", "acme/analytics:2.0.1", 100, 128))
		if errors.Is(err, events.ErrClosed) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("late deploy err = %v, want ErrClosed", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// ...while waiting for the in-flight one.
	select {
	case err := <-drained:
		t.Fatalf("drain returned before in-flight deploy finished: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if wl, err := d.Await(ctx); err != nil || wl == nil {
		t.Fatalf("in-flight deploy should have completed: %v", err)
	}
}

// TestAddNodeAndAttachONUOverWire exercises the provisioning endpoints.
func TestAddNodeAndAttachONUOverWire(t *testing.T) {
	p := testPlatform(t)
	_, _, c := testServer(t, p)
	ctx := context.Background()
	if err := c.AddNode(ctx, "", "olt-03", api.Resources{CPUMilli: 8000, MemoryMB: 16384}); err != nil {
		t.Fatalf("add node: %v", err)
	}
	if err := c.AttachONU(ctx, "olt-03", "onu-9001"); err != nil {
		t.Fatalf("attach onu: %v", err)
	}
	if err := c.AttachONU(ctx, "olt-ghost", "onu-9002"); !errors.Is(err, core.ErrNoNode) {
		t.Fatalf("ghost attach err = %v, want ErrNoNode", err)
	}
	if err := c.Cordon(ctx, "olt-03"); err != nil {
		t.Fatalf("cordon: %v", err)
	}
	nodes, err := c.Nodes(ctx, nil, "")
	if err != nil {
		t.Fatalf("nodes: %v", err)
	}
	var found bool
	for _, n := range nodes {
		if n.Node == "olt-03" {
			found = true
			if !n.Cordoned {
				t.Fatal("olt-03 not cordoned in fleet table")
			}
		}
	}
	if !found {
		t.Fatal("olt-03 missing from fleet table")
	}
}

// deadStore is a persist.Store whose Append can be flipped to fail,
// driving the platform into its non-durable degraded posture.
type deadStore struct {
	persist.Store
	fail atomic.Bool
}

func (d *deadStore) Append(r persist.Record) error {
	if d.fail.Load() {
		return errors.New("simulated disk failure")
	}
	return d.Store.Append(r)
}

// TestHealthzReportsDegradedStore: a failed store must be visible on
// the health surface — the daemon stays live (200) but the body flips
// to degraded with the persist error, so operators and readiness
// probes see that state is no longer durable.
func TestHealthzReportsDegradedStore(t *testing.T) {
	ds := &deadStore{Store: persist.Memory()}
	p, err := core.New(core.SecureConfig(), core.WithStore(ds))
	if err != nil {
		t.Fatalf("platform: %v", err)
	}
	t.Cleanup(p.Close)
	srv := New(p, Options{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	getHealth := func() map[string]string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v2/healthz")
		if err != nil {
			t.Fatalf("healthz: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz status = %d, want 200 (liveness stays up)", resp.StatusCode)
		}
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("healthz body: %v", err)
		}
		return body
	}

	if body := getHealth(); body["status"] != "ok" {
		t.Fatalf("healthy body = %v, want status ok", body)
	}

	ds.fail.Store(true)
	if _, err := p.AddEdgeNode("olt-01", orchestrator.Resources{CPUMilli: 1000, MemoryMB: 1024}); err != nil {
		t.Fatalf("node: %v", err)
	}

	body := getHealth()
	if body["status"] != "degraded" || body["persist"] == "" {
		t.Fatalf("degraded body = %v, want status degraded with persist error", body)
	}
}

// TestDeployBatchOverHTTP drives the batched wire path: one signed
// request, N specs, positional typed results — a rejection never fails
// its siblings, and every error crosses the wire with its taxonomy
// intact.
func TestDeployBatchOverHTTP(t *testing.T) {
	p := testPlatform(t)
	_, _, c := testServer(t, p)
	ctx := context.Background()

	bad := spec("batch-typo", "acme/analytics:2.0.1", 100, 128)
	bad.Isolation = "quantum" // fails wire-spec validation before the platform
	specs := []api.WorkloadSpec{
		spec("batch-web", "acme/analytics:2.0.1", 500, 512),
		spec("batch-mal", "freestuff/optimizer:latest", 100, 128),
		bad,
		spec("batch-api", "acme/analytics:2.0.1", 400, 256),
	}
	results, err := c.DeployBatch(ctx, specs)
	if err != nil {
		t.Fatalf("batch transport: %v", err)
	}
	if len(results) != len(specs) {
		t.Fatalf("got %d results for %d specs", len(results), len(specs))
	}
	for _, i := range []int{0, 3} {
		if results[i].Err != nil {
			t.Fatalf("results[%d].Err = %v, want placed", i, results[i].Err)
		}
		if results[i].Workload == nil || results[i].Workload.Node == "" {
			t.Fatalf("results[%d] placement incomplete: %+v", i, results[i].Workload)
		}
	}
	var ae *orchestrator.AdmissionError
	if !errors.As(results[1].Err, &ae) || !errors.Is(results[1].Err, orchestrator.ErrDenied) {
		t.Fatalf("results[1].Err = %v, want AdmissionError/ErrDenied", results[1].Err)
	}
	if results[1].Workload != nil {
		t.Fatalf("rejected element carries a workload: %+v", results[1].Workload)
	}
	if results[2].Err == nil || results[2].Workload != nil {
		t.Fatalf("results[2] = (%+v, %v), want spec-validation error only", results[2].Workload, results[2].Err)
	}

	// The placements are real: both workloads run on the platform.
	for _, name := range []string{"batch-web", "batch-api"} {
		if _, ok := p.Cluster.Workload(name); !ok {
			t.Fatalf("workload %s not on cluster", name)
		}
	}
}

// TestDeployBatchRejectsDegenerateRequests pins the request-shape
// guards: an empty batch and an oversized batch are refused whole with
// a typed bad-request, before any spec touches the platform.
func TestDeployBatchRejectsDegenerateRequests(t *testing.T) {
	p := testPlatform(t)
	_, ts, _ := testServer(t, p)
	id, err := p.CA.Issue("operator", pki.RoleService)
	if err != nil {
		t.Fatalf("issue: %v", err)
	}

	post := func(body any) *http.Response {
		t.Helper()
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v2/deploy/batch", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if err := api.SignRequest(req, id); err != nil {
			t.Fatalf("sign: %v", err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		return resp
	}

	for name, body := range map[string]any{
		"empty":     api.DeployBatchRequest{},
		"oversized": api.DeployBatchRequest{Specs: make([]api.WorkloadSpec, 1025)},
	} {
		resp := post(body)
		var we api.WireError
		if err := json.NewDecoder(resp.Body).Decode(&we); err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || we.Code != api.CodeBadRequest {
			t.Fatalf("%s: status=%d code=%s, want 400 %s", name, resp.StatusCode, we.Code, api.CodeBadRequest)
		}
	}
}

// sessionCounter wraps the server handler and tallies how requests
// authenticate: the Ed25519 handshake/bootstrap path (certificate
// header) vs the steady-state HMAC session path (session header).
type sessionCounter struct {
	h          http.Handler
	handshakes atomic.Int64
	certSigned atomic.Int64
	sessSigned atomic.Int64
}

func (sc *sessionCounter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v2/session" {
		sc.handshakes.Add(1)
	} else if r.Header.Get(api.HeaderSession) != "" {
		sc.sessSigned.Add(1)
	} else if r.Header.Get(api.HeaderCertificate) != "" {
		sc.certSigned.Add(1)
	}
	sc.h.ServeHTTP(w, r)
}

// TestSessionHandshakeMovesSteadyStateToHMAC checks the client performs
// ONE Ed25519 handshake and signs every subsequent request with the
// session secret — no certificate header, no per-request asymmetric
// verify — while the server still authenticates and authorizes each
// request as the same subject.
func TestSessionHandshakeMovesSteadyStateToHMAC(t *testing.T) {
	p := testPlatform(t)
	srv := New(p, Options{})
	t.Cleanup(srv.Close)
	counter := &sessionCounter{h: srv.Handler()}
	ts := httptest.NewServer(counter)
	t.Cleanup(ts.Close)
	id, err := p.CA.Issue("operator", pki.RoleService)
	if err != nil {
		t.Fatalf("issue: %v", err)
	}
	c := client.NewHTTP(ts.URL, client.WithIdentity(id))
	t.Cleanup(func() { _ = c.Close() })
	ctx := context.Background()

	if _, err := c.Deploy(ctx, spec("sess-web", "acme/analytics:2.0.1", 200, 256)); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Ledger(ctx); err != nil {
			t.Fatalf("ledger %d: %v", i, err)
		}
	}
	if got := counter.handshakes.Load(); got != 1 {
		t.Fatalf("handshakes = %d, want exactly 1", got)
	}
	if got := counter.sessSigned.Load(); got != 6 {
		t.Fatalf("session-signed requests = %d, want 6", got)
	}
	if got := counter.certSigned.Load(); got != 0 {
		t.Fatalf("cert-signed steady-state requests = %d, want 0", got)
	}
}

// swapHandler atomically swaps the backing handler mid-test — the
// moral equivalent of a server restart on the same address, which
// wipes the (in-memory) session table.
type swapHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	h.ServeHTTP(w, r)
}

func (s *swapHandler) swap(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

// TestSessionExpiryReKeysTransparently: when the server no longer
// recognizes the client's session (restart, eviction, expiry), the
// recoverable session-expired 401 must trigger one re-handshake and a
// retry — invisible to the caller.
func TestSessionExpiryReKeysTransparently(t *testing.T) {
	p := testPlatform(t)
	srvA := New(p, Options{})
	t.Cleanup(srvA.Close)
	sh := &swapHandler{h: srvA.Handler()}
	ts := httptest.NewServer(sh)
	t.Cleanup(ts.Close)
	id, err := p.CA.Issue("operator", pki.RoleService)
	if err != nil {
		t.Fatalf("issue: %v", err)
	}
	c := client.NewHTTP(ts.URL, client.WithIdentity(id))
	t.Cleanup(func() { _ = c.Close() })
	ctx := context.Background()

	if _, err := c.Ledger(ctx); err != nil {
		t.Fatalf("ledger before restart: %v", err)
	}

	// "Restart": fresh server, fresh verifier, empty session table. The
	// client still holds server A's session token.
	srvB := New(p, Options{})
	t.Cleanup(srvB.Close)
	sh.swap(srvB.Handler())

	if _, err := c.Ledger(ctx); err != nil {
		t.Fatalf("ledger after restart not transparent: %v", err)
	}
	if _, err := c.Deploy(ctx, spec("rekey-web", "acme/analytics:2.0.1", 200, 256)); err != nil {
		t.Fatalf("deploy after restart: %v", err)
	}
}

// TestSessionReKeyRacesInFlightRequests hammers the client from many
// goroutines while the server-side TTL is barely above the client's
// 2s early-refresh margin, so sessions expire (and re-key) constantly
// under load. Run with -race; every request must still succeed.
func TestSessionReKeyRacesInFlightRequests(t *testing.T) {
	p := testPlatform(t)
	srv := New(p, Options{SessionTTL: 2100 * time.Millisecond})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	id, err := p.CA.Issue("operator", pki.RoleService)
	if err != nil {
		t.Fatalf("issue: %v", err)
	}
	c := client.NewHTTP(ts.URL, client.WithIdentity(id))
	t.Cleanup(func() { _ = c.Close() })
	ctx := context.Background()

	const (
		workers  = 8
		requests = 30
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				if _, err := c.Ledger(ctx); err != nil {
					errs <- fmt.Errorf("worker %d request %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestDeployBatchRacesServerClose closes the server while batches are
// in flight (run with -race): requests may fail, but nothing may panic
// or race, and the platform the server does not own must stay usable.
func TestDeployBatchRacesServerClose(t *testing.T) {
	p := testPlatform(t)
	srv, _, c := testServer(t, p)
	ctx := context.Background()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				specs := []api.WorkloadSpec{
					spec(fmt.Sprintf("race-%d-%d-a", w, i), "acme/analytics:2.0.1", 100, 128),
					spec(fmt.Sprintf("race-%d-%d-b", w, i), "acme/analytics:2.0.1", 100, 128),
				}
				// Failures are fine mid-close; panics and races are not.
				_, _ = c.DeployBatch(ctx, specs)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		srv.Close()
	}()
	wg.Wait()

	if _, err := p.AddEdgeNode("olt-99", orchestrator.Resources{CPUMilli: 1000, MemoryMB: 1024}); err != nil {
		t.Fatalf("platform unusable after racing close: %v", err)
	}
}
