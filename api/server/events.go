package server

import (
	"context"
	"sync"

	"genio/api"
	"genio/internal/core"
)

// loggedEvent is one lifecycle event with its server-assigned stream
// id — the SSE `id:` field, monotonically increasing for the server's
// lifetime.
type loggedEvent struct {
	id uint64
	ev api.LifecycleEvent
}

// eventLog is the server's single source of watch events: one
// platform-wide lifecycle subscription assigns every event a stream id,
// keeps a bounded replay ring, and fans out to per-connection
// subscribers. A reconnecting watcher presents its Last-Event-ID and
// receives the ring's events after that id before going live — replay
// and live delivery draw from the same id sequence under one lock, so
// there is no gap or duplication between them. Events older than the
// ring (default 1024) are gone: a resume from that far back reports a
// gap to the consumer's filter-free view but still streams everything
// retained.
type eventLog struct {
	mu     sync.Mutex
	ring   []loggedEvent
	cap    int
	nextID uint64
	subs   map[*logSub]struct{}
	closed bool
}

// logSub is one watch connection's subscription: an unbounded queue
// (mirroring core.Platform.Watch's decoupling — a slow SSE write never
// stalls the fan-out) drained via notify.
type logSub struct {
	log    *eventLog
	queue  []loggedEvent
	notify chan struct{}
	closed bool
}

// newEventLog starts the log over the platform's full lifecycle
// stream. The feeding goroutine exits when the platform closes (the
// watch channel closes), closing every subscriber.
func newEventLog(p *core.Platform, capacity int) (*eventLog, error) {
	all, err := p.Watch(context.Background(), core.WatchSelector{})
	if err != nil {
		return nil, err
	}
	l := &eventLog{cap: capacity, nextID: 1, subs: make(map[*logSub]struct{})}
	go func() {
		for ev := range all {
			l.append(api.FromLifecycleEvent(ev))
		}
		l.close()
	}()
	return l, nil
}

func (l *eventLog) append(ev api.LifecycleEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	le := loggedEvent{id: l.nextID, ev: ev}
	l.nextID++
	l.ring = append(l.ring, le)
	if len(l.ring) > l.cap {
		l.ring = l.ring[len(l.ring)-l.cap:]
	}
	for sub := range l.subs {
		sub.queue = append(sub.queue, le)
		select {
		case sub.notify <- struct{}{}:
		default:
		}
	}
}

func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	for sub := range l.subs {
		sub.closed = true
		select {
		case sub.notify <- struct{}{}:
		default:
		}
	}
	l.subs = make(map[*logSub]struct{})
}

// latest returns the most recently assigned id (0 before any event).
func (l *eventLog) latest() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextID - 1
}

// subscribe registers a live subscriber and returns the retained
// events after afterID. Snapshot and registration happen under one
// lock, so an event is either in the replay slice or queued live —
// never both, never neither.
func (l *eventLog) subscribe(afterID uint64) (replay []loggedEvent, sub *logSub) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, le := range l.ring {
		if le.id > afterID {
			replay = append(replay, le)
		}
	}
	sub = &logSub{log: l, notify: make(chan struct{}, 1)}
	if l.closed {
		sub.closed = true
	} else {
		l.subs[sub] = struct{}{}
	}
	return replay, sub
}

// cancel removes the subscription.
func (s *logSub) cancel() {
	s.log.mu.Lock()
	defer s.log.mu.Unlock()
	delete(s.log.subs, s)
}

// next blocks for the next queued event; ok is false when the log
// closed (platform shutdown) or ctx ended and nothing is queued.
func (s *logSub) next(ctx context.Context) (loggedEvent, bool) {
	for {
		s.log.mu.Lock()
		if len(s.queue) > 0 {
			le := s.queue[0]
			s.queue = s.queue[1:]
			s.log.mu.Unlock()
			return le, true
		}
		closed := s.closed
		s.log.mu.Unlock()
		if closed {
			return loggedEvent{}, false
		}
		select {
		case <-s.notify:
		case <-ctx.Done():
			return loggedEvent{}, false
		}
	}
}
