package server

import (
	"bytes"
	"context"
	"encoding/json"
	"strconv"
	"sync"

	"genio/api"
	"genio/internal/core"
)

// loggedEvent is one lifecycle event with its server-assigned stream
// id — the SSE `id:` field, monotonically increasing for the server's
// lifetime — and the fully rendered SSE frame ("id: N\ndata: {...}\n\n")
// encoded ONCE at append time. Every subscriber (live and replay)
// writes the same shared bytes: a 100-subscriber watch costs one
// marshal per event, not 100. The frame is immutable after append, so
// sharing it across connections is race-free.
type loggedEvent struct {
	id    uint64
	ev    api.LifecycleEvent
	frame []byte
}

// framePool recycles the encoder scratch frames are built in; the
// retained frame itself is a single exact-size allocation per event
// (it lives as long as the replay ring, so it cannot be pooled).
var framePool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// renderFrame encodes one event into its SSE frame bytes.
func renderFrame(id uint64, ev api.LifecycleEvent) []byte {
	scratch := framePool.Get().(*bytes.Buffer)
	defer framePool.Put(scratch)
	scratch.Reset()
	scratch.WriteString("id: ")
	scratch.Write(strconv.AppendUint(scratch.AvailableBuffer(), id, 10))
	scratch.WriteString("\ndata: ")
	if err := json.NewEncoder(scratch).Encode(ev); err != nil {
		// LifecycleEvent is a flat struct of strings and ints; encoding
		// cannot fail. Keep the frame well-formed regardless.
		scratch.Reset()
		return nil
	}
	// json.Encoder already appended one \n; one more ends the SSE frame.
	scratch.WriteByte('\n')
	return append(make([]byte, 0, scratch.Len()), scratch.Bytes()...)
}

// eventLog is the server's single source of watch events: one
// platform-wide lifecycle subscription assigns every event a stream id,
// keeps a bounded replay ring, and fans out to per-connection
// subscribers. A reconnecting watcher presents its Last-Event-ID and
// receives the ring's events after that id before going live — replay
// and live delivery draw from the same id sequence under one lock, so
// there is no gap or duplication between them. Events older than the
// ring (default 1024) are gone: a resume from that far back reports a
// gap to the consumer's filter-free view but still streams everything
// retained.
//
// The ring is a true circular buffer: a fixed backing array overwritten
// in place. The earlier re-slicing form (ring = ring[len-cap:]) kept
// the evicted prefix reachable through the backing array until append
// happened to reallocate, roughly doubling retained memory at steady
// state.
type eventLog struct {
	mu     sync.Mutex
	buf    []loggedEvent // fixed-size circular buffer
	head   int           // index of the oldest retained event
	size   int           // retained count (<= len(buf))
	nextID uint64
	subs   map[*logSub]struct{}
	closed bool
}

// logSub is one watch connection's subscription: an unbounded queue
// (mirroring core.Platform.Watch's decoupling — a slow SSE write never
// stalls the fan-out) drained via notify.
type logSub struct {
	log    *eventLog
	queue  []loggedEvent
	notify chan struct{}
	closed bool
}

// newEventLog starts the log over the platform's full lifecycle
// stream, bounded by ctx — the server's lifetime, not the process's.
// The feeding goroutine exits (closing every subscriber) when ctx is
// cancelled or the platform closes; either way the platform-side Watch
// subscription is released with it.
func newEventLog(ctx context.Context, p *core.Platform, capacity int) (*eventLog, error) {
	all, err := p.Watch(ctx, core.WatchSelector{})
	if err != nil {
		return nil, err
	}
	l := &eventLog{buf: make([]loggedEvent, capacity), nextID: 1, subs: make(map[*logSub]struct{})}
	go func() {
		for ev := range all {
			l.append(api.FromLifecycleEvent(ev))
		}
		l.close()
	}()
	return l, nil
}

func (l *eventLog) append(ev api.LifecycleEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	le := loggedEvent{id: l.nextID, ev: ev}
	le.frame = renderFrame(le.id, ev)
	l.nextID++
	if l.size < len(l.buf) {
		l.buf[(l.head+l.size)%len(l.buf)] = le
		l.size++
	} else {
		// Full: overwrite the oldest slot in place. Nothing evicted stays
		// reachable — the slot's previous occupant is gone with this write.
		l.buf[l.head] = le
		l.head = (l.head + 1) % len(l.buf)
	}
	for sub := range l.subs {
		sub.queue = append(sub.queue, le)
		select {
		case sub.notify <- struct{}{}:
		default:
		}
	}
}

func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	for sub := range l.subs {
		sub.closed = true
		select {
		case sub.notify <- struct{}{}:
		default:
		}
	}
	l.subs = make(map[*logSub]struct{})
}

// latest returns the most recently assigned id (0 before any event).
func (l *eventLog) latest() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextID - 1
}

// subscribe registers a live subscriber and returns the retained
// events after afterID. Snapshot and registration happen under one
// lock, so an event is either in the replay slice or queued live —
// never both, never neither.
func (l *eventLog) subscribe(afterID uint64) (replay []loggedEvent, sub *logSub) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := 0; i < l.size; i++ {
		le := l.buf[(l.head+i)%len(l.buf)]
		if le.id > afterID {
			replay = append(replay, le)
		}
	}
	sub = &logSub{log: l, notify: make(chan struct{}, 1)}
	if l.closed {
		sub.closed = true
	} else {
		l.subs[sub] = struct{}{}
	}
	return replay, sub
}

// cancel removes the subscription.
func (s *logSub) cancel() {
	s.log.mu.Lock()
	defer s.log.mu.Unlock()
	delete(s.log.subs, s)
}

// next blocks for the next queued event; ok is false when the log
// closed (platform shutdown) or ctx ended and nothing is queued.
func (s *logSub) next(ctx context.Context) (loggedEvent, bool) {
	for {
		s.log.mu.Lock()
		if len(s.queue) > 0 {
			le := s.queue[0]
			s.queue = s.queue[1:]
			s.log.mu.Unlock()
			return le, true
		}
		closed := s.closed
		s.log.mu.Unlock()
		if closed {
			return loggedEvent{}, false
		}
		select {
		case <-s.notify:
		case <-ctx.Done():
			return loggedEvent{}, false
		}
	}
}
