package server

import (
	"fmt"
	"testing"
	"time"

	"genio/api"
	"genio/internal/orchestrator"
)

// TestServerCloseReleasesWatchFeeder: the event-log feeder goroutine and
// its platform-side Watch subscription must be tied to the SERVER's
// lifetime, not the process's. Before the fix the feeder was started on
// context.Background(), so closing a server while its platform lived
// leaked both until the platform itself shut down.
func TestServerCloseReleasesWatchFeeder(t *testing.T) {
	p := testPlatform(t)
	srv := New(p, Options{})
	log, err := srv.eventLog()
	if err != nil {
		t.Fatalf("eventLog: %v", err)
	}
	srv.Close()
	srv.Close() // idempotent
	// The feeder observes the cancelled context via its closing watch
	// channel and marks the log closed; poll for it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		log.mu.Lock()
		closed := log.closed
		log.mu.Unlock()
		if closed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("event log never closed after server Close — feeder goroutine leaked")
		}
		time.Sleep(time.Millisecond)
	}
	// The platform the server did not own is still fully alive.
	if _, err := p.AddEdgeNode("olt-09", orchestrator.Resources{CPUMilli: 1000, MemoryMB: 1024}); err != nil {
		t.Fatalf("platform must survive server close: %v", err)
	}
}

// TestEventLogBoundedRetention: the replay ring must retain at most its
// capacity and never pin evicted events. The earlier tail re-slicing
// kept evicted entries reachable through the shared backing array
// (roughly doubling retained memory); the circular buffer overwrites
// slots in place, so the backing array IS the retention bound.
func TestEventLogBoundedRetention(t *testing.T) {
	const capacity = 8
	l := &eventLog{buf: make([]loggedEvent, capacity), nextID: 1, subs: make(map[*logSub]struct{})}
	const total = 5 * capacity
	for i := 0; i < total; i++ {
		l.append(api.LifecycleEvent{Workload: fmt.Sprintf("wl-%03d", i)})
	}
	l.mu.Lock()
	bufLen, size := len(l.buf), l.size
	l.mu.Unlock()
	if bufLen != capacity || size != capacity {
		t.Fatalf("retention grew: len(buf)=%d size=%d, want %d", bufLen, size, capacity)
	}
	// Replay returns exactly the newest cap events, oldest first, with
	// contiguous ids.
	replay, sub := l.subscribe(0)
	defer sub.cancel()
	if len(replay) != capacity {
		t.Fatalf("replay returned %d events, want %d", len(replay), capacity)
	}
	for i, le := range replay {
		wantID := uint64(total - capacity + 1 + i)
		if le.id != wantID {
			t.Fatalf("replay[%d].id = %d, want %d", i, le.id, wantID)
		}
		if want := fmt.Sprintf("wl-%03d", total-capacity+i); le.ev.Workload != want {
			t.Fatalf("replay[%d].workload = %q, want %q", i, le.ev.Workload, want)
		}
	}
}
