package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"genio/api"
	"genio/internal/orchestrator"
)

// TestServerCloseReleasesWatchFeeder: the event-log feeder goroutine and
// its platform-side Watch subscription must be tied to the SERVER's
// lifetime, not the process's. Before the fix the feeder was started on
// context.Background(), so closing a server while its platform lived
// leaked both until the platform itself shut down.
func TestServerCloseReleasesWatchFeeder(t *testing.T) {
	p := testPlatform(t)
	srv := New(p, Options{})
	log, err := srv.eventLog()
	if err != nil {
		t.Fatalf("eventLog: %v", err)
	}
	srv.Close()
	srv.Close() // idempotent
	// The feeder observes the cancelled context via its closing watch
	// channel and marks the log closed; poll for it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		log.mu.Lock()
		closed := log.closed
		log.mu.Unlock()
		if closed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("event log never closed after server Close — feeder goroutine leaked")
		}
		time.Sleep(time.Millisecond)
	}
	// The platform the server did not own is still fully alive.
	if _, err := p.AddEdgeNode("olt-09", orchestrator.Resources{CPUMilli: 1000, MemoryMB: 1024}); err != nil {
		t.Fatalf("platform must survive server close: %v", err)
	}
}

// TestEventLogBoundedRetention: the replay ring must retain at most its
// capacity and never pin evicted events. The earlier tail re-slicing
// kept evicted entries reachable through the shared backing array
// (roughly doubling retained memory); the circular buffer overwrites
// slots in place, so the backing array IS the retention bound.
func TestEventLogBoundedRetention(t *testing.T) {
	const capacity = 8
	l := &eventLog{buf: make([]loggedEvent, capacity), nextID: 1, subs: make(map[*logSub]struct{})}
	const total = 5 * capacity
	for i := 0; i < total; i++ {
		l.append(api.LifecycleEvent{Workload: fmt.Sprintf("wl-%03d", i)})
	}
	l.mu.Lock()
	bufLen, size := len(l.buf), l.size
	l.mu.Unlock()
	if bufLen != capacity || size != capacity {
		t.Fatalf("retention grew: len(buf)=%d size=%d, want %d", bufLen, size, capacity)
	}
	// Replay returns exactly the newest cap events, oldest first, with
	// contiguous ids.
	replay, sub := l.subscribe(0)
	defer sub.cancel()
	if len(replay) != capacity {
		t.Fatalf("replay returned %d events, want %d", len(replay), capacity)
	}
	for i, le := range replay {
		wantID := uint64(total - capacity + 1 + i)
		if le.id != wantID {
			t.Fatalf("replay[%d].id = %d, want %d", i, le.id, wantID)
		}
		if want := fmt.Sprintf("wl-%03d", total-capacity+i); le.ev.Workload != want {
			t.Fatalf("replay[%d].workload = %q, want %q", i, le.ev.Workload, want)
		}
	}
}

// TestRenderFrameMatchesSSEWire pins the frame layout handleWatch used
// to assemble per-connection: "id: N\ndata: <json>\n\n". Encode-once
// must not change a single byte on the wire.
func TestRenderFrameMatchesSSEWire(t *testing.T) {
	ev := api.LifecycleEvent{Workload: "edge-dns", Tenant: "acme", State: "placed", Node: "olt-01"}
	frame := renderFrame(42, ev)
	data, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("id: 42\ndata: %s\n\n", data)
	if string(frame) != want {
		t.Fatalf("frame = %q, want %q", frame, want)
	}
}

// TestWatchFanoutEncodesOnce is the alloc-pinning regression for the
// encode-once fan-out: appending one event must cost O(1) allocations
// regardless of subscriber count — one retained frame shared by every
// subscriber, not one marshal per connection. Before the fix each of
// the N watch connections marshalled the event independently.
func TestWatchFanoutEncodesOnce(t *testing.T) {
	const subscribers = 100
	l := &eventLog{buf: make([]loggedEvent, 256), nextID: 1, subs: make(map[*logSub]struct{})}
	subs := make([]*logSub, subscribers)
	for i := range subs {
		_, sub := l.subscribe(0)
		// Pre-grow the queue so append never reallocates mid-measurement;
		// queue growth is amortized-O(1) and not what this test pins.
		sub.queue = make([]loggedEvent, 0, 4096)
		subs[i] = sub
	}
	ev := api.LifecycleEvent{Workload: "edge-dns", Tenant: "acme", State: "placed", Node: "olt-01"}
	l.append(ev) // warm the frame pool's scratch buffer

	allocs := testing.AllocsPerRun(100, func() { l.append(ev) })
	// One retained frame + encoder scratch: a handful of allocations,
	// and critically NOT proportional to the 100 subscribers.
	if allocs > 8 {
		t.Fatalf("append allocated %.1f objects across %d subscribers, want O(1) (<= 8)", allocs, subscribers)
	}

	// Every subscriber's queued copy shares the SAME frame bytes.
	l.mu.Lock()
	defer l.mu.Unlock()
	first := subs[0].queue[len(subs[0].queue)-1].frame
	if len(first) == 0 {
		t.Fatal("queued event has no rendered frame")
	}
	for i, sub := range subs {
		got := sub.queue[len(sub.queue)-1].frame
		if &got[0] != &first[0] {
			t.Fatalf("subscriber %d holds a distinct frame copy — event was encoded more than once", i)
		}
	}
}

// TestWatchFanoutPublishStorm drives 100 live subscribers through a
// concurrent publish storm (run under -race in CI): every subscriber
// must observe every event, in id order, with an intact frame.
func TestWatchFanoutPublishStorm(t *testing.T) {
	const (
		subscribers = 100
		events      = 200
	)
	l := &eventLog{buf: make([]loggedEvent, events), nextID: 1, subs: make(map[*logSub]struct{})}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	errs := make(chan error, subscribers)
	for i := 0; i < subscribers; i++ {
		_, sub := l.subscribe(0)
		wg.Add(1)
		go func(i int, sub *logSub) {
			defer wg.Done()
			defer sub.cancel()
			var lastID uint64
			for n := 0; n < events; n++ {
				le, ok := sub.next(ctx)
				if !ok {
					errs <- fmt.Errorf("subscriber %d: stream ended after %d/%d events", i, n, events)
					return
				}
				if le.id != lastID+1 {
					errs <- fmt.Errorf("subscriber %d: id %d after %d", i, le.id, lastID)
					return
				}
				lastID = le.id
				if want := fmt.Sprintf("id: %d\ndata: ", le.id); !bytes.HasPrefix(le.frame, []byte(want)) {
					errs <- fmt.Errorf("subscriber %d: malformed frame %q", i, le.frame)
					return
				}
			}
		}(i, sub)
	}
	for n := 0; n < events; n++ {
		l.append(api.LifecycleEvent{Workload: fmt.Sprintf("wl-%03d", n), State: "placed"})
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
