// Package server exposes a core.Platform as the networked control
// plane: the full v2 surface (deploy sync/async, lifecycle watch, node
// lifecycle, far-edge attach, incident/ledger reads) over HTTP, speaking
// the wire-neutral genio/api contract. cmd/geniod wraps this package in
// a daemon; tests and the simulator host it in-process.
package server

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"genio/api"
	"genio/internal/core"
	"genio/internal/federation"
	"genio/internal/orchestrator"
	"genio/internal/orchestrator/scheduler"
	"genio/internal/pki"
	"genio/internal/rbac"
)

// Options configures a Server.
type Options struct {
	// CA verifies client certificates. Nil uses the platform's own CA —
	// the common case: geniod and its clients share the cluster trust
	// root.
	CA *pki.CA
	// AllowAnonymous admits requests without a certificate, taking the
	// subject from the X-Genio-Subject header ("anonymous" when absent).
	// This is the legacy posture's insecure default; the secure posture
	// leaves it off and rejects unauthenticated requests with 401.
	AllowAnonymous bool
	// TerminalRetention caps how many completed async deployments stay
	// pollable. Beyond the cap the oldest terminal entries are evicted,
	// so a long-running daemon's registry is bounded by its in-flight
	// load plus this constant. 0 means the default (512).
	TerminalRetention int
	// WatchReplayBuffer is how many lifecycle events the SSE watch
	// endpoint retains for Last-Event-ID resume. A reconnect asking for
	// events older than the buffer gets only what is retained. 0 means
	// the default (1024).
	WatchReplayBuffer int
	// SessionTTL is how long POST /v2/session grants live before the
	// client must re-key over Ed25519. 0 means api.DefaultSessionTTL;
	// tests use tiny values to exercise re-keying.
	SessionTTL time.Duration
}

const (
	defaultTerminalRetention = 512
	defaultWatchReplay       = 1024
)

// asyncDeployment is one registry entry: the server-side future plus
// the subject that created it, which gates status/await/cancel.
type asyncDeployment struct {
	d     *core.Deployment
	owner string
}

// Server serves the control-plane v2 surface for one platform.
type Server struct {
	p        *core.Platform
	opts     Options
	mux      *http.ServeMux
	verifier *api.Verifier

	// Async deployment registry: the server-side ends of the Deployment
	// futures handed out by POST /v2/deployments/async. Terminal entries
	// are retained (bounded by Options.TerminalRetention, oldest
	// evicted first) so clients can poll after completion.
	mu          sync.Mutex
	deployments map[string]*asyncDeployment
	terminal    []string // eviction order: ids in completion order

	// events is the SSE replay log, started lazily on the first watch so
	// watch-free servers (benches, most tests) pay nothing. Once started
	// it lives until the SERVER closes (ctx), not the platform: a server
	// discarded while its platform lives must not leak the feeder
	// goroutine and its platform-side Watch subscription.
	ctx        context.Context
	cancel     context.CancelFunc
	eventsOnce sync.Once
	events     *eventLog
	eventsErr  error

	// inflight tracks async deployments for graceful shutdown; draining
	// refuses new ones once shutdown begins. Both are guarded by mu so a
	// late deploy can never Add after Drain has begun Waiting on a
	// settled group.
	inflight sync.WaitGroup
	draining bool
}

// New builds a server over the platform.
func New(p *core.Platform, opts Options) *Server {
	s := &Server{p: p, opts: opts, deployments: make(map[string]*asyncDeployment)}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	if s.opts.CA == nil {
		s.opts.CA = p.CA
	}
	if s.opts.TerminalRetention <= 0 {
		s.opts.TerminalRetention = defaultTerminalRetention
	}
	if s.opts.WatchReplayBuffer <= 0 {
		s.opts.WatchReplayBuffer = defaultWatchReplay
	}
	var vopts []api.VerifierOption
	if s.opts.SessionTTL > 0 {
		vopts = append(vopts, api.WithSessionTTL(s.opts.SessionTTL))
	}
	s.verifier = api.NewVerifier(s.opts.CA, vopts...)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /v2/healthz", s.handleHealthz)
	s.handle("POST /v2/session", s.handleSession)
	s.handle("POST /v2/deployments", s.handleDeploy)
	s.handle("POST /v2/deploy/batch", s.handleDeployBatch)
	s.handle("POST /v2/deployments/async", s.handleDeployAsync)
	s.handle("GET /v2/deployments/{id}", s.handleDeploymentStatus)
	s.handle("GET /v2/deployments/{id}/await", s.handleDeploymentAwait)
	s.handle("DELETE /v2/deployments/{id}", s.handleDeploymentCancel)
	s.handle("GET /v2/watch", s.handleWatch)
	s.handle("GET /v2/nodes", s.handleNodes)
	s.handle("POST /v2/nodes", s.handleAddNode)
	s.handle("POST /v2/nodes/{name}/cordon", s.handleCordon)
	s.handle("POST /v2/nodes/{name}/uncordon", s.handleUncordon)
	s.handle("POST /v2/nodes/{name}/drain", s.handleDrain)
	s.handle("POST /v2/nodes/{name}/fail", s.handleFail)
	s.handle("POST /v2/nodes/{name}/onus", s.handleAttachONU)
	s.handle("GET /v2/incidents", s.handleIncidents)
	s.handle("GET /v2/ledger", s.handleLedger)
	s.handle("GET /v2/slots", s.handleSlots)
	s.handle("GET /v2/clusters", s.handleClusters)
	s.handle("POST /v2/clusters/{name}/evacuate", s.handleEvacuate)
	return s
}

// Handler returns the HTTP handler serving the v2 surface.
func (s *Server) Handler() http.Handler { return s.mux }

// handle registers an authenticated route: the handler receives the
// verified subject alongside the request.
func (s *Server) handle(pattern string, fn func(w http.ResponseWriter, r *http.Request, subject string)) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		subject, err := s.authenticate(r)
		if err != nil {
			code := api.CodeUnauthenticated
			if errors.Is(err, api.ErrSessionExpired) {
				// Recoverable: the client re-keys over Ed25519 and retries.
				code = api.CodeSessionExpired
			}
			writeWireError(w, &api.WireError{Code: code, Message: err.Error()})
			return
		}
		fn(w, r, subject)
	})
}

// authenticate establishes the caller's subject. A presented
// certificate is always verified (a bad one is never silently demoted
// to anonymous); only a request with no certificate at all can take the
// anonymous path, and only when the server allows it.
func (s *Server) authenticate(r *http.Request) (string, error) {
	if r.Header.Get(api.HeaderCertificate) != "" || !s.opts.AllowAnonymous {
		return s.verifier.Verify(r)
	}
	if subject := r.Header.Get(api.HeaderSubject); subject != "" {
		return subject, nil
	}
	return "anonymous", nil
}

// authorize runs the RBAC check non-deploy operations need (deploys
// carry their own check inside the pipeline). Namespace "" means
// cluster-scoped.
func (s *Server) authorize(subject, verb, resource, namespace string) error {
	if !s.p.Config.RBACEnabled {
		return nil
	}
	d := s.p.RBAC.Check(subject, rbac.Permission{Verb: verb, Resource: resource, Namespace: namespace})
	if !d.Allowed {
		return &orchestrator.UnauthorizedError{Subject: subject, Verb: verb, Tenant: resource}
	}
	return nil
}

// codecBuf is one pooled encode/decode scratch: a buffer plus a JSON
// encoder bound to it, so the wire hot path reuses both the byte
// storage and the encoder's internal state instead of allocating per
// response.
type codecBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

// maxPooledCodecBuf keeps a one-off giant response (a huge nodes table)
// from pinning its buffer in the pool forever.
const maxPooledCodecBuf = 1 << 20

var codecPool = sync.Pool{New: func() any {
	cb := &codecBuf{}
	cb.enc = json.NewEncoder(&cb.buf)
	return cb
}}

func getCodecBuf() *codecBuf {
	cb := codecPool.Get().(*codecBuf)
	cb.buf.Reset()
	return cb
}

func putCodecBuf(cb *codecBuf) {
	if cb.buf.Cap() <= maxPooledCodecBuf {
		codecPool.Put(cb)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	cb := getCodecBuf()
	defer putCodecBuf(cb)
	if err := cb.enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(cb.buf.Bytes())
}

func writeWireError(w http.ResponseWriter, we *api.WireError) {
	writeJSON(w, we.Status(), we)
}

func writeError(w http.ResponseWriter, err error) {
	writeWireError(w, api.Encode(err))
}

func readBody[T any](w http.ResponseWriter, r *http.Request) (T, bool) {
	var v T
	cb := getCodecBuf()
	defer putCodecBuf(cb)
	if _, err := io.Copy(&cb.buf, r.Body); err != nil {
		writeWireError(w, &api.WireError{Code: api.CodeBadRequest, Message: "bad request body: " + err.Error()})
		return v, false
	}
	if err := json.Unmarshal(cb.buf.Bytes(), &v); err != nil {
		writeWireError(w, &api.WireError{Code: api.CodeBadRequest, Message: "bad request body: " + err.Error()})
		return v, false
	}
	return v, true
}

// handleHealthz reports liveness — always 200, so probes don't
// restart-loop the daemon — but a failed persistence store degrades the
// body: operators (and readiness checks keying on the status field)
// must see that the control plane is running non-durable.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if err := s.p.StoreErr(); err != nil {
		writeJSON(w, http.StatusOK, map[string]string{"status": "degraded", "persist": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleDeploy runs a synchronous deploy on the request context: a
// client that disconnects mid-pipeline cancels the deployment, and the
// platform rolls it back (cancelled-never-placed).
func (s *Server) handleDeploy(w http.ResponseWriter, r *http.Request, subject string) {
	req, ok := readBody[api.DeployRequest](w, r)
	if !ok {
		return
	}
	spec, err := req.Spec.ToOrchestrator()
	if err != nil {
		writeWireError(w, &api.WireError{Code: api.CodeBadRequest, Message: err.Error()})
		return
	}
	wl, err := s.p.DeployContext(r.Context(), subject, spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, api.FromWorkload(wl))
}

// handleSession is the Ed25519→HMAC handshake: the request itself must
// be certificate-signed (the route's authenticate already verified it),
// and the response trades that proof for a short-lived symmetric
// session bound to the certificate's subject. A session-authenticated
// request cannot mint another session — re-keying always goes back
// through the asymmetric proof, so a stolen session secret's usefulness
// ends at its TTL.
func (s *Server) handleSession(w http.ResponseWriter, r *http.Request, subject string) {
	if r.Header.Get(api.HeaderSession) != "" {
		writeWireError(w, &api.WireError{Code: api.CodeBadRequest,
			Message: "session handshake must be certificate-signed, not session-authenticated"})
		return
	}
	if r.Header.Get(api.HeaderCertificate) == "" {
		writeWireError(w, &api.WireError{Code: api.CodeUnauthenticated,
			Message: "session handshake requires a certificate"})
		return
	}
	grant, err := s.verifier.IssueSession(subject)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, grant)
}

// maxBatchSpecs bounds one batch request; the signed-body limit bounds
// bytes, this bounds fan-out.
const maxBatchSpecs = 1024

// handleDeployBatch admits N specs from one signed request through the
// platform's in-process batch fan-out. Results are positional, each
// carrying either the placed workload or the full typed wire error —
// the HTTP status only reports transport/decode outcome. Runs on the
// request context: a client disconnect cancels every in-flight element
// (already-placed ones stay placed), same as the single-deploy path.
func (s *Server) handleDeployBatch(w http.ResponseWriter, r *http.Request, subject string) {
	req, ok := readBody[api.DeployBatchRequest](w, r)
	if !ok {
		return
	}
	if len(req.Specs) == 0 {
		writeWireError(w, &api.WireError{Code: api.CodeBadRequest, Message: "empty batch"})
		return
	}
	if len(req.Specs) > maxBatchSpecs {
		writeWireError(w, &api.WireError{Code: api.CodeBadRequest,
			Message: fmt.Sprintf("batch of %d exceeds %d-spec limit", len(req.Specs), maxBatchSpecs)})
		return
	}
	results := make([]api.DeployBatchResult, len(req.Specs))
	specs := make([]orchestrator.WorkloadSpec, 0, len(req.Specs))
	indices := make([]int, 0, len(req.Specs))
	for i, ws := range req.Specs {
		spec, err := ws.ToOrchestrator()
		if err != nil {
			results[i].Error = &api.WireError{Code: api.CodeBadRequest, Message: err.Error()}
			continue
		}
		specs = append(specs, spec)
		indices = append(indices, i)
	}
	if len(specs) > 0 {
		wls, errs := s.p.DeployBatchContext(r.Context(), subject, specs)
		for j, i := range indices {
			if errs[j] != nil {
				results[i].Error = api.Encode(errs[j])
			} else {
				results[i].Workload = api.FromWorkload(wls[j])
			}
		}
	}
	writeJSON(w, http.StatusOK, api.DeployBatchResponse{Results: results})
}

// handleDeployAsync launches a deployment future and returns its ID
// plus poll/await endpoints. The future runs on a server-side context,
// not the request's: it outlives this POST by design and is cancelled
// via DELETE or server shutdown.
func (s *Server) handleDeployAsync(w http.ResponseWriter, r *http.Request, subject string) {
	req, ok := readBody[api.DeployRequest](w, r)
	if !ok {
		return
	}
	spec, err := req.Spec.ToOrchestrator()
	if err != nil {
		writeWireError(w, &api.WireError{Code: api.CodeBadRequest, Message: err.Error()})
		return
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, &core.ClosedError{Op: "deploy"})
		return
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	d, err := s.p.DeployAsync(context.Background(), subject, spec)
	if err != nil {
		s.inflight.Done()
		writeError(w, err)
		return
	}
	id := newDeploymentID()
	s.mu.Lock()
	s.deployments[id] = &asyncDeployment{d: d, owner: subject}
	s.mu.Unlock()
	go func() {
		defer s.inflight.Done()
		<-d.Done()
		s.retire(id)
	}()
	writeJSON(w, http.StatusAccepted, api.DeploymentRef{
		ID:    id,
		Poll:  "/v2/deployments/" + id,
		Await: "/v2/deployments/" + id + "/await",
	})
}

// newDeploymentID mints an unguessable deployment id: knowing your own
// ids must not let you address anyone else's.
func newDeploymentID() string {
	var raw [12]byte
	if _, err := rand.Read(raw[:]); err != nil {
		// crypto/rand never fails on supported platforms; refusing to
		// mint a weaker id is the safe degradation.
		panic(fmt.Sprintf("server: deployment id: %v", err))
	}
	return "d-" + hex.EncodeToString(raw[:])
}

// retire records a deployment as terminal and evicts the oldest
// terminal entries beyond the retention cap, keeping the registry
// bounded on long-running daemons.
func (s *Server) retire(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.deployments[id]; !ok {
		return
	}
	s.terminal = append(s.terminal, id)
	for len(s.terminal) > s.opts.TerminalRetention {
		delete(s.deployments, s.terminal[0])
		s.terminal = s.terminal[1:]
	}
}

// deployment resolves the path's deployment id and enforces access: the
// creating subject manages its own deployments; anyone else needs the
// RBAC permission for the deployment's tenant.
func (s *Server) deployment(w http.ResponseWriter, r *http.Request, subject, verb string) (*core.Deployment, string, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	e := s.deployments[id]
	s.mu.Unlock()
	if e == nil {
		writeWireError(w, &api.WireError{Code: api.CodeBadRequest, Message: "unknown deployment " + id})
		return nil, id, false
	}
	if e.owner != subject {
		if err := s.authorize(subject, verb, "deployments", e.d.Spec().Tenant); err != nil {
			writeError(w, err)
			return nil, id, false
		}
	}
	return e.d, id, true
}

// status snapshots a deployment future into its wire form.
func deploymentStatus(id string, d *core.Deployment) api.DeploymentStatus {
	st := api.DeploymentStatus{
		ID:       id,
		Workload: d.Spec().Name,
		Tenant:   d.Spec().Tenant,
		State:    string(d.State()),
	}
	if core.DeployState(st.State).Terminal() {
		wl, err := d.Result()
		st.Placed = api.FromWorkload(wl)
		st.Error = api.Encode(err)
	}
	return st
}

func (s *Server) handleDeploymentStatus(w http.ResponseWriter, r *http.Request, subject string) {
	d, id, ok := s.deployment(w, r, subject, "get")
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, deploymentStatus(id, d))
}

// handleDeploymentAwait long-polls the future: it responds when the
// deployment reaches a terminal state or the request context dies.
func (s *Server) handleDeploymentAwait(w http.ResponseWriter, r *http.Request, subject string) {
	d, id, ok := s.deployment(w, r, subject, "get")
	if !ok {
		return
	}
	select {
	case <-d.Done():
		writeJSON(w, http.StatusOK, deploymentStatus(id, d))
	case <-r.Context().Done():
		// Client gave up; the deployment itself keeps running.
	}
}

// handleDeploymentCancel cancels the future. The response reports the
// state after the cancel took effect (the pipeline stops at its next
// cancellation point, so the terminal state lands asynchronously).
func (s *Server) handleDeploymentCancel(w http.ResponseWriter, r *http.Request, subject string) {
	d, id, ok := s.deployment(w, r, subject, "delete")
	if !ok {
		return
	}
	d.Cancel()
	writeJSON(w, http.StatusAccepted, deploymentStatus(id, d))
}

// eventLog lazily starts the SSE replay log; the first watch request
// pays the one platform-wide subscription, every later watch shares it
// (and its id sequence, which Last-Event-ID resume depends on).
func (s *Server) eventLog() (*eventLog, error) {
	s.eventsOnce.Do(func() {
		s.events, s.eventsErr = newEventLog(s.ctx, s.p, s.opts.WatchReplayBuffer)
	})
	return s.events, s.eventsErr
}

// handleWatch streams deploy.lifecycle transitions as server-sent
// events, filtered by the selector in the query string (tenant,
// workload, terminal=true). Every event carries an `id:` field; a
// reconnecting client that presents Last-Event-ID receives the
// retained events after that id (bounded by Options.WatchReplayBuffer
// — older events are lost and the resume continues from what remains)
// before going live. The stream runs until the client disconnects or
// the platform closes.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request, subject string) {
	if err := s.authorize(subject, "watch", "deployments", r.URL.Query().Get("tenant")); err != nil {
		writeError(w, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeWireError(w, &api.WireError{Code: api.CodeInternal, Message: "streaming unsupported"})
		return
	}
	q := r.URL.Query()
	sel := api.WatchSelector{
		Tenant:       q.Get("tenant"),
		Workload:     q.Get("workload"),
		TerminalOnly: q.Get("terminal") == "true",
	}
	log, err := s.eventLog()
	if err != nil {
		writeError(w, err)
		return
	}
	// No Last-Event-ID means a fresh watch: live events only, exactly
	// like a first connection.
	afterID := log.latest()
	if raw := r.Header.Get("Last-Event-ID"); raw != "" {
		if v, err := strconv.ParseUint(raw, 10, 64); err == nil {
			afterID = v
		}
	}
	replay, sub := log.subscribe(afterID)
	defer sub.cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	// Frames are rendered once at append time (see loggedEvent); every
	// subscriber writes the same shared bytes, so this loop does zero
	// marshalling no matter how many watchers are connected.
	send := func(le loggedEvent) bool {
		if le.frame == nil || !sel.Matches(le.ev) {
			return true
		}
		if _, err := w.Write(le.frame); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	for _, le := range replay {
		if !send(le) {
			return
		}
	}
	for {
		le, ok := sub.next(r.Context())
		if !ok {
			return
		}
		if !send(le) {
			return
		}
	}
}

// clusterRef is one placement domain a fleet read iterates: the cluster
// plus the label its rows carry on the wire (empty on single-cluster
// servers, so pre-federation output is byte-identical).
type clusterRef struct {
	label string
	c     *orchestrator.Cluster
}

// clusterSelection resolves the ?cluster= query parameter: "" means
// every placement domain (all federation members, or the single default
// cluster), a name selects one member.
func (s *Server) clusterSelection(name string) ([]clusterRef, error) {
	if s.p.Federation == nil {
		if name != "" && name != s.p.Cluster.Name {
			return nil, &federation.ClusterNotFoundError{Cluster: name}
		}
		return []clusterRef{{c: s.p.Cluster}}, nil
	}
	if name != "" {
		c, err := s.p.ClusterByName(name)
		if err != nil {
			return nil, err
		}
		return []clusterRef{{label: c.Name, c: c}}, nil
	}
	members := s.p.Federation.Clusters()
	out := make([]clusterRef, 0, len(members))
	for _, m := range members {
		if c, ok := s.p.Federation.Cluster(m.Name); ok {
			out = append(out, clusterRef{label: m.Name, c: c})
		}
	}
	return out, nil
}

// handleNodes returns the fleet table. Query params probeCpu/probeMem
// add the scheduler's per-strategy explanation for that demand — the
// wire form of `genioctl nodes -top`. ?cluster= narrows a federated
// fleet to one member; the default is every member, each row labeled
// with its cluster.
func (s *Server) handleNodes(w http.ResponseWriter, r *http.Request, subject string) {
	if err := s.authorize(subject, "get", "nodes", ""); err != nil {
		writeError(w, err)
		return
	}
	q := r.URL.Query()
	clusters, err := s.clusterSelection(q.Get("cluster"))
	if err != nil {
		writeError(w, err)
		return
	}
	probing := q.Get("probeCpu") != "" || q.Get("probeMem") != ""
	cpu, _ := strconv.Atoi(q.Get("probeCpu"))
	mem, _ := strconv.Atoi(q.Get("probeMem"))
	var out []api.NodeStatus
	for _, cl := range clusters {
		util := cl.c.Utilization()
		rows := make([]api.NodeStatus, 0, len(util))
		for _, u := range util {
			ns := api.FromUtilization(u)
			ns.Cluster = cl.label
			rows = append(rows, ns)
		}
		if probing {
			cands := make([]scheduler.Candidate, 0, len(util))
			for _, u := range util {
				cands = append(cands, scheduler.Candidate{
					Node: u.Node, Capacity: u.Capacity, Used: u.Used,
					Cordoned: u.Cordoned, SharedVMs: u.SharedVMs,
				})
			}
			probe := scheduler.Request{Workload: "probe", Tenant: "probe",
				Demand: orchestrator.Resources{CPUMilli: cpu, MemoryMB: mem}}
			eng := cl.c.Scheduler()
			probe.Strategy = scheduler.StrategyBinpack
			binpack := eng.Explain(&probe, cands)
			probe.Strategy = scheduler.StrategySpread
			spread := eng.Explain(&probe, cands)
			for i := range rows {
				if binpack[i].Feasible {
					v := binpack[i].Score
					rows[i].Binpack = &v
				}
				if spread[i].Feasible {
					v := spread[i].Score
					rows[i].Spread = &v
				}
			}
		}
		out = append(out, rows...)
	}
	if out == nil {
		out = []api.NodeStatus{}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleAddNode(w http.ResponseWriter, r *http.Request, subject string) {
	if err := s.authorize(subject, "create", "nodes", ""); err != nil {
		writeError(w, err)
		return
	}
	req, ok := readBody[api.AddNodeRequest](w, r)
	if !ok {
		return
	}
	if req.Name == "" {
		writeWireError(w, &api.WireError{Code: api.CodeBadRequest, Message: "node name required"})
		return
	}
	if _, err := s.p.AddEdgeNodeInContext(r.Context(), req.Cluster, req.Name, orchestrator.Resources{
		CPUMilli: req.Capacity.CPUMilli, MemoryMB: req.Capacity.MemoryMB,
	}); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, api.NodeStatus{
		Node:     req.Name,
		Cluster:  req.Cluster,
		Capacity: req.Capacity,
	})
}

func (s *Server) handleCordon(w http.ResponseWriter, r *http.Request, subject string) {
	if err := s.authorize(subject, "update", "nodes", ""); err != nil {
		writeError(w, err)
		return
	}
	if err := s.p.Cordon(r.PathValue("name")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"node": r.PathValue("name"), "state": "cordoned"})
}

func (s *Server) handleUncordon(w http.ResponseWriter, r *http.Request, subject string) {
	if err := s.authorize(subject, "update", "nodes", ""); err != nil {
		writeError(w, err)
		return
	}
	if err := s.p.Uncordon(r.PathValue("name")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"node": r.PathValue("name"), "state": "ready"})
}

// handleDrain live-migrates the node's workloads on the request
// context: a client disconnect (or timeout) cancels the drain at the
// next migration boundary and the platform rolls the cordon back.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request, subject string) {
	if err := s.authorize(subject, "update", "nodes", ""); err != nil {
		writeError(w, err)
		return
	}
	var migrations []api.Migration
	res, err := s.p.DrainObserved(r.Context(), r.PathValue("name"), func(ev orchestrator.DrainEvent) {
		if ev.Phase == orchestrator.DrainMigrated {
			migrations = append(migrations, api.Migration{
				Workload: ev.Workload, Target: ev.Target, Score: ev.Score,
			})
		}
	})
	if res == nil {
		// Refused outright (unknown node, platform closed): no drain ever
		// started, so there is no partial progress to report.
		writeError(w, err)
		return
	}
	out := api.FromDrainResult(res)
	out.Migrations = migrations
	// A drain that stopped early (cancelled, blocked) still made
	// progress; ship the partial result with the typed error inside it
	// rather than discarding one half.
	out.Error = api.Encode(err)
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleFail(w http.ResponseWriter, r *http.Request, subject string) {
	if err := s.authorize(subject, "update", "nodes", ""); err != nil {
		writeError(w, err)
		return
	}
	res, err := s.p.FailNode(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.FromFailoverResult(res))
}

func (s *Server) handleAttachONU(w http.ResponseWriter, r *http.Request, subject string) {
	if err := s.authorize(subject, "create", "onus", ""); err != nil {
		writeError(w, err)
		return
	}
	req, ok := readBody[api.AttachONURequest](w, r)
	if !ok {
		return
	}
	if _, err := s.p.AttachONUContext(r.Context(), r.PathValue("name"), req.Serial); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"node": r.PathValue("name"), "serial": req.Serial})
}

func (s *Server) handleIncidents(w http.ResponseWriter, r *http.Request, subject string) {
	if err := s.authorize(subject, "get", "incidents", ""); err != nil {
		writeError(w, err)
		return
	}
	counts := s.p.IncidentCounts()
	if counts == nil {
		counts = map[string]int{}
	}
	writeJSON(w, http.StatusOK, api.IncidentCounts(counts))
}

func (s *Server) handleLedger(w http.ResponseWriter, r *http.Request, subject string) {
	if err := s.authorize(subject, "get", "events", ""); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.FromStats(s.p.Metrics()))
}

// handleSlots serves the warm-slot pool table; it is fleet state, so it
// shares the nodes read permission. On a federated server the flat
// fields aggregate every member (or the one ?cluster= selects) and the
// Clusters list carries the per-member breakdown.
func (s *Server) handleSlots(w http.ResponseWriter, r *http.Request, subject string) {
	if err := s.authorize(subject, "get", "nodes", ""); err != nil {
		writeError(w, err)
		return
	}
	clusters, err := s.clusterSelection(r.URL.Query().Get("cluster"))
	if err != nil {
		writeError(w, err)
		return
	}
	if s.p.Federation == nil {
		writeJSON(w, http.StatusOK, api.FromWarmPools(s.p.Cluster.WarmPools(), s.p.Cluster.WarmCounters()))
		return
	}
	var rep api.SlotsReport
	for _, cl := range clusters {
		sub := api.FromWarmPools(cl.c.WarmPools(), cl.c.WarmCounters())
		rep.Pools = append(rep.Pools, sub.Pools...)
		rep.Counters.Hits += sub.Counters.Hits
		rep.Counters.Misses += sub.Counters.Misses
		rep.Counters.Evicted += sub.Counters.Evicted
		rep.Counters.Flushed += sub.Counters.Flushed
		rep.Clusters = append(rep.Clusters, api.ClusterSlots{
			Cluster: cl.label, Pools: sub.Pools, Counters: sub.Counters,
		})
	}
	writeJSON(w, http.StatusOK, rep)
}

// handleClusters lists the placement domains — federation members, or
// the synthesized single entry of a plain server.
func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request, subject string) {
	if err := s.authorize(subject, "get", "nodes", ""); err != nil {
		writeError(w, err)
		return
	}
	members := s.p.Clusters()
	out := make([]api.ClusterInfo, 0, len(members))
	for _, m := range members {
		out = append(out, api.FromMember(m))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleEvacuate re-places a failed federation member's workloads
// across the survivors and removes it from the federation. The acting
// subject rides into the re-placement pipeline, so per-workload RBAC
// and audit attribution stay exact.
func (s *Server) handleEvacuate(w http.ResponseWriter, r *http.Request, subject string) {
	if err := s.authorize(subject, "update", "nodes", ""); err != nil {
		writeError(w, err)
		return
	}
	res, err := s.p.EvacuateCluster(subject, r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.FromEvacuation(res))
}

// Drain stops accepting new async deployments and waits for the
// in-flight ones to reach a terminal state, or for ctx to die —
// whichever comes first. Part of the graceful-shutdown sequence; the
// HTTP listener should already be closed (http.Server.Shutdown) so no
// new sync deploys arrive either.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server drain: %w", ctx.Err())
	}
}

// Close releases server-held resources — today the watch feeder
// goroutine and its platform-side subscription — WITHOUT touching the
// platform, which the server does not own. Idempotent; use it when a
// server is discarded while its platform lives on (tests, the
// simulator, embedded hosts). Shutdown calls it.
func (s *Server) Close() { s.cancel() }

// Shutdown completes the graceful sequence after the listener has
// stopped accepting: drain in-flight deployments, flush the spine,
// release server resources, close the platform. Safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.Drain(ctx)
	if err == nil {
		s.p.Flush()
	}
	s.Close()
	s.p.Close()
	return err
}
