// Package api is the wire-neutral contract of the networked control
// plane: the request/response DTOs shared by the geniod server and the
// genioctl client, plus a bidirectional mapping from the control-plane
// typed-error taxonomy to stable wire codes and HTTP statuses.
//
// The package deliberately re-declares wire shapes instead of exposing
// the library types directly: the JSON here is the compatibility
// surface, and it must be able to evolve (or stay frozen) independently
// of internal struct layout. Converters translate between the two
// worlds at the edge.
package api

import (
	"fmt"

	"genio/internal/core"
	"genio/internal/events"
	"genio/internal/federation"
	"genio/internal/orchestrator"
	"genio/internal/orchestrator/warmpool"
)

// Resources is a CPU/memory demand or capacity on the wire.
type Resources struct {
	CPUMilli int `json:"cpuMilli"`
	MemoryMB int `json:"memoryMB"`
}

// Isolation modes on the wire.
const (
	IsolationSoft = "soft"
	IsolationHard = "hard"
)

// WorkloadSpec is the wire form of a deployment request's spec.
// Isolation travels as its string name ("soft" | "hard"); an empty
// string defaults to soft at decode time.
type WorkloadSpec struct {
	Name            string    `json:"name"`
	Tenant          string    `json:"tenant"`
	ImageRef        string    `json:"imageRef"`
	Isolation       string    `json:"isolation,omitempty"`
	Resources       Resources `json:"resources"`
	PlacementPolicy string    `json:"placementPolicy,omitempty"`
	// Region constrains federated placement to clusters in the named
	// region (see genioctl deploy -region). Ignored outside federation
	// mode only when empty; a non-empty region on a single-cluster
	// server is refused with CodeFedCapacity.
	Region string `json:"region,omitempty"`
}

// ToOrchestrator converts the wire spec to the library spec. Unknown
// isolation names are an error here (before the request reaches the
// pipeline) so a typo'd client fails with a clear message.
func (s WorkloadSpec) ToOrchestrator() (orchestrator.WorkloadSpec, error) {
	spec := orchestrator.WorkloadSpec{
		Name:     s.Name,
		Tenant:   s.Tenant,
		ImageRef: s.ImageRef,
		Resources: orchestrator.Resources{
			CPUMilli: s.Resources.CPUMilli,
			MemoryMB: s.Resources.MemoryMB,
		},
		PlacementPolicy: s.PlacementPolicy,
		Region:          s.Region,
	}
	switch s.Isolation {
	case "", IsolationSoft:
		spec.Isolation = orchestrator.IsolationSoft
	case IsolationHard:
		spec.Isolation = orchestrator.IsolationHard
	default:
		return orchestrator.WorkloadSpec{}, fmt.Errorf("api: unknown isolation %q (want %s|%s)", s.Isolation, IsolationSoft, IsolationHard)
	}
	return spec, nil
}

// FromWorkloadSpec converts a library spec to its wire form.
func FromWorkloadSpec(spec orchestrator.WorkloadSpec) WorkloadSpec {
	return WorkloadSpec{
		Name:      spec.Name,
		Tenant:    spec.Tenant,
		ImageRef:  spec.ImageRef,
		Isolation: spec.Isolation.String(),
		Resources: Resources{
			CPUMilli: spec.Resources.CPUMilli,
			MemoryMB: spec.Resources.MemoryMB,
		},
		PlacementPolicy: spec.PlacementPolicy,
		Region:          spec.Region,
	}
}

// Workload is the wire form of a placed deployment.
type Workload struct {
	Spec       WorkloadSpec `json:"spec"`
	Node       string       `json:"node"`
	VMID       string       `json:"vmId"`
	PlacedAtMs int64        `json:"placedAtMs,omitempty"`
	Strategy   string       `json:"strategy,omitempty"`
	Score      float64      `json:"score,omitempty"`
}

// FromWorkload converts a library workload to its wire form. Nil maps
// to nil.
func FromWorkload(w *orchestrator.Workload) *Workload {
	if w == nil {
		return nil
	}
	return &Workload{
		Spec:       FromWorkloadSpec(w.Spec),
		Node:       w.Node,
		VMID:       w.VMID,
		PlacedAtMs: w.PlacedAtMs,
		Strategy:   w.Strategy,
		Score:      w.Score,
	}
}

// DeployRequest is the body of POST /v2/deployments (sync and async).
type DeployRequest struct {
	Spec WorkloadSpec `json:"spec"`
}

// DeployBatchRequest is the body of POST /v2/deploy/batch: N specs in
// one signed request. Results are positional — Results[i] answers
// Specs[i] — so one request amortizes auth, framing, and codec cost
// across a whole deploy storm.
type DeployBatchRequest struct {
	Specs []WorkloadSpec `json:"specs"`
}

// DeployBatchResult is one positional element of a batch response:
// exactly one of Workload (placed) or Error (full error-taxonomy wire
// codec, Decode-able) is set.
type DeployBatchResult struct {
	Workload *Workload  `json:"workload,omitempty"`
	Error    *WireError `json:"error,omitempty"`
}

// DeployBatchResponse is the 200 body of POST /v2/deploy/batch. The
// HTTP status reports transport/auth outcome only; per-spec verdicts
// live in the positional results.
type DeployBatchResponse struct {
	Results []DeployBatchResult `json:"results"`
}

// DeploymentRef is the 202 response of an async deploy: the server-side
// future's identity plus its poll/await locations.
type DeploymentRef struct {
	ID    string `json:"id"`
	Poll  string `json:"poll"`
	Await string `json:"await"`
}

// DeploymentStatus is one observation of an async deployment future.
// Workload is set once running; Error is set on rejected/cancelled.
type DeploymentStatus struct {
	ID       string     `json:"id"`
	Workload string     `json:"workload"`
	Tenant   string     `json:"tenant,omitempty"`
	State    string     `json:"state"`
	Placed   *Workload  `json:"placed,omitempty"`
	Error    *WireError `json:"error,omitempty"`
}

// LifecycleEvent is the wire form of one deploy.lifecycle transition —
// the SSE payload of GET /v2/watch.
type LifecycleEvent struct {
	Workload string `json:"workload"`
	Tenant   string `json:"tenant,omitempty"`
	From     string `json:"from,omitempty"`
	State    string `json:"state"`
	Node     string `json:"node,omitempty"`
	Detail   string `json:"detail,omitempty"`
	AtMs     int64  `json:"atMs,omitempty"`
}

// Terminal reports whether the event's state ends a lifecycle.
func (e LifecycleEvent) Terminal() bool {
	return core.DeployState(e.State).Terminal()
}

// FromLifecycleEvent converts a library lifecycle event to its wire
// form.
func FromLifecycleEvent(ev core.LifecycleEvent) LifecycleEvent {
	return LifecycleEvent{
		Workload: ev.Workload,
		Tenant:   ev.Tenant,
		From:     string(ev.From),
		State:    string(ev.State),
		Node:     ev.Node,
		Detail:   ev.Detail,
		AtMs:     ev.AtMs,
	}
}

// WatchSelector filters a lifecycle watch; it travels as query
// parameters (tenant, workload, terminal).
type WatchSelector struct {
	Tenant       string
	Workload     string
	TerminalOnly bool
}

// ToCore converts the wire selector to the library selector.
func (s WatchSelector) ToCore() core.WatchSelector {
	return core.WatchSelector{Tenant: s.Tenant, Workload: s.Workload, TerminalOnly: s.TerminalOnly}
}

// Matches reports whether the wire event passes the selector — the
// wire-side mirror of the library's selector semantics, used where
// events are filtered after conversion (e.g. SSE replay).
func (s WatchSelector) Matches(ev LifecycleEvent) bool {
	if s.Tenant != "" && ev.Tenant != s.Tenant {
		return false
	}
	if s.Workload != "" && ev.Workload != s.Workload {
		return false
	}
	if s.TerminalOnly && !ev.Terminal() {
		return false
	}
	return true
}

// AddNodeRequest is the body of POST /v2/nodes.
type AddNodeRequest struct {
	Name     string    `json:"name"`
	Capacity Resources `json:"capacity"`
	// Cluster names the federation member the node joins ("" = the
	// server's default cluster).
	Cluster string `json:"cluster,omitempty"`
}

// AttachONURequest is the body of POST /v2/nodes/{name}/onus.
type AttachONURequest struct {
	Serial string `json:"serial"`
}

// NodeStatus is one node in the GET /v2/nodes response: utilization
// plus, when the request carried a probe demand, the scheduler's
// explanation for that demand (nil score = infeasible on that node).
type NodeStatus struct {
	Node string `json:"node"`
	// Cluster is the federation member the node schedules in. Empty on
	// single-cluster servers.
	Cluster   string    `json:"cluster,omitempty"`
	Used      Resources `json:"used"`
	Capacity  Resources `json:"capacity"`
	Cordoned  bool      `json:"cordoned,omitempty"`
	Workloads int       `json:"workloads"`
	SharedVMs int       `json:"sharedVMs,omitempty"`
	// WarmIdle/WarmClaimed are the node's warm-slot counts: parked idle
	// VMs (reservations inside Used) and running workloads placed through
	// the warm fast path.
	WarmIdle    int `json:"warmIdle,omitempty"`
	WarmClaimed int `json:"warmClaimed,omitempty"`
	// Binpack/Spread are the per-strategy scores for the probe demand
	// (query params probeCpu/probeMem). Nil when no probe was requested
	// or the node cannot fit the demand.
	Binpack *float64 `json:"binpack,omitempty"`
	Spread  *float64 `json:"spread,omitempty"`
}

// FromUtilization converts a library utilization row to its wire form.
func FromUtilization(u orchestrator.NodeUtilization) NodeStatus {
	return NodeStatus{
		Node:        u.Node,
		Used:        Resources{CPUMilli: u.Used.CPUMilli, MemoryMB: u.Used.MemoryMB},
		Capacity:    Resources{CPUMilli: u.Capacity.CPUMilli, MemoryMB: u.Capacity.MemoryMB},
		Cordoned:    u.Cordoned,
		Workloads:   u.Workloads,
		SharedVMs:   u.SharedVMs,
		WarmIdle:    u.WarmIdle,
		WarmClaimed: u.WarmClaimed,
	}
}

// SlotPool is one (tenant, image digest) warm pool in the GET /v2/slots
// response.
type SlotPool struct {
	Tenant  string `json:"tenant"`
	Digest  string `json:"digest"`
	Idle    int    `json:"idle"`
	Claimed int    `json:"claimed"`
}

// SlotCounters are the warm pool's lifecycle totals on the wire.
type SlotCounters struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Evicted uint64 `json:"evicted"`
	Flushed uint64 `json:"flushed"`
}

// SlotsReport is the GET /v2/slots response: the per-(tenant, digest)
// warm pool table plus the lifecycle counters. On a federated server
// the flat fields aggregate across every member and Clusters carries
// the per-member breakdown; single-cluster servers leave Clusters
// empty.
type SlotsReport struct {
	Pools    []SlotPool     `json:"pools,omitempty"`
	Counters SlotCounters   `json:"counters"`
	Clusters []ClusterSlots `json:"clusters,omitempty"`
}

// ClusterSlots is one federation member's warm-slot report inside a
// federated SlotsReport.
type ClusterSlots struct {
	Cluster  string       `json:"cluster"`
	Pools    []SlotPool   `json:"pools,omitempty"`
	Counters SlotCounters `json:"counters"`
}

// FromWarmPools converts the library warm-pool table and counters to
// the wire report.
func FromWarmPools(rows []warmpool.PoolRow, c warmpool.Counters) SlotsReport {
	rep := SlotsReport{Counters: SlotCounters{
		Hits: c.Hits, Misses: c.Misses, Evicted: c.Evicted, Flushed: c.Flushed,
	}}
	for _, r := range rows {
		rep.Pools = append(rep.Pools, SlotPool{
			Tenant: r.Tenant, Digest: r.Digest, Idle: r.Idle, Claimed: r.Claimed,
		})
	}
	return rep
}

// Migration is one live-migration step inside a drain: which workload
// moved where, and the scheduler score that picked the target.
type Migration struct {
	Workload string  `json:"workload"`
	Target   string  `json:"target"`
	Score    float64 `json:"score"`
}

// DrainResult is the wire form of a completed (or rolled-back) drain.
type DrainResult struct {
	Node      string   `json:"node"`
	Migrated  []string `json:"migrated,omitempty"`
	Remaining []string `json:"remaining,omitempty"`
	Cancelled bool     `json:"cancelled,omitempty"`
	AtMs      int64    `json:"atMs,omitempty"`
	// Migrations carries the per-step detail (target node and placement
	// score) the node.drain spine topic streams in-process; on the wire
	// it rides inside the result so remote clients can render the same
	// migration log without a second stream.
	Migrations []Migration `json:"migrations,omitempty"`
	// Error is set when the drain stopped early (cancelled or blocked):
	// the typed wire error alongside the partial progress above. Decode
	// it to recover the errors.Is/As taxonomy.
	Error *WireError `json:"error,omitempty"`
}

// FromDrainResult converts a library drain result to its wire form.
// Nil maps to nil (a failed drain still carries partial progress).
func FromDrainResult(r *orchestrator.DrainResult) *DrainResult {
	if r == nil {
		return nil
	}
	return &DrainResult{
		Node:      r.Node,
		Migrated:  r.Migrated,
		Remaining: r.Remaining,
		Cancelled: r.Cancelled,
		AtMs:      r.AtMs,
	}
}

// FailoverResult is the wire form of a node-failure reschedule.
type FailoverResult struct {
	Node        string   `json:"node"`
	Rescheduled []string `json:"rescheduled,omitempty"`
	Evicted     []string `json:"evicted,omitempty"`
	AtMs        int64    `json:"atMs,omitempty"`
}

// FromFailoverResult converts a library failover result to its wire
// form. Nil maps to nil.
func FromFailoverResult(r *orchestrator.FailoverResult) *FailoverResult {
	if r == nil {
		return nil
	}
	return &FailoverResult{
		Node:        r.Node,
		Rescheduled: r.Rescheduled,
		Evicted:     r.Evicted,
		AtMs:        r.AtMs,
	}
}

// IncidentCounts is the GET /v2/incidents response: incident tallies by
// source, the platform's deterministic security summary.
type IncidentCounts map[string]int

// TopicStats is one topic's spine counters on the wire.
type TopicStats struct {
	Published uint64 `json:"published"`
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
	Filtered  uint64 `json:"filtered"`
}

// Ledger is the GET /v2/ledger response: spine counters per topic.
type Ledger map[string]TopicStats

// FromStats converts spine stats to the wire ledger.
func FromStats(s events.Stats) Ledger {
	out := make(Ledger, len(s))
	for topic, st := range s {
		out[string(topic)] = TopicStats{
			Published: st.Published,
			Delivered: st.Delivered,
			Dropped:   st.Dropped,
			Filtered:  st.Filtered,
		}
	}
	return out
}

// ClusterInfo is one placement domain in the GET /v2/clusters response:
// a federation member, or the synthesized single entry a non-federated
// server reports so fleet tooling renders identically either way.
type ClusterInfo struct {
	Name      string `json:"name"`
	Region    string `json:"region,omitempty"`
	Nodes     int    `json:"nodes"`
	Workloads int    `json:"workloads"`
}

// FromMember converts a federation member snapshot to its wire form.
func FromMember(m federation.Member) ClusterInfo {
	return ClusterInfo{Name: m.Name, Region: m.Region, Nodes: m.Nodes, Workloads: m.Workloads}
}

// EvacuationMove is one workload an evacuation re-placed.
type EvacuationMove struct {
	Workload string `json:"workload"`
	Tenant   string `json:"tenant"`
	To       string `json:"to"`
	Node     string `json:"node"`
}

// EvacuationLoss is one workload an evacuation could not re-place
// without violating residency or capacity.
type EvacuationLoss struct {
	Workload string `json:"workload"`
	Reason   string `json:"reason"`
}

// EvacuationResult is the POST /v2/clusters/{name}/evacuate response.
type EvacuationResult struct {
	Cluster string           `json:"cluster"`
	Moved   []EvacuationMove `json:"moved,omitempty"`
	Lost    []EvacuationLoss `json:"lost,omitempty"`
	AtMs    int64            `json:"atMs,omitempty"`
}

// FromEvacuation converts a library evacuation result to its wire form.
// Nil maps to nil.
func FromEvacuation(r *federation.EvacuationResult) *EvacuationResult {
	if r == nil {
		return nil
	}
	out := &EvacuationResult{Cluster: r.Cluster, AtMs: r.AtMs}
	for _, m := range r.Moved {
		out.Moved = append(out.Moved, EvacuationMove{Workload: m.Workload, Tenant: m.Tenant, To: m.To, Node: m.Node})
	}
	for _, l := range r.Lost {
		out.Lost = append(out.Lost, EvacuationLoss{Workload: l.Workload, Reason: l.Reason})
	}
	return out
}
