package client

// Conformance tests: every Interface method is exercised against BOTH
// implementations — Local (in-process) and HTTP (signed requests
// against a real api/server on an httptest listener) — and must behave
// identically, including the typed errors errors.Is/As-matched after a
// wire decode.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"genio"
	"genio/api"
	"genio/api/server"
	"genio/internal/container"
	"genio/internal/core"
	"genio/internal/demo"
	"genio/internal/orchestrator"
	"genio/internal/pki"
)

// mode builds a client plus the platform behind it (for white-box
// assertions and admission gates).
type mode struct {
	name  string
	build func(t *testing.T) (Interface, *core.Platform)
}

func modes(t *testing.T) []mode {
	t.Helper()
	return []mode{
		{"local", func(t *testing.T) (Interface, *core.Platform) {
			p, err := demo.Platform(core.SecureConfig(), "ops")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(p.Close)
			return NewLocal(p, "ops"), p
		}},
		{"http", func(t *testing.T) (Interface, *core.Platform) {
			p, err := demo.Platform(core.SecureConfig(), "ops")
			if err != nil {
				t.Fatal(err)
			}
			srv := server.New(p, server.Options{CA: p.CA})
			ts := httptest.NewServer(srv.Handler())
			t.Cleanup(func() { ts.Close(); p.Close() })
			id, err := p.CA.Issue("ops", pki.RoleService)
			if err != nil {
				t.Fatal(err)
			}
			cli := NewHTTP(ts.URL,
				WithIdentity(id),
				WithHTTPClient(ts.Client()),
				WithBackoff(5*time.Millisecond, 20*time.Millisecond))
			t.Cleanup(func() { cli.Close() })
			return cli, p
		}},
	}
}

func spec(name, ref string) api.WorkloadSpec {
	return api.WorkloadSpec{
		Name: name, Tenant: "acme", ImageRef: ref, Isolation: "soft",
		Resources: api.Resources{CPUMilli: 200, MemoryMB: 256},
	}
}

func TestConformanceDeploy(t *testing.T) {
	for _, m := range modes(t) {
		t.Run(m.name, func(t *testing.T) {
			cli, p := m.build(t)
			ctx := context.Background()

			wl, err := cli.Deploy(ctx, spec("web", "acme/analytics:2.0.1"))
			if err != nil {
				t.Fatalf("deploy: %v", err)
			}
			if wl.Spec.Name != "web" || wl.Node == "" || wl.VMID == "" {
				t.Fatalf("thin workload: %+v", wl)
			}
			if _, ok := p.Cluster.Workload("web"); !ok {
				t.Fatal("workload not in cluster")
			}

			// Admission rejection: typed verdict vector after decode.
			_, err = cli.Deploy(ctx, spec("flagged", "acme/iot-gateway:1.4.2"))
			var adm *genio.AdmissionError
			if !errors.As(err, &adm) {
				t.Fatalf("want AdmissionError, got %T: %v", err, err)
			}
			if !errors.Is(err, genio.ErrRejected) || len(adm.Rejections()) == 0 {
				t.Fatalf("verdicts lost: %+v", adm)
			}

			// Unsigned image: pull error chaining to the container sentinel.
			_, err = cli.Deploy(ctx, spec("shady", "freestuff/log-shipper:3.1"))
			var pull *genio.ImagePullError
			if !errors.As(err, &pull) || !errors.Is(err, container.ErrUnsigned) {
				t.Fatalf("want ImagePullError/ErrUnsigned, got %T: %v", err, err)
			}

			// Duplicate name.
			_, err = cli.Deploy(ctx, spec("web", "acme/analytics:2.0.1"))
			if !errors.Is(err, genio.ErrDuplicateName) {
				t.Fatalf("want ErrDuplicateName, got %v", err)
			}

			// Malformed spec: bad isolation is rejected client-side or
			// server-side, but never placed.
			bad := spec("bad-iso", "acme/analytics:2.0.1")
			bad.Isolation = "quantum"
			if _, err := cli.Deploy(ctx, bad); err == nil {
				t.Fatal("unknown isolation accepted")
			}
		})
	}
}

func TestConformanceAsyncAndWatch(t *testing.T) {
	for _, m := range modes(t) {
		t.Run(m.name, func(t *testing.T) {
			cli, _ := m.build(t)
			ctx := context.Background()

			// The watch gets its own cancellable context: an SSE stream left
			// on context.Background would hold the httptest server open.
			wctx, wcancel := context.WithCancel(ctx)
			defer wcancel()
			events, err := cli.Watch(wctx, api.WatchSelector{Workload: "async-web", TerminalOnly: true})
			if err != nil {
				t.Fatal(err)
			}

			d, err := cli.DeployAsync(ctx, spec("async-web", "acme/analytics:2.0.1"))
			if err != nil {
				t.Fatal(err)
			}
			if d.ID() == "" {
				t.Fatal("no deployment id")
			}
			wl, err := d.Await(ctx)
			if err != nil || wl.Node == "" {
				t.Fatalf("await: %v / %+v", err, wl)
			}
			st, err := d.Status(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if st.State != "running" || st.Placed == nil || st.Placed.Node != wl.Node {
				t.Fatalf("terminal status: %+v", st)
			}

			select {
			case ev := <-events:
				if ev.Workload != "async-web" || ev.State != "running" || !ev.Terminal() {
					t.Fatalf("watch event: %+v", ev)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("no terminal watch event")
			}

			// An async rejection surfaces the typed error from Await and in
			// the terminal status.
			d2, err := cli.DeployAsync(ctx, spec("async-flagged", "acme/iot-gateway:1.4.2"))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := d2.Await(ctx); !errors.Is(err, genio.ErrRejected) {
				t.Fatalf("want ErrRejected, got %v", err)
			}
			st2, err := d2.Status(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if st2.State != "rejected" || st2.Error == nil {
				t.Fatalf("rejected status: %+v", st2)
			}
		})
	}
}

func TestConformanceCancelNeverPlaced(t *testing.T) {
	for _, m := range modes(t) {
		t.Run(m.name, func(t *testing.T) {
			cli, p := m.build(t)
			ctx := context.Background()

			// Hold the deployment inside admission until its context dies,
			// so the cancel deterministically lands mid-scan.
			entered := make(chan struct{})
			p.Cluster.RegisterAdmissionCtx("test-gate",
				func(ctx context.Context, s orchestrator.WorkloadSpec, _ *container.Image) error {
					if s.Name != "doomed" {
						return nil
					}
					close(entered)
					<-ctx.Done()
					return ctx.Err()
				})

			d, err := cli.DeployAsync(ctx, spec("doomed", "acme/analytics:2.0.1"))
			if err != nil {
				t.Fatal(err)
			}
			<-entered
			if err := d.Cancel(ctx); err != nil {
				t.Fatal(err)
			}
			_, err = d.Await(ctx)
			var cancelled *genio.CancelledError
			if !errors.As(err, &cancelled) {
				t.Fatalf("want CancelledError, got %T: %v", err, err)
			}
			if _, ok := p.Cluster.Workload("doomed"); ok {
				t.Fatal("cancelled deployment was placed")
			}
		})
	}
}

func TestConformanceNodeLifecycle(t *testing.T) {
	for _, m := range modes(t) {
		t.Run(m.name, func(t *testing.T) {
			cli, _ := m.build(t)
			ctx := context.Background()

			if err := cli.AddNode(ctx, "", "olt-03", api.Resources{CPUMilli: 8000, MemoryMB: 16384}); err != nil {
				t.Fatal(err)
			}
			if err := cli.AttachONU(ctx, "olt-03", "onu-9001"); err != nil {
				t.Fatal(err)
			}

			for i := 0; i < 3; i++ {
				if _, err := cli.Deploy(ctx, spec(fmt.Sprintf("app-%d", i), "acme/analytics:2.0.1")); err != nil {
					t.Fatal(err)
				}
			}

			nodes, err := cli.Nodes(ctx, nil, "")
			if err != nil || len(nodes) != 3 {
				t.Fatalf("nodes: %v / %d", err, len(nodes))
			}
			scored, err := cli.Nodes(ctx, &api.Resources{CPUMilli: 500, MemoryMB: 512}, "")
			if err != nil {
				t.Fatal(err)
			}
			anyScore := false
			for _, n := range scored {
				if n.Binpack != nil && n.Spread != nil {
					anyScore = true
				}
			}
			if !anyScore {
				t.Fatalf("probe produced no scores: %+v", scored)
			}

			if err := cli.Cordon(ctx, "olt-02"); err != nil {
				t.Fatal(err)
			}
			if err := cli.Uncordon(ctx, "olt-02"); err != nil {
				t.Fatal(err)
			}
			var nf *genio.NodeNotFoundError
			if err := cli.Cordon(ctx, "no-such-node"); !errors.As(err, &nf) {
				t.Fatalf("want NodeNotFoundError, got %v", err)
			}

			res, err := cli.Drain(ctx, "olt-01")
			if err != nil {
				t.Fatalf("drain: %v", err)
			}
			if len(res.Migrated) != len(res.Migrations) {
				t.Fatalf("migration detail mismatch: %+v", res)
			}
			for _, mg := range res.Migrations {
				if mg.Workload == "" || mg.Target == "olt-01" {
					t.Fatalf("bad migration: %+v", mg)
				}
			}

			fr, err := cli.FailNode(ctx, "olt-03")
			if err != nil {
				t.Fatal(err)
			}
			if fr.Node != "olt-03" {
				t.Fatalf("failover: %+v", fr)
			}
			if _, err := cli.FailNode(ctx, "olt-03"); err == nil {
				t.Fatal("failing a dead node succeeded")
			}

			if _, err := cli.Incidents(ctx); err != nil {
				t.Fatal(err)
			}
			ledger, err := cli.Ledger(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if ledger["deploy.lifecycle"].Published == 0 && ledger["audit"].Published == 0 {
				t.Fatalf("empty ledger: %+v", ledger)
			}
		})
	}
}

// TestLocalOwnedPlatformClose: WithOwnedPlatform closes the platform
// with the client, after which the control plane refuses typed.
func TestLocalOwnedPlatformClose(t *testing.T) {
	p, err := demo.Platform(core.SecureConfig(), "ops")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewLocal(p, "ops", WithOwnedPlatform())
	if _, err := cli.Deploy(context.Background(), spec("pre-close", "acme/analytics:2.0.1")); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = cli.Deploy(context.Background(), spec("post-close", "acme/analytics:2.0.1"))
	var closed *core.ClosedError
	if !errors.As(err, &closed) {
		t.Fatalf("want ClosedError after Close, got %T: %v", err, err)
	}
}

// TestHTTPSubjectModes: an unauthenticated client is refused when the
// server requires signatures; the subject header works only when the
// server explicitly allows anonymous callers.
func TestHTTPSubjectModes(t *testing.T) {
	p, err := demo.Platform(core.SecureConfig(), "ops", "anon-ops")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)

	strict := httptest.NewServer(server.New(p, server.Options{CA: p.CA}).Handler())
	t.Cleanup(strict.Close)
	cli := NewHTTP(strict.URL, WithSubject("anon-ops"))
	t.Cleanup(func() { cli.Close() })
	_, err = cli.Nodes(context.Background(), nil, "")
	var we *api.WireError
	if !errors.As(err, &we) || we.Code != api.CodeUnauthenticated {
		t.Fatalf("want unauthenticated wire error, got %T: %v", err, err)
	}

	lax := httptest.NewServer(server.New(p, server.Options{CA: p.CA, AllowAnonymous: true}).Handler())
	t.Cleanup(lax.Close)
	anon := NewHTTP(lax.URL, WithSubject("anon-ops"))
	t.Cleanup(func() { anon.Close() })
	if _, err := anon.Nodes(context.Background(), nil, ""); err != nil {
		t.Fatalf("anonymous mode: %v", err)
	}
}

// TestHTTPTransportError: a dead server surfaces a transport error, not
// a hang or a decoded wire error.
func TestHTTPTransportError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	ts.Close() // dead on arrival
	cli := NewHTTP(ts.URL)
	defer cli.Close()
	if _, err := cli.Nodes(context.Background(), nil, ""); err == nil {
		t.Fatal("request against a closed server succeeded")
	}
}

// TestConformanceDeployBatch: the batched entry point behaves
// identically local and remote — positional results, one typed
// rejection never failing its siblings, empty batch a no-op.
func TestConformanceDeployBatch(t *testing.T) {
	for _, m := range modes(t) {
		t.Run(m.name, func(t *testing.T) {
			cli, p := m.build(t)
			ctx := context.Background()

			bad := spec("bad-iso", "acme/analytics:2.0.1")
			bad.Isolation = "quantum"
			specs := []api.WorkloadSpec{
				spec("b-web", "acme/analytics:2.0.1"),
				spec("b-flagged", "acme/iot-gateway:1.4.2"),
				bad,
				spec("b-api", "acme/analytics:2.0.1"),
			}
			results, err := cli.DeployBatch(ctx, specs)
			if err != nil {
				t.Fatalf("batch: %v", err)
			}
			if len(results) != len(specs) {
				t.Fatalf("got %d results for %d specs", len(results), len(specs))
			}
			for _, i := range []int{0, 3} {
				if results[i].Err != nil || results[i].Workload == nil || results[i].Workload.Node == "" {
					t.Fatalf("results[%d] = (%+v, %v), want placed", i, results[i].Workload, results[i].Err)
				}
				if _, ok := p.Cluster.Workload(specs[i].Name); !ok {
					t.Fatalf("workload %s not in cluster", specs[i].Name)
				}
			}
			var adm *genio.AdmissionError
			if !errors.As(results[1].Err, &adm) || !errors.Is(results[1].Err, genio.ErrRejected) {
				t.Fatalf("results[1].Err = %v, want AdmissionError", results[1].Err)
			}
			if results[2].Err == nil || results[2].Workload != nil {
				t.Fatalf("results[2] = (%+v, %v), want spec error", results[2].Workload, results[2].Err)
			}

			// Empty batch: no request, no results, no error.
			if results, err := cli.DeployBatch(ctx, nil); err != nil || results != nil {
				t.Fatalf("empty batch = (%v, %v), want (nil, nil)", results, err)
			}
		})
	}
}

// TestHTTPConnectionReuse pins the tuned transport: a burst of
// sequential signed requests to one host must ride ONE TCP connection
// (session handshake included). The stock transport's 2-per-host idle
// cap made deploy storms re-dial between bursts; the tuned transport
// keeps the connection warm.
func TestHTTPConnectionReuse(t *testing.T) {
	p, err := demo.Platform(core.SecureConfig(), "ops")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	srv := server.New(p, server.Options{CA: p.CA})
	ts := httptest.NewUnstartedServer(srv.Handler())
	var conns atomic.Int64
	ts.Config.ConnState = func(c net.Conn, st http.ConnState) {
		if st == http.StateNew {
			conns.Add(1)
		}
	}
	ts.Start()
	t.Cleanup(ts.Close)
	id, err := p.CA.Issue("ops", pki.RoleService)
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately NOT ts.Client(): the point is the client's own
	// default transport.
	cli := NewHTTP(ts.URL, WithIdentity(id))
	t.Cleanup(func() { cli.Close() })
	ctx := context.Background()

	for i := 0; i < 10; i++ {
		if _, err := cli.Ledger(ctx); err != nil {
			t.Fatalf("ledger %d: %v", i, err)
		}
	}
	if _, err := cli.DeployBatch(ctx, []api.WorkloadSpec{
		spec("reuse-a", "acme/analytics:2.0.1"),
		spec("reuse-b", "acme/analytics:2.0.1"),
	}); err != nil {
		t.Fatalf("batch: %v", err)
	}
	if got := conns.Load(); got != 1 {
		t.Fatalf("burst of sequential requests opened %d connections, want 1", got)
	}
}
