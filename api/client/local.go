package client

import (
	"context"
	"strconv"
	"sync/atomic"

	"genio/api"
	"genio/internal/core"
	"genio/internal/federation"
	"genio/internal/orchestrator"
	"genio/internal/orchestrator/scheduler"
)

// Local is the in-process client: the same Interface served straight
// off a core.Platform, no wire. genioctl uses it when no --server is
// given, so every subcommand keeps working without a daemon.
type Local struct {
	p       *core.Platform
	subject string
	// ownsPlatform closes the platform with the client (the CLI's
	// demo fixture); false leaves it to the caller (tests, simulator).
	ownsPlatform bool
	seq          atomic.Uint64
}

// LocalOption configures a Local client.
type LocalOption func(*Local)

// WithOwnedPlatform makes Close also close the platform.
func WithOwnedPlatform() LocalOption {
	return func(l *Local) { l.ownsPlatform = true }
}

// NewLocal builds an in-process client acting as the given subject.
func NewLocal(p *core.Platform, subject string, opts ...LocalOption) *Local {
	l := &Local{p: p, subject: subject}
	for _, o := range opts {
		o(l)
	}
	return l
}

func (l *Local) Deploy(ctx context.Context, spec api.WorkloadSpec) (*api.Workload, error) {
	oSpec, err := spec.ToOrchestrator()
	if err != nil {
		return nil, err
	}
	wl, err := l.p.DeployContext(ctx, l.subject, oSpec)
	if err != nil {
		return nil, err
	}
	return api.FromWorkload(wl), nil
}

func (l *Local) DeployAsync(ctx context.Context, spec api.WorkloadSpec) (Deployment, error) {
	oSpec, err := spec.ToOrchestrator()
	if err != nil {
		return nil, err
	}
	d, err := l.p.DeployAsync(ctx, l.subject, oSpec)
	if err != nil {
		return nil, err
	}
	return &localDeployment{
		id: "local-" + strconv.FormatUint(l.seq.Add(1), 10),
		d:  d,
	}, nil
}

// DeployBatch delegates to the platform's in-process batch fan-out
// (core.Platform.DeployBatchContext): every spec pipelines through its
// own future concurrently, results stay positional.
func (l *Local) DeployBatch(ctx context.Context, specs []api.WorkloadSpec) ([]BatchResult, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	results := make([]BatchResult, len(specs))
	oSpecs := make([]orchestrator.WorkloadSpec, 0, len(specs))
	indices := make([]int, 0, len(specs))
	for i, spec := range specs {
		oSpec, err := spec.ToOrchestrator()
		if err != nil {
			results[i].Err = err
			continue
		}
		oSpecs = append(oSpecs, oSpec)
		indices = append(indices, i)
	}
	if len(oSpecs) > 0 {
		wls, errs := l.p.DeployBatchContext(ctx, l.subject, oSpecs)
		for j, i := range indices {
			if errs[j] != nil {
				results[i].Err = errs[j]
			} else {
				results[i].Workload = api.FromWorkload(wls[j])
			}
		}
	}
	return results, nil
}

// localDeployment adapts a core.Deployment future to the client handle.
type localDeployment struct {
	id string
	d  *core.Deployment
}

func (d *localDeployment) ID() string { return d.id }

func (d *localDeployment) Status(ctx context.Context) (api.DeploymentStatus, error) {
	st := api.DeploymentStatus{
		ID:       d.id,
		Workload: d.d.Spec().Name,
		Tenant:   d.d.Spec().Tenant,
		State:    string(d.d.State()),
	}
	if core.DeployState(st.State).Terminal() {
		wl, err := d.d.Result()
		st.Placed = api.FromWorkload(wl)
		st.Error = api.Encode(err)
	}
	return st, nil
}

func (d *localDeployment) Await(ctx context.Context) (*api.Workload, error) {
	select {
	case <-d.d.Done():
		wl, err := d.d.Result()
		return api.FromWorkload(wl), err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (d *localDeployment) Cancel(ctx context.Context) error {
	d.d.Cancel()
	return nil
}

func (l *Local) Watch(ctx context.Context, sel api.WatchSelector) (<-chan api.LifecycleEvent, error) {
	ch, err := l.p.Watch(ctx, sel.ToCore())
	if err != nil {
		return nil, err
	}
	out := make(chan api.LifecycleEvent)
	go func() {
		defer close(out)
		for ev := range ch {
			select {
			case out <- api.FromLifecycleEvent(ev):
			case <-ctx.Done():
				return
			}
		}
	}()
	return out, nil
}

func (l *Local) AddNode(ctx context.Context, cluster, name string, capacity api.Resources) error {
	_, err := l.p.AddEdgeNodeInContext(ctx, cluster, name, orchestrator.Resources{
		CPUMilli: capacity.CPUMilli, MemoryMB: capacity.MemoryMB,
	})
	return err
}

// clusterRef mirrors the server's selection: the cluster plus the label
// its rows carry (empty on a plain platform, so pre-federation output
// is identical local and remote).
type clusterRef struct {
	label string
	c     *orchestrator.Cluster
}

// clusterSelection resolves a cluster selector the same way the server
// resolves ?cluster=: "" means every placement domain, a name selects
// one federation member.
func (l *Local) clusterSelection(name string) ([]clusterRef, error) {
	if l.p.Federation == nil {
		if name != "" && name != l.p.Cluster.Name {
			return nil, &federation.ClusterNotFoundError{Cluster: name}
		}
		return []clusterRef{{c: l.p.Cluster}}, nil
	}
	if name != "" {
		c, err := l.p.ClusterByName(name)
		if err != nil {
			return nil, err
		}
		return []clusterRef{{label: c.Name, c: c}}, nil
	}
	members := l.p.Federation.Clusters()
	out := make([]clusterRef, 0, len(members))
	for _, m := range members {
		if c, ok := l.p.Federation.Cluster(m.Name); ok {
			out = append(out, clusterRef{label: m.Name, c: c})
		}
	}
	return out, nil
}

func (l *Local) Nodes(ctx context.Context, probe *api.Resources, cluster string) ([]api.NodeStatus, error) {
	clusters, err := l.clusterSelection(cluster)
	if err != nil {
		return nil, err
	}
	var out []api.NodeStatus
	for _, cl := range clusters {
		util := cl.c.Utilization()
		rows := make([]api.NodeStatus, 0, len(util))
		for _, u := range util {
			ns := api.FromUtilization(u)
			ns.Cluster = cl.label
			rows = append(rows, ns)
		}
		if probe != nil {
			cands := make([]scheduler.Candidate, 0, len(util))
			for _, u := range util {
				cands = append(cands, scheduler.Candidate{
					Node: u.Node, Capacity: u.Capacity, Used: u.Used,
					Cordoned: u.Cordoned, SharedVMs: u.SharedVMs,
				})
			}
			req := scheduler.Request{Workload: "probe", Tenant: "probe",
				Demand: orchestrator.Resources{CPUMilli: probe.CPUMilli, MemoryMB: probe.MemoryMB}}
			eng := cl.c.Scheduler()
			req.Strategy = scheduler.StrategyBinpack
			binpack := eng.Explain(&req, cands)
			req.Strategy = scheduler.StrategySpread
			spread := eng.Explain(&req, cands)
			for i := range rows {
				if binpack[i].Feasible {
					v := binpack[i].Score
					rows[i].Binpack = &v
				}
				if spread[i].Feasible {
					v := spread[i].Score
					rows[i].Spread = &v
				}
			}
		}
		out = append(out, rows...)
	}
	if out == nil {
		out = []api.NodeStatus{}
	}
	return out, nil
}

func (l *Local) Cordon(ctx context.Context, node string) error   { return l.p.Cordon(node) }
func (l *Local) Uncordon(ctx context.Context, node string) error { return l.p.Uncordon(node) }

func (l *Local) Drain(ctx context.Context, node string) (*api.DrainResult, error) {
	var migrations []api.Migration
	res, err := l.p.DrainObserved(ctx, node, func(ev orchestrator.DrainEvent) {
		if ev.Phase == orchestrator.DrainMigrated {
			migrations = append(migrations, api.Migration{
				Workload: ev.Workload, Target: ev.Target, Score: ev.Score,
			})
		}
	})
	if res == nil {
		return nil, err
	}
	out := api.FromDrainResult(res)
	out.Migrations = migrations
	return out, err
}

func (l *Local) FailNode(ctx context.Context, node string) (*api.FailoverResult, error) {
	res, err := l.p.FailNode(node)
	if err != nil {
		return nil, err
	}
	return api.FromFailoverResult(res), nil
}

func (l *Local) AttachONU(ctx context.Context, node, serial string) error {
	_, err := l.p.AttachONUContext(ctx, node, serial)
	return err
}

func (l *Local) Incidents(ctx context.Context) (api.IncidentCounts, error) {
	counts := l.p.IncidentCounts()
	if counts == nil {
		counts = map[string]int{}
	}
	return api.IncidentCounts(counts), nil
}

func (l *Local) Ledger(ctx context.Context) (api.Ledger, error) {
	return api.FromStats(l.p.Metrics()), nil
}

func (l *Local) Slots(ctx context.Context, cluster string) (api.SlotsReport, error) {
	clusters, err := l.clusterSelection(cluster)
	if err != nil {
		return api.SlotsReport{}, err
	}
	if l.p.Federation == nil {
		return api.FromWarmPools(l.p.Cluster.WarmPools(), l.p.Cluster.WarmCounters()), nil
	}
	var rep api.SlotsReport
	for _, cl := range clusters {
		sub := api.FromWarmPools(cl.c.WarmPools(), cl.c.WarmCounters())
		rep.Pools = append(rep.Pools, sub.Pools...)
		rep.Counters.Hits += sub.Counters.Hits
		rep.Counters.Misses += sub.Counters.Misses
		rep.Counters.Evicted += sub.Counters.Evicted
		rep.Counters.Flushed += sub.Counters.Flushed
		rep.Clusters = append(rep.Clusters, api.ClusterSlots{
			Cluster: cl.label, Pools: sub.Pools, Counters: sub.Counters,
		})
	}
	return rep, nil
}

func (l *Local) Clusters(ctx context.Context) ([]api.ClusterInfo, error) {
	members := l.p.Clusters()
	out := make([]api.ClusterInfo, 0, len(members))
	for _, m := range members {
		out = append(out, api.FromMember(m))
	}
	return out, nil
}

func (l *Local) Evacuate(ctx context.Context, cluster string) (*api.EvacuationResult, error) {
	res, err := l.p.EvacuateCluster(l.subject, cluster)
	if err != nil {
		return nil, err
	}
	return api.FromEvacuation(res), nil
}

// Close closes the platform when the client owns it.
func (l *Local) Close() error {
	if l.ownsPlatform {
		l.p.Close()
	}
	return nil
}

// interface conformance
var (
	_ Interface = (*Local)(nil)
	_ Interface = (*HTTP)(nil)
)
