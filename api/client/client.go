// Package client is the control-plane client behind genioctl: one
// interface with two implementations — an HTTP client speaking the
// genio/api wire contract to a remote geniod, and a local client
// wrapping an in-process core.Platform. Every subcommand is written
// against the interface, so it behaves identically in both modes; the
// HTTP client's errors decode back to the library's typed taxonomy, so
// even errors.Is/errors.As-driven output matches.
package client

import (
	"context"

	"genio/api"
)

// Interface is the control-plane surface the CLI (and the simulator's
// wire campaign) programs against.
type Interface interface {
	// Deploy runs one deployment synchronously on ctx: cancelling ctx
	// cancels (and rolls back) the in-flight deployment.
	Deploy(ctx context.Context, spec api.WorkloadSpec) (*api.Workload, error)
	// DeployAsync launches a deployment future and returns a handle to
	// poll, await, or cancel it.
	DeployAsync(ctx context.Context, spec api.WorkloadSpec) (Deployment, error)
	// DeployBatch admits every spec through the full pipeline and waits
	// for all of them. Results are positional (Results[i] answers
	// specs[i]), each carrying either the placed workload or the typed
	// error — one rejection never fails its siblings. The remote
	// implementation ships the whole batch as ONE signed request; the
	// returned error reports transport/auth failure only.
	DeployBatch(ctx context.Context, specs []api.WorkloadSpec) ([]BatchResult, error)
	// Watch streams lifecycle transitions matching the selector until
	// ctx ends. The remote implementation reconnects dropped streams
	// with backoff, reapplying the same selector.
	Watch(ctx context.Context, sel api.WatchSelector) (<-chan api.LifecycleEvent, error)

	// AddNode provisions an edge node into the named federation cluster
	// ("" = the default cluster — the only valid value outside
	// federation mode).
	AddNode(ctx context.Context, cluster, name string, capacity api.Resources) error
	// Nodes returns the fleet table; a non-nil probe adds the
	// scheduler's binpack/spread scores for that demand. cluster narrows
	// a federated fleet to one member ("" = every member, each row
	// labeled with its cluster; on a plain platform rows are unlabeled).
	Nodes(ctx context.Context, probe *api.Resources, cluster string) ([]api.NodeStatus, error)
	Cordon(ctx context.Context, node string) error
	Uncordon(ctx context.Context, node string) error
	// Drain live-migrates the node's workloads; cancelling ctx stops the
	// drain at the next migration boundary and rolls the cordon back.
	Drain(ctx context.Context, node string) (*api.DrainResult, error)
	// FailNode simulates node loss: remove the node and reschedule.
	FailNode(ctx context.Context, node string) (*api.FailoverResult, error)
	AttachONU(ctx context.Context, node, serial string) error

	Incidents(ctx context.Context) (api.IncidentCounts, error)
	Ledger(ctx context.Context) (api.Ledger, error)
	// Slots returns the warm-slot pool table and lifecycle counters.
	// cluster narrows a federated fleet to one member; "" aggregates
	// every member with a per-cluster breakdown.
	Slots(ctx context.Context, cluster string) (api.SlotsReport, error)

	// Clusters lists the placement domains: federation members, or a
	// synthesized single entry on a plain platform.
	Clusters(ctx context.Context) ([]api.ClusterInfo, error)
	// Evacuate re-places a failed federation member's workloads across
	// the survivors and removes it from the federation.
	Evacuate(ctx context.Context, cluster string) (*api.EvacuationResult, error)

	// Close releases the client (and, for the local implementation, the
	// platform it owns).
	Close() error
}

// BatchResult is one positional element of a DeployBatch: exactly one
// of Workload (placed) or Err (decoded typed taxonomy error —
// errors.Is/As work) is set.
type BatchResult struct {
	Workload *api.Workload
	Err      error
}

// Deployment is a client-side handle on an asynchronous deployment
// future.
type Deployment interface {
	// ID identifies the deployment on its server ("" until assigned).
	ID() string
	// Status snapshots the deployment's current state.
	Status(ctx context.Context) (api.DeploymentStatus, error)
	// Await blocks until the deployment is terminal (or ctx dies) and
	// returns the placement or the typed terminal error.
	Await(ctx context.Context) (*api.Workload, error)
	// Cancel withdraws the deployment; the platform stops it at the
	// next cancellation point and rolls back anything provisional.
	Cancel(ctx context.Context) error
}
