package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"genio/api"
	"genio/internal/pki"
)

// HTTP is the remote client: it speaks the v2 wire surface to a geniod
// server, authenticating every request with its PKI identity (or an
// anonymous subject header against a legacy-posture server).
type HTTP struct {
	base     string
	client   *http.Client
	identity *pki.Identity
	subject  string

	// backoff bounds for stream/await reconnection.
	backoffMin time.Duration
	backoffMax time.Duration

	// streamErr, when set, receives the terminal error that ended a
	// watch stream's reconnect loop (e.g. 401 after cert revocation).
	streamErr func(error)
}

// HTTPOption configures the HTTP client.
type HTTPOption func(*HTTP)

// WithIdentity authenticates requests with a PKI identity (see
// api.SignRequest).
func WithIdentity(id *pki.Identity) HTTPOption {
	return func(c *HTTP) { c.identity = id }
}

// WithSubject sets the anonymous subject header used when no identity
// is configured (only honoured by servers running AllowAnonymous).
func WithSubject(subject string) HTTPOption {
	return func(c *HTTP) { c.subject = subject }
}

// WithHTTPClient swaps the underlying http.Client (timeouts, custom
// transports, test servers).
func WithHTTPClient(hc *http.Client) HTTPOption {
	return func(c *HTTP) { c.client = hc }
}

// WithBackoff bounds the reconnect backoff for watch streams and await
// long-polls.
func WithBackoff(min, max time.Duration) HTTPOption {
	return func(c *HTTP) { c.backoffMin, c.backoffMax = min, max }
}

// WithStreamErrorHandler registers a callback for the terminal error
// that ends a watch stream: reconnects retry transport failures
// forever, but a control-plane refusal (unauthenticated after cert
// revocation, RBAC change, platform closed) is permanent — the stream
// channel closes and the handler, when set, receives the decoded typed
// error. Without a handler the channel still closes; the error is just
// not observable.
func WithStreamErrorHandler(fn func(error)) HTTPOption {
	return func(c *HTTP) { c.streamErr = fn }
}

// NewHTTP builds a remote client for a geniod base URL, e.g.
// "http://127.0.0.1:9650".
func NewHTTP(base string, opts ...HTTPOption) *HTTP {
	c := &HTTP{
		base:       strings.TrimRight(base, "/"),
		client:     &http.Client{},
		backoffMin: 50 * time.Millisecond,
		backoffMax: 2 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// newRequest builds and authenticates one request.
func (c *HTTP) newRequest(ctx context.Context, method, path string, query url.Values, body any) (*http.Request, error) {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return nil, fmt.Errorf("client: marshal request: %w", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.identity != nil {
		if err := api.SignRequest(req, c.identity); err != nil {
			return nil, err
		}
	} else if c.subject != "" {
		req.Header.Set(api.HeaderSubject, c.subject)
	}
	return req, nil
}

// decodeError turns a non-2xx response into the library's typed error.
func decodeError(resp *http.Response) error {
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var we api.WireError
	if err := json.Unmarshal(data, &we); err != nil || we.Code == "" {
		return fmt.Errorf("client: server returned %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	return api.Decode(&we)
}

// do sends one request and decodes the JSON response into out (skipped
// when out is nil).
func (c *HTTP) do(ctx context.Context, method, path string, query url.Values, body, out any) error {
	req, err := c.newRequest(ctx, method, path, query, body)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return decodeError(resp)
	}
	defer resp.Body.Close()
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *HTTP) Deploy(ctx context.Context, spec api.WorkloadSpec) (*api.Workload, error) {
	var wl api.Workload
	if err := c.do(ctx, http.MethodPost, "/v2/deployments", nil, api.DeployRequest{Spec: spec}, &wl); err != nil {
		return nil, err
	}
	return &wl, nil
}

func (c *HTTP) DeployAsync(ctx context.Context, spec api.WorkloadSpec) (Deployment, error) {
	var ref api.DeploymentRef
	if err := c.do(ctx, http.MethodPost, "/v2/deployments/async", nil, api.DeployRequest{Spec: spec}, &ref); err != nil {
		return nil, err
	}
	return &httpDeployment{c: c, ref: ref}, nil
}

// Deployment rebuilds a handle for a known deployment ID (learned
// out-of-band, e.g. from another process's DeployAsync). The server
// still decides whether this client's subject may use it.
func (c *HTTP) Deployment(id string) Deployment {
	return &httpDeployment{c: c, ref: api.DeploymentRef{
		ID:    id,
		Poll:  "/v2/deployments/" + id,
		Await: "/v2/deployments/" + id + "/await",
	}}
}

// httpDeployment is the remote future handle.
type httpDeployment struct {
	c   *HTTP
	ref api.DeploymentRef
}

func (d *httpDeployment) ID() string { return d.ref.ID }

func (d *httpDeployment) Status(ctx context.Context) (api.DeploymentStatus, error) {
	var st api.DeploymentStatus
	err := d.c.do(ctx, http.MethodGet, d.ref.Poll, nil, nil, &st)
	return st, err
}

// Await long-polls the await endpoint. Transport failures retry with
// backoff — the deployment keeps running server-side, so reconnecting
// and re-awaiting is always safe.
func (d *httpDeployment) Await(ctx context.Context) (*api.Workload, error) {
	backoff := d.c.backoffMin
	for {
		var st api.DeploymentStatus
		err := d.c.do(ctx, http.MethodGet, d.ref.Await, nil, nil, &st)
		if err == nil {
			return st.Placed, api.Decode(st.Error)
		}
		// Typed control-plane errors (and dead contexts) are final;
		// only transport-level failures retry.
		var we *api.WireError
		if ctx.Err() != nil || errors.As(err, &we) || !isTransportError(err) {
			return nil, err
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if backoff *= 2; backoff > d.c.backoffMax {
			backoff = d.c.backoffMax
		}
	}
}

func (d *httpDeployment) Cancel(ctx context.Context) error {
	return d.c.do(ctx, http.MethodDelete, d.ref.Poll, nil, nil, nil)
}

// isTransportError reports whether the failure happened on the wire
// (connection refused/reset, stream killed) rather than in the
// control plane.
func isTransportError(err error) bool {
	var ue *url.Error
	return errors.As(err, &ue) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF)
}

// Watch streams lifecycle events over SSE. A dropped stream reconnects
// with exponential backoff (reset after the first event of a healthy
// connection), reapplying the same selector and presenting the last
// seen event id as Last-Event-ID so the server replays what was
// published while disconnected (bounded by its replay buffer). Only
// transport failures reconnect: a control-plane refusal on reconnect
// is permanent — the channel closes and the error goes to the
// WithStreamErrorHandler callback, if any.
func (c *HTTP) Watch(ctx context.Context, sel api.WatchSelector) (<-chan api.LifecycleEvent, error) {
	query := url.Values{}
	if sel.Tenant != "" {
		query.Set("tenant", sel.Tenant)
	}
	if sel.Workload != "" {
		query.Set("workload", sel.Workload)
	}
	if sel.TerminalOnly {
		query.Set("terminal", "true")
	}
	// Establish the first connection synchronously so selector typos and
	// auth failures surface as errors, not silent empty streams.
	resp, err := c.openStream(ctx, query, 0)
	if err != nil {
		return nil, err
	}
	out := make(chan api.LifecycleEvent)
	go func() {
		defer close(out)
		backoff := c.backoffMin
		var lastID uint64
		for {
			healthy := c.pumpStream(ctx, resp, out, &lastID)
			if ctx.Err() != nil {
				return
			}
			if healthy {
				backoff = c.backoffMin
			}
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return
			}
			if backoff *= 2; backoff > c.backoffMax {
				backoff = c.backoffMax
			}
			resp, err = c.openStream(ctx, query, lastID)
			if err != nil {
				resp = nil
				if ctx.Err() == nil && !isTransportError(err) {
					// The control plane refused the reconnect (revoked
					// cert, RBAC change, shutdown): retrying cannot
					// succeed. End the stream rather than spin silently.
					if c.streamErr != nil {
						c.streamErr(err)
					}
					return
				}
				continue
			}
		}
	}()
	return out, nil
}

func (c *HTTP) openStream(ctx context.Context, query url.Values, lastID uint64) (*http.Response, error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/v2/watch", query, nil)
	if err != nil {
		return nil, err
	}
	if lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastID, 10))
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return resp, nil
}

// pumpStream forwards one connection's events, tracking the server's
// `id:` fields in lastID for resume; it returns true when at least one
// event arrived (a healthy stream, resetting the backoff).
func (c *HTTP) pumpStream(ctx context.Context, resp *http.Response, out chan<- api.LifecycleEvent, lastID *uint64) bool {
	if resp == nil {
		return false
	}
	defer resp.Body.Close()
	delivered := false
	var pendingID uint64
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if id, ok := strings.CutPrefix(line, "id: "); ok {
			pendingID, _ = strconv.ParseUint(id, 10, 64)
			continue
		}
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev api.LifecycleEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			continue
		}
		select {
		case out <- ev:
			delivered = true
			if pendingID > 0 {
				*lastID = pendingID
			}
		case <-ctx.Done():
			return delivered
		}
	}
	return delivered
}

func (c *HTTP) AddNode(ctx context.Context, cluster, name string, capacity api.Resources) error {
	return c.do(ctx, http.MethodPost, "/v2/nodes", nil, api.AddNodeRequest{Name: name, Cluster: cluster, Capacity: capacity}, nil)
}

func (c *HTTP) Nodes(ctx context.Context, probe *api.Resources, cluster string) ([]api.NodeStatus, error) {
	query := url.Values{}
	if probe != nil {
		query.Set("probeCpu", strconv.Itoa(probe.CPUMilli))
		query.Set("probeMem", strconv.Itoa(probe.MemoryMB))
	}
	if cluster != "" {
		query.Set("cluster", cluster)
	}
	var out []api.NodeStatus
	if err := c.do(ctx, http.MethodGet, "/v2/nodes", query, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *HTTP) Cordon(ctx context.Context, node string) error {
	return c.do(ctx, http.MethodPost, "/v2/nodes/"+url.PathEscape(node)+"/cordon", nil, nil, nil)
}

func (c *HTTP) Uncordon(ctx context.Context, node string) error {
	return c.do(ctx, http.MethodPost, "/v2/nodes/"+url.PathEscape(node)+"/uncordon", nil, nil, nil)
}

func (c *HTTP) Drain(ctx context.Context, node string) (*api.DrainResult, error) {
	var res api.DrainResult
	if err := c.do(ctx, http.MethodPost, "/v2/nodes/"+url.PathEscape(node)+"/drain", nil, nil, &res); err != nil {
		return nil, err
	}
	// A drain that stopped early ships its partial progress with the
	// typed error embedded; surface both halves like the local client.
	return &res, api.Decode(res.Error)
}

func (c *HTTP) FailNode(ctx context.Context, node string) (*api.FailoverResult, error) {
	var res api.FailoverResult
	if err := c.do(ctx, http.MethodPost, "/v2/nodes/"+url.PathEscape(node)+"/fail", nil, nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

func (c *HTTP) AttachONU(ctx context.Context, node, serial string) error {
	return c.do(ctx, http.MethodPost, "/v2/nodes/"+url.PathEscape(node)+"/onus", nil, api.AttachONURequest{Serial: serial}, nil)
}

func (c *HTTP) Incidents(ctx context.Context) (api.IncidentCounts, error) {
	var out api.IncidentCounts
	if err := c.do(ctx, http.MethodGet, "/v2/incidents", nil, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *HTTP) Ledger(ctx context.Context) (api.Ledger, error) {
	var out api.Ledger
	if err := c.do(ctx, http.MethodGet, "/v2/ledger", nil, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *HTTP) Slots(ctx context.Context, cluster string) (api.SlotsReport, error) {
	query := url.Values{}
	if cluster != "" {
		query.Set("cluster", cluster)
	}
	var out api.SlotsReport
	err := c.do(ctx, http.MethodGet, "/v2/slots", query, nil, &out)
	return out, err
}

func (c *HTTP) Clusters(ctx context.Context) ([]api.ClusterInfo, error) {
	var out []api.ClusterInfo
	if err := c.do(ctx, http.MethodGet, "/v2/clusters", nil, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *HTTP) Evacuate(ctx context.Context, cluster string) (*api.EvacuationResult, error) {
	var out api.EvacuationResult
	if err := c.do(ctx, http.MethodPost, "/v2/clusters/"+url.PathEscape(cluster)+"/evacuate", nil, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Close releases idle connections; the remote platform is unaffected.
func (c *HTTP) Close() error {
	c.client.CloseIdleConnections()
	return nil
}
