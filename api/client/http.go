package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"genio/api"
	"genio/internal/pki"
)

// HTTP is the remote client: it speaks the v2 wire surface to a geniod
// server, authenticating every request with its PKI identity (or an
// anonymous subject header against a legacy-posture server).
//
// With an identity configured, the client establishes a session on
// first use (POST /v2/session, Ed25519-signed) and authenticates the
// steady state with the granted HMAC secret — re-keying through the
// asymmetric handshake when the session expires, and falling back to
// per-request Ed25519 signatures against servers that predate
// sessions.
type HTTP struct {
	base     string
	client   *http.Client
	identity *pki.Identity
	subject  string

	// Session state. sessMu serializes re-keying: one goroutine runs
	// the handshake while concurrent requests wait for the fresh
	// session instead of stampeding the endpoint. sessOff latches when
	// the server has no /v2/session (404/405): a legacy daemon, so the
	// client stays on per-request signing without re-probing.
	sessMu  sync.Mutex
	sess    *api.Session
	sessOff bool

	// backoff bounds for stream/await reconnection.
	backoffMin time.Duration
	backoffMax time.Duration

	// streamErr, when set, receives the terminal error that ended a
	// watch stream's reconnect loop (e.g. 401 after cert revocation).
	streamErr func(error)
}

// HTTPOption configures the HTTP client.
type HTTPOption func(*HTTP)

// WithIdentity authenticates requests with a PKI identity (see
// api.SignRequest).
func WithIdentity(id *pki.Identity) HTTPOption {
	return func(c *HTTP) { c.identity = id }
}

// WithSubject sets the anonymous subject header used when no identity
// is configured (only honoured by servers running AllowAnonymous).
func WithSubject(subject string) HTTPOption {
	return func(c *HTTP) { c.subject = subject }
}

// WithHTTPClient swaps the underlying http.Client (timeouts, custom
// transports, test servers).
func WithHTTPClient(hc *http.Client) HTTPOption {
	return func(c *HTTP) { c.client = hc }
}

// WithBackoff bounds the reconnect backoff for watch streams and await
// long-polls.
func WithBackoff(min, max time.Duration) HTTPOption {
	return func(c *HTTP) { c.backoffMin, c.backoffMax = min, max }
}

// WithStreamErrorHandler registers a callback for the terminal error
// that ends a watch stream: reconnects retry transport failures
// forever, but a control-plane refusal (unauthenticated after cert
// revocation, RBAC change, platform closed) is permanent — the stream
// channel closes and the handler, when set, receives the decoded typed
// error. Without a handler the channel still closes; the error is just
// not observable.
func WithStreamErrorHandler(fn func(error)) HTTPOption {
	return func(c *HTTP) { c.streamErr = fn }
}

// newTransport is the default wire transport, tuned for deploy storms:
// a storm fans dozens of concurrent requests at ONE host, and the
// stock Transport's 2 idle conns per host would close and re-dial
// almost every connection between bursts.
func newTransport() *http.Transport {
	return &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   30 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     90 * time.Second,
		// Control-plane payloads are small JSON; geniod never gzips
		// them, so skip the Accept-Encoding negotiation and the
		// per-response decompression bookkeeping.
		DisableCompression: true,
	}
}

// NewHTTP builds a remote client for a geniod base URL, e.g.
// "http://127.0.0.1:9650".
func NewHTTP(base string, opts ...HTTPOption) *HTTP {
	c := &HTTP{
		base:       strings.TrimRight(base, "/"),
		client:     &http.Client{Transport: newTransport()},
		backoffMin: 50 * time.Millisecond,
		backoffMax: 2 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// reqBufPool recycles request-body encode buffers; maxPooledReqBuf
// keeps a one-off giant batch from pinning its buffer forever.
var reqBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledReqBuf = 1 << 20

// newRequest builds and authenticates one request. The returned
// release func recycles the body's encode buffer and must be called
// after the request has been fully sent (i.e. once client.Do returns);
// it is never nil.
func (c *HTTP) newRequest(ctx context.Context, method, path string, query url.Values, body any) (*http.Request, func(), error) {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	release := func() {}
	var rd io.Reader
	if body != nil {
		buf := reqBufPool.Get().(*bytes.Buffer)
		buf.Reset()
		if err := json.NewEncoder(buf).Encode(body); err != nil {
			reqBufPool.Put(buf)
			return nil, nil, fmt.Errorf("client: marshal request: %w", err)
		}
		rd = bytes.NewReader(buf.Bytes())
		release = func() {
			if buf.Cap() <= maxPooledReqBuf {
				reqBufPool.Put(buf)
			}
		}
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		release()
		return nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.identity != nil {
		if s := c.session(ctx); s != nil {
			err = api.SignRequestSession(req, s)
		} else {
			err = api.SignRequest(req, c.identity)
		}
		if err != nil {
			release()
			return nil, nil, err
		}
	} else if c.subject != "" {
		req.Header.Set(api.HeaderSubject, c.subject)
	}
	return req, release, nil
}

// session returns a live session, running the Ed25519 handshake if
// none is held. Any handshake failure falls back to nil — the caller
// signs per-request with the identity key, which is always accepted —
// so sessions are purely an optimization, never an availability risk.
func (c *HTTP) session(ctx context.Context) *api.Session {
	c.sessMu.Lock()
	defer c.sessMu.Unlock()
	if c.sessOff {
		return nil
	}
	// Refresh slightly early so a request signed now does not land
	// after server-side expiry mid-flight.
	if c.sess != nil && time.Now().Add(2*time.Second).Before(c.sess.ExpiresAt) {
		return c.sess
	}
	c.sess = nil
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v2/session", nil)
	if err != nil {
		return nil
	}
	if err := api.SignRequest(req, c.identity); err != nil {
		return nil
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusMethodNotAllowed:
		// Pre-session server: stop probing, stay on Ed25519.
		_, _ = io.Copy(io.Discard, resp.Body)
		c.sessOff = true
		return nil
	case resp.StatusCode != http.StatusCreated:
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	var grant api.SessionGrant
	if err := json.NewDecoder(resp.Body).Decode(&grant); err != nil {
		return nil
	}
	c.sess = grant.Session()
	return c.sess
}

// invalidateSession drops the held session (the server no longer knows
// it — expiry, restart, eviction); the next request re-keys.
func (c *HTTP) invalidateSession() {
	c.sessMu.Lock()
	c.sess = nil
	c.sessMu.Unlock()
}

// isSessionExpired recognizes the server's recoverable 401: re-key and
// retry rather than surfacing an auth failure.
func isSessionExpired(err error) bool {
	var we *api.WireError
	return errors.As(err, &we) && we.Code == api.CodeSessionExpired
}

// decodeError turns a non-2xx response into the library's typed error.
func decodeError(resp *http.Response) error {
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var we api.WireError
	if err := json.Unmarshal(data, &we); err != nil || we.Code == "" {
		return fmt.Errorf("client: server returned %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	return api.Decode(&we)
}

// do sends one request and decodes the JSON response into out (skipped
// when out is nil). A session-expired 401 re-keys and retries once —
// transparent to callers, since the request never reached its handler.
func (c *HTTP) do(ctx context.Context, method, path string, query url.Values, body, out any) error {
	for attempt := 0; ; attempt++ {
		req, release, err := c.newRequest(ctx, method, path, query, body)
		if err != nil {
			return err
		}
		resp, err := c.client.Do(req)
		release()
		if err != nil {
			return err
		}
		if resp.StatusCode >= 400 {
			derr := decodeError(resp)
			if attempt == 0 && isSessionExpired(derr) {
				c.invalidateSession()
				continue
			}
			return derr
		}
		defer resp.Body.Close()
		if out == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			return nil
		}
		return decodeBody(resp.Body, out)
	}
}

// decodeBody reads a response body through a pooled buffer and
// unmarshals it — a json.Decoder per response would allocate its own
// internal read buffer every call.
func decodeBody(body io.Reader, out any) error {
	buf := reqBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if _, err := buf.ReadFrom(body); err != nil {
		reqBufPool.Put(buf)
		return err
	}
	err := json.Unmarshal(buf.Bytes(), out)
	if buf.Cap() <= maxPooledReqBuf {
		reqBufPool.Put(buf)
	}
	return err
}

func (c *HTTP) Deploy(ctx context.Context, spec api.WorkloadSpec) (*api.Workload, error) {
	var wl api.Workload
	if err := c.do(ctx, http.MethodPost, "/v2/deployments", nil, api.DeployRequest{Spec: spec}, &wl); err != nil {
		return nil, err
	}
	return &wl, nil
}

func (c *HTTP) DeployAsync(ctx context.Context, spec api.WorkloadSpec) (Deployment, error) {
	var ref api.DeploymentRef
	if err := c.do(ctx, http.MethodPost, "/v2/deployments/async", nil, api.DeployRequest{Spec: spec}, &ref); err != nil {
		return nil, err
	}
	return &httpDeployment{c: c, ref: ref}, nil
}

// DeployBatch ships every spec in ONE signed request to
// /v2/deploy/batch — amortizing auth, connection, and codec cost
// across the whole storm — and decodes the positional results back to
// the typed taxonomy.
func (c *HTTP) DeployBatch(ctx context.Context, specs []api.WorkloadSpec) ([]BatchResult, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	var resp api.DeployBatchResponse
	if err := c.do(ctx, http.MethodPost, "/v2/deploy/batch", nil, api.DeployBatchRequest{Specs: specs}, &resp); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(specs) {
		return nil, fmt.Errorf("client: batch returned %d results for %d specs", len(resp.Results), len(specs))
	}
	out := make([]BatchResult, len(resp.Results))
	for i, r := range resp.Results {
		out[i] = BatchResult{Workload: r.Workload, Err: api.Decode(r.Error)}
	}
	return out, nil
}

// Deployment rebuilds a handle for a known deployment ID (learned
// out-of-band, e.g. from another process's DeployAsync). The server
// still decides whether this client's subject may use it.
func (c *HTTP) Deployment(id string) Deployment {
	return &httpDeployment{c: c, ref: api.DeploymentRef{
		ID:    id,
		Poll:  "/v2/deployments/" + id,
		Await: "/v2/deployments/" + id + "/await",
	}}
}

// httpDeployment is the remote future handle.
type httpDeployment struct {
	c   *HTTP
	ref api.DeploymentRef
}

func (d *httpDeployment) ID() string { return d.ref.ID }

func (d *httpDeployment) Status(ctx context.Context) (api.DeploymentStatus, error) {
	var st api.DeploymentStatus
	err := d.c.do(ctx, http.MethodGet, d.ref.Poll, nil, nil, &st)
	return st, err
}

// Await long-polls the await endpoint. Transport failures retry with
// backoff — the deployment keeps running server-side, so reconnecting
// and re-awaiting is always safe.
func (d *httpDeployment) Await(ctx context.Context) (*api.Workload, error) {
	backoff := d.c.backoffMin
	for {
		var st api.DeploymentStatus
		err := d.c.do(ctx, http.MethodGet, d.ref.Await, nil, nil, &st)
		if err == nil {
			return st.Placed, api.Decode(st.Error)
		}
		// Typed control-plane errors (and dead contexts) are final;
		// only transport-level failures retry.
		var we *api.WireError
		if ctx.Err() != nil || errors.As(err, &we) || !isTransportError(err) {
			return nil, err
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if backoff *= 2; backoff > d.c.backoffMax {
			backoff = d.c.backoffMax
		}
	}
}

func (d *httpDeployment) Cancel(ctx context.Context) error {
	return d.c.do(ctx, http.MethodDelete, d.ref.Poll, nil, nil, nil)
}

// isTransportError reports whether the failure happened on the wire
// (connection refused/reset, stream killed) rather than in the
// control plane.
func isTransportError(err error) bool {
	var ue *url.Error
	return errors.As(err, &ue) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF)
}

// Watch streams lifecycle events over SSE. A dropped stream reconnects
// with exponential backoff (reset after the first event of a healthy
// connection), reapplying the same selector and presenting the last
// seen event id as Last-Event-ID so the server replays what was
// published while disconnected (bounded by its replay buffer). Only
// transport failures reconnect: a control-plane refusal on reconnect
// is permanent — the channel closes and the error goes to the
// WithStreamErrorHandler callback, if any.
func (c *HTTP) Watch(ctx context.Context, sel api.WatchSelector) (<-chan api.LifecycleEvent, error) {
	query := url.Values{}
	if sel.Tenant != "" {
		query.Set("tenant", sel.Tenant)
	}
	if sel.Workload != "" {
		query.Set("workload", sel.Workload)
	}
	if sel.TerminalOnly {
		query.Set("terminal", "true")
	}
	// Establish the first connection synchronously so selector typos and
	// auth failures surface as errors, not silent empty streams.
	resp, err := c.openStream(ctx, query, 0)
	if err != nil {
		return nil, err
	}
	out := make(chan api.LifecycleEvent)
	go func() {
		defer close(out)
		backoff := c.backoffMin
		var lastID uint64
		for {
			healthy := c.pumpStream(ctx, resp, out, &lastID)
			if ctx.Err() != nil {
				return
			}
			if healthy {
				backoff = c.backoffMin
			}
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return
			}
			if backoff *= 2; backoff > c.backoffMax {
				backoff = c.backoffMax
			}
			resp, err = c.openStream(ctx, query, lastID)
			if err != nil {
				resp = nil
				if ctx.Err() == nil && !isTransportError(err) {
					// The control plane refused the reconnect (revoked
					// cert, RBAC change, shutdown): retrying cannot
					// succeed. End the stream rather than spin silently.
					if c.streamErr != nil {
						c.streamErr(err)
					}
					return
				}
				continue
			}
		}
	}()
	return out, nil
}

func (c *HTTP) openStream(ctx context.Context, query url.Values, lastID uint64) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		req, release, err := c.newRequest(ctx, http.MethodGet, "/v2/watch", query, nil)
		if err != nil {
			return nil, err
		}
		if lastID > 0 {
			req.Header.Set("Last-Event-ID", strconv.FormatUint(lastID, 10))
		}
		resp, err := c.client.Do(req)
		release()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			derr := decodeError(resp)
			if attempt == 0 && isSessionExpired(derr) {
				c.invalidateSession()
				continue
			}
			return nil, derr
		}
		return resp, nil
	}
}

// pumpStream forwards one connection's events, tracking the server's
// `id:` fields in lastID for resume; it returns true when at least one
// event arrived (a healthy stream, resetting the backoff).
func (c *HTTP) pumpStream(ctx context.Context, resp *http.Response, out chan<- api.LifecycleEvent, lastID *uint64) bool {
	if resp == nil {
		return false
	}
	defer resp.Body.Close()
	delivered := false
	var pendingID uint64
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if id, ok := strings.CutPrefix(line, "id: "); ok {
			pendingID, _ = strconv.ParseUint(id, 10, 64)
			continue
		}
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev api.LifecycleEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			continue
		}
		select {
		case out <- ev:
			delivered = true
			if pendingID > 0 {
				*lastID = pendingID
			}
		case <-ctx.Done():
			return delivered
		}
	}
	return delivered
}

func (c *HTTP) AddNode(ctx context.Context, cluster, name string, capacity api.Resources) error {
	return c.do(ctx, http.MethodPost, "/v2/nodes", nil, api.AddNodeRequest{Name: name, Cluster: cluster, Capacity: capacity}, nil)
}

func (c *HTTP) Nodes(ctx context.Context, probe *api.Resources, cluster string) ([]api.NodeStatus, error) {
	query := url.Values{}
	if probe != nil {
		query.Set("probeCpu", strconv.Itoa(probe.CPUMilli))
		query.Set("probeMem", strconv.Itoa(probe.MemoryMB))
	}
	if cluster != "" {
		query.Set("cluster", cluster)
	}
	var out []api.NodeStatus
	if err := c.do(ctx, http.MethodGet, "/v2/nodes", query, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *HTTP) Cordon(ctx context.Context, node string) error {
	return c.do(ctx, http.MethodPost, "/v2/nodes/"+url.PathEscape(node)+"/cordon", nil, nil, nil)
}

func (c *HTTP) Uncordon(ctx context.Context, node string) error {
	return c.do(ctx, http.MethodPost, "/v2/nodes/"+url.PathEscape(node)+"/uncordon", nil, nil, nil)
}

func (c *HTTP) Drain(ctx context.Context, node string) (*api.DrainResult, error) {
	var res api.DrainResult
	if err := c.do(ctx, http.MethodPost, "/v2/nodes/"+url.PathEscape(node)+"/drain", nil, nil, &res); err != nil {
		return nil, err
	}
	// A drain that stopped early ships its partial progress with the
	// typed error embedded; surface both halves like the local client.
	return &res, api.Decode(res.Error)
}

func (c *HTTP) FailNode(ctx context.Context, node string) (*api.FailoverResult, error) {
	var res api.FailoverResult
	if err := c.do(ctx, http.MethodPost, "/v2/nodes/"+url.PathEscape(node)+"/fail", nil, nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

func (c *HTTP) AttachONU(ctx context.Context, node, serial string) error {
	return c.do(ctx, http.MethodPost, "/v2/nodes/"+url.PathEscape(node)+"/onus", nil, api.AttachONURequest{Serial: serial}, nil)
}

func (c *HTTP) Incidents(ctx context.Context) (api.IncidentCounts, error) {
	var out api.IncidentCounts
	if err := c.do(ctx, http.MethodGet, "/v2/incidents", nil, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *HTTP) Ledger(ctx context.Context) (api.Ledger, error) {
	var out api.Ledger
	if err := c.do(ctx, http.MethodGet, "/v2/ledger", nil, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *HTTP) Slots(ctx context.Context, cluster string) (api.SlotsReport, error) {
	query := url.Values{}
	if cluster != "" {
		query.Set("cluster", cluster)
	}
	var out api.SlotsReport
	err := c.do(ctx, http.MethodGet, "/v2/slots", query, nil, &out)
	return out, err
}

func (c *HTTP) Clusters(ctx context.Context) ([]api.ClusterInfo, error) {
	var out []api.ClusterInfo
	if err := c.do(ctx, http.MethodGet, "/v2/clusters", nil, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *HTTP) Evacuate(ctx context.Context, cluster string) (*api.EvacuationResult, error) {
	var out api.EvacuationResult
	if err := c.do(ctx, http.MethodPost, "/v2/clusters/"+url.PathEscape(cluster)+"/evacuate", nil, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Close releases idle connections; the remote platform is unaffected.
func (c *HTTP) Close() error {
	c.client.CloseIdleConnections()
	return nil
}
