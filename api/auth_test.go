package api

import (
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"genio/internal/pki"
)

func testCA(t *testing.T) *pki.CA {
	t.Helper()
	ca, err := pki.NewCA("test-ca")
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	return ca
}

func TestSignVerifyRoundTrip(t *testing.T) {
	ca := testCA(t)
	id, err := ca.Issue("operator", pki.RoleService)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	req := httptest.NewRequest("POST", "http://geniod/v2/deployments", nil)
	if err := SignRequest(req, id); err != nil {
		t.Fatalf("SignRequest: %v", err)
	}
	subject, err := VerifyRequest(req, ca)
	if err != nil {
		t.Fatalf("VerifyRequest: %v", err)
	}
	if subject != "operator" {
		t.Fatalf("subject = %q, want operator", subject)
	}
}

func TestVerifyRejectsMissingHeaders(t *testing.T) {
	ca := testCA(t)
	req := httptest.NewRequest("GET", "http://geniod/v2/nodes", nil)
	if _, err := VerifyRequest(req, ca); !errors.Is(err, ErrUnauthenticated) {
		t.Fatalf("err = %v, want ErrUnauthenticated", err)
	}
}

func TestVerifyRejectsForeignCA(t *testing.T) {
	ours, theirs := testCA(t), testCA(t)
	id, err := theirs.Issue("intruder", pki.RoleService)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	req := httptest.NewRequest("GET", "http://geniod/v2/nodes", nil)
	if err := SignRequest(req, id); err != nil {
		t.Fatalf("SignRequest: %v", err)
	}
	if _, err := VerifyRequest(req, ours); !errors.Is(err, ErrUnauthenticated) {
		t.Fatalf("err = %v, want ErrUnauthenticated", err)
	}
}

func TestVerifyRejectsWrongRole(t *testing.T) {
	ca := testCA(t)
	id, err := ca.Issue("olt-01", pki.RoleOLT)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	req := httptest.NewRequest("GET", "http://geniod/v2/nodes", nil)
	if err := SignRequest(req, id); err != nil {
		t.Fatalf("SignRequest: %v", err)
	}
	if _, err := VerifyRequest(req, ca); !errors.Is(err, ErrUnauthenticated) {
		t.Fatalf("err = %v, want ErrUnauthenticated", err)
	}
}

func TestVerifyRejectsTamperedRequestLine(t *testing.T) {
	ca := testCA(t)
	id, err := ca.Issue("operator", pki.RoleService)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	req := httptest.NewRequest("POST", "http://geniod/v2/deployments", nil)
	if err := SignRequest(req, id); err != nil {
		t.Fatalf("SignRequest: %v", err)
	}
	// Replay the signed headers against a different endpoint.
	replay := httptest.NewRequest("POST", "http://geniod/v2/nodes/olt-01/drain", nil)
	replay.Header = req.Header.Clone()
	if _, err := VerifyRequest(replay, ca); !errors.Is(err, ErrUnauthenticated) {
		t.Fatalf("err = %v, want ErrUnauthenticated (replay must fail)", err)
	}
}

func TestVerifyRejectsTamperedBody(t *testing.T) {
	ca := testCA(t)
	id, err := ca.Issue("operator", pki.RoleService)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	req := httptest.NewRequest("POST", "http://geniod/v2/deployments",
		strings.NewReader(`{"spec":{"name":"web"}}`))
	if err := SignRequest(req, id); err != nil {
		t.Fatalf("SignRequest: %v", err)
	}
	// Capture the signed headers, replay with an attacker-chosen body.
	replay := httptest.NewRequest("POST", "http://geniod/v2/deployments",
		strings.NewReader(`{"spec":{"name":"cryptominer"}}`))
	replay.Header = req.Header.Clone()
	if _, err := VerifyRequest(replay, ca); !errors.Is(err, ErrUnauthenticated) {
		t.Fatalf("err = %v, want ErrUnauthenticated (body substitution must fail)", err)
	}
	// The untampered request still verifies, and the body survives
	// verification intact for the handler.
	if _, err := VerifyRequest(req, ca); err != nil {
		t.Fatalf("VerifyRequest: %v", err)
	}
	body, _ := io.ReadAll(req.Body)
	if string(body) != `{"spec":{"name":"web"}}` {
		t.Fatalf("body consumed by verification: %q", body)
	}
}

func TestVerifyRejectsTamperedQuery(t *testing.T) {
	ca := testCA(t)
	id, err := ca.Issue("operator", pki.RoleService)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	req := httptest.NewRequest("GET", "http://geniod/v2/watch?tenant=acme", nil)
	if err := SignRequest(req, id); err != nil {
		t.Fatalf("SignRequest: %v", err)
	}
	replay := httptest.NewRequest("GET", "http://geniod/v2/watch?tenant=rival", nil)
	replay.Header = req.Header.Clone()
	if _, err := VerifyRequest(replay, ca); !errors.Is(err, ErrUnauthenticated) {
		t.Fatalf("err = %v, want ErrUnauthenticated (query substitution must fail)", err)
	}
}

func TestVerifyRejectsStaleDate(t *testing.T) {
	ca := testCA(t)
	id, err := ca.Issue("operator", pki.RoleService)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	req := httptest.NewRequest("GET", "http://geniod/v2/nodes", nil)
	req.Header.Set(HeaderDate, time.Now().Add(-2*MaxClockSkew).UTC().Format(time.RFC3339))
	if err := SignRequest(req, id); err != nil {
		t.Fatalf("SignRequest: %v", err)
	}
	if _, err := VerifyRequest(req, ca); !errors.Is(err, ErrUnauthenticated) {
		t.Fatalf("err = %v, want ErrUnauthenticated (stale date must fail)", err)
	}
}

func TestVerifierRejectsNonceReplay(t *testing.T) {
	ca := testCA(t)
	id, err := ca.Issue("operator", pki.RoleService)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	req := httptest.NewRequest("POST", "http://geniod/v2/deployments", nil)
	if err := SignRequest(req, id); err != nil {
		t.Fatalf("SignRequest: %v", err)
	}
	v := NewVerifier(ca)
	if _, err := v.Verify(req); err != nil {
		t.Fatalf("first Verify: %v", err)
	}
	// Identical request captured and replayed: the date is still fresh,
	// but the nonce has been seen.
	if _, err := v.Verify(req); !errors.Is(err, ErrUnauthenticated) {
		t.Fatalf("err = %v, want ErrUnauthenticated (verbatim replay must fail)", err)
	}
	// A fresh signature (new nonce) from the same identity still works.
	fresh := httptest.NewRequest("POST", "http://geniod/v2/deployments", nil)
	if err := SignRequest(fresh, id); err != nil {
		t.Fatalf("SignRequest: %v", err)
	}
	if _, err := v.Verify(fresh); err != nil {
		t.Fatalf("fresh request after replay rejection: %v", err)
	}
}

// TestNonceCacheBoundedUnderFlood: a flood of unique nonces — each one
// validly signed, so it passes every other check — must not grow the
// replay cache past its capacity, and must NOT be able to flush nonces
// the verifier already promised to remember (eviction would let the
// flooder replay any captured request inside the skew window). A full
// cache rejects instead; capacity frees as entries expire.
func TestNonceCacheBoundedUnderFlood(t *testing.T) {
	const capacity = 64
	now := time.Now()
	clock := func() time.Time { return now }
	v := NewVerifier(testCA(t), WithNonceCapacity(capacity), WithVerifierClock(clock))
	for i := 0; i < capacity; i++ {
		if err := v.checkNonce(fmt.Sprintf("nonce-%04d", i)); err != nil {
			t.Fatalf("unique nonce %d rejected below cap: %v", i, err)
		}
	}
	// Flooding past the cap is shed, not absorbed.
	for i := capacity; i < 2*capacity; i++ {
		if err := v.checkNonce(fmt.Sprintf("nonce-%04d", i)); !errors.Is(err, ErrReplayCacheFull) {
			t.Fatalf("nonce %d past cap = %v, want ErrReplayCacheFull", i, err)
		}
	}
	v.mu.Lock()
	seen, order := len(v.seen), len(v.order)
	v.mu.Unlock()
	if seen > capacity || order > capacity {
		t.Fatalf("cache grew past cap: seen=%d order=%d, cap=%d", seen, order, capacity)
	}
	// Replay protection survives the flood: every pre-flood nonce —
	// including the oldest — is still rejected as a duplicate, not
	// accepted via a flushed cache.
	if err := v.checkNonce("nonce-0000"); !errors.Is(err, ErrUnauthenticated) || errors.Is(err, ErrReplayCacheFull) {
		t.Fatalf("oldest nonce replay = %v, want duplicate rejection", err)
	}
	// Once the window passes, expired entries free capacity again: the
	// full-cache rejection is flood-scoped, not a permanent outage.
	now = now.Add(2*MaxClockSkew + time.Second)
	if err := v.checkNonce("fresh-after-window"); err != nil {
		t.Fatalf("nonce after expiry window: %v", err)
	}
}

// TestVerifyConcurrentFlood exercises the full Verify path from many
// goroutines at once (run under -race): concurrent signature checks,
// nonce bookkeeping, and full-cache load shedding must be data-race
// free, admit exactly the cache's capacity, and reject the rest with
// ErrReplayCacheFull.
func TestVerifyConcurrentFlood(t *testing.T) {
	ca := testCA(t)
	id, err := ca.Issue("operator", pki.RoleService)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	const capacity = 32
	v := NewVerifier(ca, WithNonceCapacity(capacity))
	const workers, perWorker = 8, 40
	var wg sync.WaitGroup
	var admitted, shed atomic.Int64
	errs := make(chan error, workers*perWorker)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				req := httptest.NewRequest("GET", "http://geniod/v2/nodes", nil)
				if err := SignRequest(req, id); err != nil {
					errs <- err
					return
				}
				switch _, err := v.Verify(req); {
				case err == nil:
					admitted.Add(1)
				case errors.Is(err, ErrReplayCacheFull):
					shed.Add(1)
				default:
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent Verify: %v", err)
	}
	// No expiry happens inside the test's runtime, so exactly the
	// cache's capacity is admitted; everything else is shed.
	if got := admitted.Load(); got != capacity {
		t.Fatalf("admitted %d requests, want exactly %d", got, capacity)
	}
	if got := shed.Load(); got != workers*perWorker-capacity {
		t.Fatalf("shed %d requests, want %d", got, workers*perWorker-capacity)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.seen) > capacity || len(v.order) > capacity {
		t.Fatalf("cache exceeded cap under concurrency: seen=%d order=%d", len(v.seen), len(v.order))
	}
}

func TestVerifyRejectsRevoked(t *testing.T) {
	ca := testCA(t)
	id, err := ca.Issue("operator", pki.RoleService)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	ca.Revoke(id.Certificate.SerialNumber)
	req := httptest.NewRequest("GET", "http://geniod/v2/nodes", nil)
	if err := SignRequest(req, id); err != nil {
		t.Fatalf("SignRequest: %v", err)
	}
	if _, err := VerifyRequest(req, ca); !errors.Is(err, ErrUnauthenticated) {
		t.Fatalf("err = %v, want ErrUnauthenticated", err)
	}
}

func TestIdentityFileRoundTrip(t *testing.T) {
	ca := testCA(t)
	id, err := ca.Issue("genioctl", pki.RoleService)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	path := filepath.Join(t.TempDir(), "identity.json")
	if err := SaveIdentity(path, id); err != nil {
		t.Fatalf("SaveIdentity: %v", err)
	}
	back, err := LoadIdentity(path)
	if err != nil {
		t.Fatalf("LoadIdentity: %v", err)
	}
	if back.Certificate.Subject != "genioctl" {
		t.Fatalf("subject = %q", back.Certificate.Subject)
	}
	// The loaded identity must still sign verifiable requests.
	req := httptest.NewRequest("GET", "http://geniod/v2/ledger", nil)
	if err := SignRequest(req, back); err != nil {
		t.Fatalf("SignRequest: %v", err)
	}
	if _, err := VerifyRequest(req, ca); err != nil {
		t.Fatalf("VerifyRequest after reload: %v", err)
	}
}

func TestUnmarshalIdentityRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalIdentity([]byte("{}")); err == nil {
		t.Fatal("want error for empty identity")
	}
	if _, err := UnmarshalIdentity([]byte("not json")); err == nil {
		t.Fatal("want error for non-JSON")
	}
}

// --- session (HMAC) path -------------------------------------------------
//
// The session path must preserve every guarantee the Ed25519 path
// gives: the same canonical string is MACed, the same skew window
// applies, and the same nonce cache rejects verbatim replay. These
// tests mirror the per-request-signature battery above on the
// handshake-issued credential.

// sessionFixture mints a verifier and an issued session.
func sessionFixture(t *testing.T, opts ...VerifierOption) (*Verifier, *Session) {
	t.Helper()
	v := NewVerifier(testCA(t), opts...)
	grant, err := v.IssueSession("operator")
	if err != nil {
		t.Fatalf("IssueSession: %v", err)
	}
	return v, grant.Session()
}

func TestSessionSignVerifyRoundTrip(t *testing.T) {
	v, s := sessionFixture(t)
	req := httptest.NewRequest("POST", "http://geniod/v2/deployments",
		strings.NewReader(`{"spec":{"name":"web"}}`))
	if err := SignRequestSession(req, s); err != nil {
		t.Fatalf("SignRequestSession: %v", err)
	}
	if req.Header.Get(HeaderCertificate) != "" {
		t.Fatalf("session request must not carry a certificate")
	}
	subject, err := v.Verify(req)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if subject != "operator" {
		t.Fatalf("subject = %q, want operator", subject)
	}
}

func TestSessionRejectsTamperedRequestLine(t *testing.T) {
	v, s := sessionFixture(t)
	req := httptest.NewRequest("POST", "http://geniod/v2/deployments", nil)
	if err := SignRequestSession(req, s); err != nil {
		t.Fatalf("SignRequestSession: %v", err)
	}
	replay := httptest.NewRequest("POST", "http://geniod/v2/nodes/olt-01/drain", nil)
	replay.Header = req.Header.Clone()
	if _, err := v.Verify(replay); !errors.Is(err, ErrUnauthenticated) {
		t.Fatalf("err = %v, want ErrUnauthenticated (cross-endpoint replay must fail)", err)
	}
}

func TestSessionRejectsTamperedBody(t *testing.T) {
	v, s := sessionFixture(t)
	req := httptest.NewRequest("POST", "http://geniod/v2/deployments",
		strings.NewReader(`{"spec":{"name":"web"}}`))
	if err := SignRequestSession(req, s); err != nil {
		t.Fatalf("SignRequestSession: %v", err)
	}
	tampered := httptest.NewRequest("POST", "http://geniod/v2/deployments",
		strings.NewReader(`{"spec":{"name":"backdoor"}}`))
	tampered.Header = req.Header.Clone()
	if _, err := v.Verify(tampered); !errors.Is(err, ErrUnauthenticated) {
		t.Fatalf("err = %v, want ErrUnauthenticated (body substitution must fail)", err)
	}
}

func TestSessionRejectsTamperedQuery(t *testing.T) {
	v, s := sessionFixture(t)
	req := httptest.NewRequest("GET", "http://geniod/v2/nodes?cluster=edge", nil)
	if err := SignRequestSession(req, s); err != nil {
		t.Fatalf("SignRequestSession: %v", err)
	}
	tampered := httptest.NewRequest("GET", "http://geniod/v2/nodes?cluster=core", nil)
	tampered.Header = req.Header.Clone()
	if _, err := v.Verify(tampered); !errors.Is(err, ErrUnauthenticated) {
		t.Fatalf("err = %v, want ErrUnauthenticated (query substitution must fail)", err)
	}
}

func TestSessionRejectsStaleDate(t *testing.T) {
	v, s := sessionFixture(t)
	req := httptest.NewRequest("GET", "http://geniod/v2/nodes", nil)
	req.Header.Set(HeaderDate, time.Now().Add(-2*MaxClockSkew).UTC().Format(time.RFC3339))
	if err := SignRequestSession(req, s); err != nil {
		t.Fatalf("SignRequestSession: %v", err)
	}
	if _, err := v.Verify(req); !errors.Is(err, ErrUnauthenticated) {
		t.Fatalf("err = %v, want ErrUnauthenticated (stale date must fail)", err)
	}
}

func TestSessionRejectsNonceReplay(t *testing.T) {
	v, s := sessionFixture(t)
	req := httptest.NewRequest("POST", "http://geniod/v2/deployments", nil)
	if err := SignRequestSession(req, s); err != nil {
		t.Fatalf("SignRequestSession: %v", err)
	}
	if _, err := v.Verify(req); err != nil {
		t.Fatalf("first Verify: %v", err)
	}
	if _, err := v.Verify(req); !errors.Is(err, ErrUnauthenticated) {
		t.Fatalf("err = %v, want ErrUnauthenticated (verbatim replay must fail)", err)
	}
	// A fresh MAC (new nonce) on the same session still works.
	fresh := httptest.NewRequest("POST", "http://geniod/v2/deployments", nil)
	if err := SignRequestSession(fresh, s); err != nil {
		t.Fatalf("SignRequestSession: %v", err)
	}
	if _, err := v.Verify(fresh); err != nil {
		t.Fatalf("fresh request after replay rejection: %v", err)
	}
}

// TestSessionSharedNonceCacheAcrossPaths: a nonce consumed by an
// Ed25519-signed request is also spent for the session path (and vice
// versa) — the replay cache is one pool, not per-path, so switching
// auth modes cannot resurrect a captured nonce.
func TestSessionSharedNonceCacheAcrossPaths(t *testing.T) {
	ca := testCA(t)
	v := NewVerifier(ca)
	id, err := ca.Issue("operator", pki.RoleService)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	grant, err := v.IssueSession("operator")
	if err != nil {
		t.Fatalf("IssueSession: %v", err)
	}
	signed := httptest.NewRequest("GET", "http://geniod/v2/nodes", nil)
	signed.Header.Set(HeaderNonce, "shared-nonce-1")
	if err := SignRequest(signed, id); err != nil {
		t.Fatalf("SignRequest: %v", err)
	}
	if _, err := v.Verify(signed); err != nil {
		t.Fatalf("ed25519 Verify: %v", err)
	}
	viaSession := httptest.NewRequest("GET", "http://geniod/v2/nodes", nil)
	viaSession.Header.Set(HeaderNonce, "shared-nonce-1")
	if err := SignRequestSession(viaSession, grant.Session()); err != nil {
		t.Fatalf("SignRequestSession: %v", err)
	}
	if _, err := v.Verify(viaSession); !errors.Is(err, ErrUnauthenticated) {
		t.Fatalf("err = %v, want ErrUnauthenticated (nonce must be spent across paths)", err)
	}
}

func TestSessionExpiryAndUnknownToken(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	v, s := sessionFixture(t, WithVerifierClock(clock), WithSessionTTL(time.Minute))
	req := httptest.NewRequest("GET", "http://geniod/v2/nodes", nil)
	if err := SignRequestSession(req, s); err != nil {
		t.Fatalf("SignRequestSession: %v", err)
	}
	if _, err := v.Verify(req); err != nil {
		t.Fatalf("Verify before expiry: %v", err)
	}
	// Past the TTL the token is gone — distinctly recoverable
	// (ErrSessionExpired), so clients re-handshake instead of failing.
	now = now.Add(2 * time.Minute)
	late := httptest.NewRequest("GET", "http://geniod/v2/nodes", nil)
	late.Header.Set(HeaderDate, now.UTC().Format(time.RFC3339))
	if err := SignRequestSession(late, s); err != nil {
		t.Fatalf("SignRequestSession: %v", err)
	}
	if _, err := v.Verify(late); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("err = %v, want ErrSessionExpired", err)
	}
	// A token the verifier never issued reports the same condition.
	unknown := httptest.NewRequest("GET", "http://geniod/v2/nodes", nil)
	if err := SignRequestSession(unknown, &Session{Token: "no-such-token", Secret: s.Secret}); err != nil {
		t.Fatalf("SignRequestSession: %v", err)
	}
	if _, err := v.Verify(unknown); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("unknown token err = %v, want ErrSessionExpired", err)
	}
}

func TestSessionRejectsWrongSecret(t *testing.T) {
	v, s := sessionFixture(t)
	forged := &Session{Token: s.Token, Secret: []byte("not-the-granted-secret--------!!"), Subject: s.Subject}
	req := httptest.NewRequest("GET", "http://geniod/v2/nodes", nil)
	if err := SignRequestSession(req, forged); err != nil {
		t.Fatalf("SignRequestSession: %v", err)
	}
	if _, err := v.Verify(req); !errors.Is(err, ErrUnauthenticated) || errors.Is(err, ErrSessionExpired) {
		t.Fatalf("err = %v, want plain ErrUnauthenticated (a bad MAC on a live token is an attack, not expiry)", err)
	}
}

// TestSessionCapacityBounded: the session table refuses new grants at
// capacity (clients just stay on Ed25519), and expired entries free
// capacity again.
func TestSessionCapacityBounded(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	v := NewVerifier(testCA(t), WithVerifierClock(clock), WithSessionCapacity(2), WithSessionTTL(time.Minute))
	for i := 0; i < 2; i++ {
		if _, err := v.IssueSession("operator"); err != nil {
			t.Fatalf("IssueSession %d: %v", i, err)
		}
	}
	if _, err := v.IssueSession("operator"); !errors.Is(err, ErrUnauthenticated) {
		t.Fatalf("err = %v, want refusal at capacity", err)
	}
	now = now.Add(2 * time.Minute)
	if _, err := v.IssueSession("operator"); err != nil {
		t.Fatalf("IssueSession after expiry pruning: %v", err)
	}
}
