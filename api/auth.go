package api

// Request authentication. The platform's PKI issues Ed25519 identity
// certificates (internal/pki) rather than x509, so the wire cannot use
// stock crypto/tls mutual TLS; instead every request carries a
// detached signature in the mTLS role: the client attaches its
// certificate and signs the request with its private key, the server
// verifies both against the cluster CA and extracts the certificate's
// subject for RBAC. Same trust chain, same per-subject authentication
// — just carried in headers instead of the handshake.
//
// The signature covers method, path, canonical query string, date,
// nonce, and a SHA-256 hash of the body, so a captured request cannot
// be replayed against another endpoint, with altered parameters, or
// with a substituted body. Replay of the request verbatim is stopped
// in depth: the date must fall inside a small clock-skew window, and a
// stateful Verifier additionally remembers nonces seen inside that
// window and rejects duplicates.

import (
	"bytes"
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"io"
	"net/http"
	"net/url"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"genio/internal/pki"
)

// Auth headers.
const (
	// HeaderCertificate carries the client's base64-encoded JSON
	// identity certificate.
	HeaderCertificate = "X-Genio-Certificate"
	// HeaderSignature carries the base64-encoded Ed25519 signature over
	// the request (see signingPayload).
	HeaderSignature = "X-Genio-Signature"
	// HeaderDate is the client's request timestamp (RFC3339); it is
	// bound into the signature and must fall within MaxClockSkew of the
	// server's clock.
	HeaderDate = "X-Genio-Date"
	// HeaderNonce is a per-request random value bound into the
	// signature; a stateful Verifier rejects a nonce it has already
	// seen inside the clock-skew window.
	HeaderNonce = "X-Genio-Nonce"
	// HeaderSubject names the caller in anonymous (legacy-posture)
	// mode, where no certificate is presented. Ignored whenever a
	// certificate is present: the certificate's subject wins.
	HeaderSubject = "X-Genio-Subject"
	// HeaderSession carries a session token id issued by POST
	// /v2/session. When present, HeaderSignature holds an HMAC-SHA256
	// over the same canonical string instead of an Ed25519 signature —
	// the symmetric steady-state of the handshake-bootstrapped session
	// (see Verifier.IssueSession).
	HeaderSession = "X-Genio-Session"
)

// MaxClockSkew is how far a request's date may drift from the
// verifier's clock before the request is rejected as stale; it also
// bounds how long a nonce is remembered.
const MaxClockSkew = 2 * time.Minute

// maxSignedBody bounds how much body a verifier will read to check the
// body hash. Control-plane payloads are small JSON documents; anything
// larger is rejected rather than hashed unbounded.
const maxSignedBody = 4 << 20

// DefaultNonceCapacity bounds the replay cache by entry count. Time
// alone is not enough: every remembered nonce lives a full 2×skew, so
// an attacker flooding unique nonces (each request signed by any valid
// identity — including its own) could grow the cache without limit
// inside one window. At the cap, further requests are REJECTED rather
// than old nonces evicted: evicting would let a flood flush the cache
// and then replay any captured request still inside the skew window,
// turning the memory bound into a replay-protection bypass. Rejecting
// degrades a flood into self-inflicted unavailability for the
// flooding window instead, and every remembered nonce keeps its full
// 2×skew lifetime.
const DefaultNonceCapacity = 65536

// ErrUnauthenticated reports a request whose identity could not be
// established (missing or invalid certificate/signature, stale date,
// replayed nonce).
var ErrUnauthenticated = errors.New("api: request not authenticated")

// ErrReplayCacheFull reports a request refused because the verifier's
// nonce cache is at capacity — under a unique-nonce flood the verifier
// sheds load rather than forgetting nonces it promised to remember.
// Unwraps to ErrUnauthenticated; capacity frees as entries expire.
var ErrReplayCacheFull = fmt.Errorf("%w: nonce replay cache full, retry later", ErrUnauthenticated)

// ErrSessionExpired reports a request carrying a session token the
// verifier does not hold (expired, evicted, or never issued). Clients
// recover by re-running the Ed25519 handshake (POST /v2/session) and
// retrying; the condition is advisory, not an attack signal. Unwraps to
// ErrUnauthenticated.
var ErrSessionExpired = fmt.Errorf("%w: session expired or unknown", ErrUnauthenticated)

// DefaultSessionTTL is how long an issued session stays valid. Short
// enough that a leaked secret has a bounded window, long enough that a
// deploy storm re-keys rarely (re-key is one Ed25519 round trip).
const DefaultSessionTTL = 10 * time.Minute

// DefaultSessionCapacity bounds live sessions. Unlike the nonce cache,
// hitting the cap is not a security decision — a refused handshake just
// leaves the client on per-request Ed25519 signing, which is always
// accepted — so the cap only bounds memory.
const DefaultSessionCapacity = 4096

// sessionSecretSize is the HMAC-SHA256 key length for session secrets.
const sessionSecretSize = 32

// signingPayload is the byte string the client signs: method, path,
// canonical (encoded) query string, date, nonce, and the hex SHA-256
// of the body, newline-joined. Binding all request-controlled inputs
// means a captured signature authorizes exactly one request shape.
func signingPayload(method, path, query, date, nonce, bodyHash string) []byte {
	n := len(method) + len(path) + len(query) + len(date) + len(nonce) + len(bodyHash) + 5
	return appendSigningPayload(make([]byte, 0, n), method, path, query, date, nonce, bodyHash)
}

// appendSigningPayload appends the canonical signing string to dst —
// the allocation-free form signingPayload and the pooled MAC path
// share, so both produce byte-identical payloads.
func appendSigningPayload(dst []byte, method, path, query, date, nonce, bodyHash string) []byte {
	dst = append(dst, method...)
	dst = append(dst, '\n')
	dst = append(dst, path...)
	dst = append(dst, '\n')
	dst = append(dst, query...)
	dst = append(dst, '\n')
	dst = append(dst, date...)
	dst = append(dst, '\n')
	dst = append(dst, nonce...)
	dst = append(dst, '\n')
	dst = append(dst, bodyHash...)
	return dst
}

// payloadPool recycles signing-payload scratch buffers: every signed
// request (both ends) builds one canonical string, so a deploy storm
// would otherwise allocate it thousands of times per second.
var payloadPool = sync.Pool{New: func() any { b := make([]byte, 0, 192); return &b }}

// macPool recycles keyed HMAC-SHA256 states for one secret. hmac.New
// costs several allocations (two hash states plus key pads) and every
// steady-state request MACs once per end, so sessions keep reset-able
// keyed states for their lifetime instead of rebuilding them.
type macPool struct{ pool sync.Pool }

func newMACPool(secret []byte) *macPool {
	p := &macPool{}
	p.pool.New = func() any { return hmac.New(sha256.New, secret) }
	return p
}

// mac computes the session MAC over the canonical signing string using
// pooled HMAC state and a pooled payload buffer.
func (p *macPool) mac(method, path, query, date, nonce, bodyHash string) []byte {
	bp := payloadPool.Get().(*[]byte)
	payload := appendSigningPayload((*bp)[:0], method, path, query, date, nonce, bodyHash)
	m := p.pool.Get().(hash.Hash)
	m.Reset()
	m.Write(payload)
	sum := m.Sum(nil)
	p.pool.Put(m)
	*bp = payload[:0]
	payloadPool.Put(bp)
	return sum
}

// canonicalQuery is the query-string form bound into signatures. The
// empty-query fast path matters: url.Query() materializes a Values map
// even for a bare path, and most control calls have no query at all.
func canonicalQuery(u *url.URL) string {
	if u.RawQuery == "" {
		return ""
	}
	return u.Query().Encode()
}

// datestamp caches the RFC3339 form of the current second. Signing
// dates only need second precision, so a deploy storm formats once per
// second instead of once per request.
type datestamp struct {
	sec int64
	str string
}

var lastDate atomic.Pointer[datestamp]

func requestDate() string {
	now := time.Now()
	sec := now.Unix()
	if d := lastDate.Load(); d != nil && d.sec == sec {
		return d.str
	}
	d := &datestamp{sec: sec, str: now.UTC().Format(time.RFC3339)}
	lastDate.Store(d)
	return d.str
}

// newNonce mints the per-request random hex nonce.
func newNonce() (string, error) {
	var raw [12]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return "", fmt.Errorf("api: nonce: %w", err)
	}
	var dst [24]byte
	hex.Encode(dst[:], raw[:])
	return string(dst[:]), nil
}

// hexSum renders a SHA-256 digest as lowercase hex in one allocation.
func hexSum(sum []byte) string {
	var dst [2 * sha256.Size]byte
	hex.Encode(dst[:2*len(sum)], sum)
	return string(dst[:2*len(sum)])
}

// b64MAC renders a 32-byte MAC as standard base64 in one allocation.
func b64MAC(sum []byte) string {
	var dst [44]byte
	base64.StdEncoding.Encode(dst[:], sum)
	return string(dst[:base64.StdEncoding.EncodedLen(len(sum))])
}

// bodyHashPool recycles the SHA-256 states and copy buffers hashBody
// streams re-readable bodies through.
var (
	bodyHashPool = sync.Pool{New: func() any { return sha256.New() }}
	bodyBufPool  = sync.Pool{New: func() any { b := make([]byte, 16*1024); return &b }}
)

// hashBody returns the hex SHA-256 of the request body without
// consuming it. A re-readable body (GetBody — the client side) is
// streamed through a pooled hash state with a pooled copy buffer; a
// one-shot body (the server side) must be read fully anyway so the
// handler still gets one, and is restored afterwards. An absent body
// hashes as the empty string.
func hashBody(req *http.Request) (string, error) {
	if req.Body == nil || req.Body == http.NoBody {
		sum := sha256.Sum256(nil)
		return hexSum(sum[:]), nil
	}
	if req.GetBody != nil {
		fresh, err := req.GetBody()
		if err != nil {
			return "", fmt.Errorf("api: reread body: %w", err)
		}
		defer fresh.Close()
		h := bodyHashPool.Get().(hash.Hash)
		h.Reset()
		bp := bodyBufPool.Get().(*[]byte)
		defer bodyBufPool.Put(bp)
		defer bodyHashPool.Put(h)
		buf := *bp
		var total int64
		for {
			n, rerr := fresh.Read(buf)
			if n > 0 {
				if total += int64(n); total > maxSignedBody {
					return "", fmt.Errorf("api: body exceeds %d-byte signing limit", maxSignedBody)
				}
				h.Write(buf[:n])
			}
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				return "", fmt.Errorf("api: read body: %w", rerr)
			}
		}
		var sum [sha256.Size]byte
		h.Sum(sum[:0])
		return hexSum(sum[:]), nil
	}
	// One-shot body: we consume the only copy, so keep the bytes and
	// hand the handler an equivalent reader.
	data, err := io.ReadAll(io.LimitReader(req.Body, maxSignedBody+1))
	if err != nil {
		return "", fmt.Errorf("api: read body: %w", err)
	}
	if len(data) > maxSignedBody {
		return "", fmt.Errorf("api: body exceeds %d-byte signing limit", maxSignedBody)
	}
	req.Body = io.NopCloser(bytes.NewReader(data))
	sum := sha256.Sum256(data)
	return hexSum(sum[:]), nil
}

// SignRequest authenticates an outgoing request with the identity: it
// attaches the certificate and signs the method, path, query, date,
// nonce, and body hash. Date (fresh per request) and nonce are
// generated unless already set.
func SignRequest(req *http.Request, id *pki.Identity) error {
	if id == nil || id.Certificate == nil {
		return fmt.Errorf("%w: no identity", ErrUnauthenticated)
	}
	certJSON, err := json.Marshal(id.Certificate)
	if err != nil {
		return fmt.Errorf("api: marshal certificate: %w", err)
	}
	date := req.Header.Get(HeaderDate)
	if date == "" {
		date = requestDate()
		req.Header.Set(HeaderDate, date)
	}
	nonce := req.Header.Get(HeaderNonce)
	if nonce == "" {
		nonce, err = newNonce()
		if err != nil {
			return err
		}
		req.Header.Set(HeaderNonce, nonce)
	}
	bodyHash, err := hashBody(req)
	if err != nil {
		return err
	}
	sig := ed25519.Sign(id.PrivateKey,
		signingPayload(req.Method, req.URL.Path, canonicalQuery(req.URL), date, nonce, bodyHash))
	req.Header.Set(HeaderCertificate, base64.StdEncoding.EncodeToString(certJSON))
	req.Header.Set(HeaderSignature, base64.StdEncoding.EncodeToString(sig))
	return nil
}

// Session is a client-side session credential: the token id the server
// knows the secret by, the shared HMAC secret itself, and when the
// server will forget both. Obtained from a SessionGrant (the wire form
// POST /v2/session returns) via its Session method.
type Session struct {
	Token     string
	Secret    []byte
	Subject   string
	ExpiresAt time.Time

	// macs holds reset-able keyed HMAC states for Secret; nil for
	// hand-built Sessions, in which case signing keys a fresh state.
	macs *macPool
}

// SessionGrant is the wire body of a successful POST /v2/session: an
// Ed25519-signed handshake traded for a short-lived symmetric
// credential. Secret is base64 in JSON (Go []byte encoding).
type SessionGrant struct {
	Token     string    `json:"token"`
	Secret    []byte    `json:"secret"`
	Subject   string    `json:"subject"`
	ExpiresAt time.Time `json:"expiresAt"`
}

// Session converts the grant into the client-side credential.
func (g *SessionGrant) Session() *Session {
	return &Session{Token: g.Token, Secret: g.Secret, Subject: g.Subject,
		ExpiresAt: g.ExpiresAt, macs: newMACPool(g.Secret)}
}

// SignRequestSession authenticates an outgoing request with a session:
// same canonical string as SignRequest (method, path, query, date,
// nonce, body hash), but MACed with the session secret instead of
// signed with the identity key — sub-µs symmetric crypto on the
// steady-state path, and no certificate attached.
func SignRequestSession(req *http.Request, s *Session) error {
	if s == nil || len(s.Secret) == 0 {
		return fmt.Errorf("%w: no session", ErrUnauthenticated)
	}
	date := req.Header.Get(HeaderDate)
	if date == "" {
		date = requestDate()
		req.Header.Set(HeaderDate, date)
	}
	nonce := req.Header.Get(HeaderNonce)
	if nonce == "" {
		var err error
		if nonce, err = newNonce(); err != nil {
			return err
		}
		req.Header.Set(HeaderNonce, nonce)
	}
	bodyHash, err := hashBody(req)
	if err != nil {
		return err
	}
	query := canonicalQuery(req.URL)
	var sum []byte
	if s.macs != nil {
		sum = s.macs.mac(req.Method, req.URL.Path, query, date, nonce, bodyHash)
	} else {
		mac := hmac.New(sha256.New, s.Secret)
		mac.Write(signingPayload(req.Method, req.URL.Path, query, date, nonce, bodyHash))
		sum = mac.Sum(nil)
	}
	req.Header.Set(HeaderSession, s.Token)
	req.Header.Set(HeaderSignature, b64MAC(sum))
	return nil
}

// Verifier checks incoming requests' certificates and signatures
// against a CA. It is stateful: nonces seen inside the clock-skew
// window are remembered (and bounded by that window), so a verbatim
// replay of a captured request is rejected even while its date is
// still fresh. It also holds the session table for HMAC-authenticated
// requests (IssueSession / the X-Genio-Session path); both paths share
// the same canonical string, date window, and nonce cache, so every
// replay/skew guarantee holds identically for sessions. Safe for
// concurrent use.
type Verifier struct {
	ca   *pki.CA
	skew time.Duration
	now  func() time.Time

	mu        sync.Mutex
	seen      map[string]struct{} // nonces inside the window
	order     []nonceEntry        // expiry order == insertion order (clock is monotonic)
	maxNonces int                 // hard cap on remembered nonces (full cache rejects)

	sessMu      sync.RWMutex
	sessions    map[string]*sessionRecord // token id → live session
	sessTTL     time.Duration
	maxSessions int
}

// sessionRecord is the server half of an issued session.
type sessionRecord struct {
	secret  []byte
	subject string
	exp     time.Time
	macs    *macPool // reset-able keyed HMAC states for secret
}

// nonceEntry pairs a remembered nonce with when it may be forgotten.
type nonceEntry struct {
	nonce string
	exp   time.Time
}

// VerifierOption customizes a Verifier.
type VerifierOption func(*Verifier)

// WithClockSkew overrides the accepted date drift (default
// MaxClockSkew).
func WithClockSkew(d time.Duration) VerifierOption {
	return func(v *Verifier) { v.skew = d }
}

// WithVerifierClock overrides the verifier's time source (tests).
func WithVerifierClock(now func() time.Time) VerifierOption {
	return func(v *Verifier) { v.now = now }
}

// WithNonceCapacity overrides the replay-cache entry cap (default
// DefaultNonceCapacity). Values below 1 are clamped to 1.
func WithNonceCapacity(n int) VerifierOption {
	return func(v *Verifier) {
		if n < 1 {
			n = 1
		}
		v.maxNonces = n
	}
}

// WithSessionTTL overrides how long issued sessions live (default
// DefaultSessionTTL). Tests use tiny TTLs to exercise re-keying.
func WithSessionTTL(d time.Duration) VerifierOption {
	return func(v *Verifier) { v.sessTTL = d }
}

// WithSessionCapacity overrides the live-session cap (default
// DefaultSessionCapacity). Values below 1 are clamped to 1.
func WithSessionCapacity(n int) VerifierOption {
	return func(v *Verifier) {
		if n < 1 {
			n = 1
		}
		v.maxSessions = n
	}
}

// NewVerifier builds a request verifier over the CA.
func NewVerifier(ca *pki.CA, opts ...VerifierOption) *Verifier {
	v := &Verifier{ca: ca, skew: MaxClockSkew, now: time.Now,
		seen: make(map[string]struct{}), maxNonces: DefaultNonceCapacity,
		sessions: make(map[string]*sessionRecord),
		sessTTL:  DefaultSessionTTL, maxSessions: DefaultSessionCapacity}
	for _, o := range opts {
		o(v)
	}
	return v
}

// IssueSession mints a session for an already-authenticated subject
// (the caller must have verified an Ed25519-signed handshake first).
// Expired sessions are pruned on issue; at capacity the handshake is
// refused — the client simply stays on per-request Ed25519 signing.
func (v *Verifier) IssueSession(subject string) (*SessionGrant, error) {
	var raw [16 + sessionSecretSize]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return nil, fmt.Errorf("api: session secret: %w", err)
	}
	token := hex.EncodeToString(raw[:16])
	secret := append([]byte(nil), raw[16:]...)
	now := v.now()
	exp := now.Add(v.sessTTL)
	v.sessMu.Lock()
	defer v.sessMu.Unlock()
	if len(v.sessions) >= v.maxSessions {
		for id, rec := range v.sessions {
			if now.After(rec.exp) {
				delete(v.sessions, id)
			}
		}
		if len(v.sessions) >= v.maxSessions {
			return nil, fmt.Errorf("%w: session table full, retry later", ErrUnauthenticated)
		}
	}
	v.sessions[token] = &sessionRecord{secret: secret, subject: subject, exp: exp, macs: newMACPool(secret)}
	return &SessionGrant{Token: token, Secret: secret, Subject: subject, ExpiresAt: exp}, nil
}

// Verify checks an incoming request and returns the authenticated
// subject. Requests carrying a session token take the HMAC path; all
// others must present a certificate chaining to the CA (within its
// validity window, not revoked, service role) whose key signed the
// request. Either way the signature covers the request (method, path,
// query, date, nonce, body hash), the date must be within the
// clock-skew window, and the nonce must not have been seen before —
// the replay defenses are shared, not per-path.
func (v *Verifier) Verify(r *http.Request) (string, error) {
	var (
		subject, nonce string
		err            error
	)
	if r.Header.Get(HeaderSession) != "" {
		subject, nonce, err = v.verifySessionMAC(r)
	} else {
		subject, nonce, err = v.verifySignature(r)
	}
	if err != nil {
		return "", err
	}
	if err := v.checkNonce(nonce); err != nil {
		return "", err
	}
	return subject, nil
}

// verifySessionMAC checks the symmetric steady-state path: the session
// must be live, and the signature header must be an HMAC-SHA256 over
// the same canonical string verifySignature covers, keyed by the
// session secret. Date and nonce checks are byte-for-byte the same
// code as the Ed25519 path.
func (v *Verifier) verifySessionMAC(r *http.Request) (subject, nonce string, err error) {
	token := r.Header.Get(HeaderSession)
	macB64 := r.Header.Get(HeaderSignature)
	if macB64 == "" {
		return "", "", fmt.Errorf("%w: missing signature", ErrUnauthenticated)
	}
	v.sessMu.RLock()
	rec, ok := v.sessions[token]
	v.sessMu.RUnlock()
	if !ok || v.now().After(rec.exp) {
		if ok {
			v.sessMu.Lock()
			if cur, still := v.sessions[token]; still && cur == rec {
				delete(v.sessions, token)
			}
			v.sessMu.Unlock()
		}
		return "", "", ErrSessionExpired
	}
	date := r.Header.Get(HeaderDate)
	if err := v.checkDate(date); err != nil {
		return "", "", err
	}
	nonce = r.Header.Get(HeaderNonce)
	if nonce == "" {
		return "", "", fmt.Errorf("%w: missing nonce", ErrUnauthenticated)
	}
	got, err := base64.StdEncoding.DecodeString(macB64)
	if err != nil {
		return "", "", fmt.Errorf("%w: bad signature encoding", ErrUnauthenticated)
	}
	bodyHash, err := hashBody(r)
	if err != nil {
		return "", "", fmt.Errorf("%w: %v", ErrUnauthenticated, err)
	}
	want := rec.macs.mac(r.Method, r.URL.Path, canonicalQuery(r.URL), date, nonce, bodyHash)
	if !hmac.Equal(got, want) {
		return "", "", fmt.Errorf("%w: signature mismatch", ErrUnauthenticated)
	}
	return rec.subject, nonce, nil
}

// checkDate parses the date header and enforces the skew window —
// shared verbatim by the Ed25519 and session paths.
func (v *Verifier) checkDate(date string) error {
	when, err := time.Parse(time.RFC3339, date)
	if err != nil {
		return fmt.Errorf("%w: bad date", ErrUnauthenticated)
	}
	if drift := v.now().Sub(when); drift > v.skew || drift < -v.skew {
		return fmt.Errorf("%w: request date outside ±%s window", ErrUnauthenticated, v.skew)
	}
	return nil
}

func (v *Verifier) verifySignature(r *http.Request) (subject, nonce string, err error) {
	certB64 := r.Header.Get(HeaderCertificate)
	sigB64 := r.Header.Get(HeaderSignature)
	if certB64 == "" || sigB64 == "" {
		return "", "", fmt.Errorf("%w: missing certificate or signature", ErrUnauthenticated)
	}
	certJSON, err := base64.StdEncoding.DecodeString(certB64)
	if err != nil {
		return "", "", fmt.Errorf("%w: bad certificate encoding", ErrUnauthenticated)
	}
	var cert pki.Certificate
	if err := json.Unmarshal(certJSON, &cert); err != nil {
		return "", "", fmt.Errorf("%w: bad certificate", ErrUnauthenticated)
	}
	if err := v.ca.Verify(&cert, pki.RoleService); err != nil {
		return "", "", fmt.Errorf("%w: %v", ErrUnauthenticated, err)
	}
	date := r.Header.Get(HeaderDate)
	if err := v.checkDate(date); err != nil {
		return "", "", err
	}
	nonce = r.Header.Get(HeaderNonce)
	if nonce == "" {
		return "", "", fmt.Errorf("%w: missing nonce", ErrUnauthenticated)
	}
	sig, err := base64.StdEncoding.DecodeString(sigB64)
	if err != nil {
		return "", "", fmt.Errorf("%w: bad signature encoding", ErrUnauthenticated)
	}
	bodyHash, err := hashBody(r)
	if err != nil {
		return "", "", fmt.Errorf("%w: %v", ErrUnauthenticated, err)
	}
	payload := signingPayload(r.Method, r.URL.Path, canonicalQuery(r.URL), date, nonce, bodyHash)
	if !ed25519.Verify(ed25519.PublicKey(cert.PublicKey), payload, sig) {
		return "", "", fmt.Errorf("%w: signature mismatch", ErrUnauthenticated)
	}
	return cert.Subject, nonce, nil
}

// checkNonce records the nonce and rejects one already seen. Entries
// expire in insertion order (every entry lives exactly 2×skew), so
// expired ones pop off the front of the FIFO in amortized O(1) and the
// cache stays proportional to the request rate inside one window — and
// is additionally hard-capped at maxNonces entries. A full cache
// REJECTS the request (ErrReplayCacheFull) rather than evicting a
// live entry: a remembered nonce must stay remembered for its whole
// window, or a unique-nonce flood could flush the cache and replay
// captured requests at will.
func (v *Verifier) checkNonce(nonce string) error {
	now := v.now()
	v.mu.Lock()
	defer v.mu.Unlock()
	for len(v.order) > 0 && now.After(v.order[0].exp) {
		delete(v.seen, v.order[0].nonce)
		v.order = v.order[1:]
	}
	if _, dup := v.seen[nonce]; dup {
		return fmt.Errorf("%w: replayed nonce", ErrUnauthenticated)
	}
	if len(v.order) >= v.maxNonces {
		return ErrReplayCacheFull
	}
	v.seen[nonce] = struct{}{}
	v.order = append(v.order, nonceEntry{nonce: nonce, exp: now.Add(2 * v.skew)})
	return nil
}

// VerifyRequest is the stateless form of Verifier.Verify: everything
// is checked except nonce replay (which needs memory across requests).
// Servers should hold a Verifier; this suits one-shot verification.
func VerifyRequest(r *http.Request, ca *pki.CA) (string, error) {
	subject, _, err := NewVerifier(ca).verifySignature(r)
	return subject, err
}

// identityFile is the on-disk JSON form of an identity.
type identityFile struct {
	Certificate *pki.Certificate `json:"certificate"`
	PrivateKey  []byte           `json:"privateKey"`
}

// MarshalIdentity serializes an identity (certificate + private key)
// for transport to a client, e.g. via `geniod -identity-out`.
func MarshalIdentity(id *pki.Identity) ([]byte, error) {
	if id == nil || id.Certificate == nil {
		return nil, errors.New("api: nil identity")
	}
	return json.MarshalIndent(identityFile{
		Certificate: id.Certificate,
		PrivateKey:  id.PrivateKey,
	}, "", "  ")
}

// UnmarshalIdentity parses a serialized identity.
func UnmarshalIdentity(data []byte) (*pki.Identity, error) {
	var f identityFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("api: parse identity: %w", err)
	}
	if f.Certificate == nil || len(f.PrivateKey) != ed25519.PrivateKeySize {
		return nil, errors.New("api: identity missing certificate or key")
	}
	return &pki.Identity{Certificate: f.Certificate, PrivateKey: f.PrivateKey}, nil
}

// SaveIdentity writes an identity file readable only by its owner.
func SaveIdentity(path string, id *pki.Identity) error {
	data, err := MarshalIdentity(id)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o600)
}

// LoadIdentity reads an identity file written by SaveIdentity.
func LoadIdentity(path string) (*pki.Identity, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return UnmarshalIdentity(data)
}
