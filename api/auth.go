package api

// Request authentication. The platform's PKI issues Ed25519 identity
// certificates (internal/pki) rather than x509, so the wire cannot use
// stock crypto/tls mutual TLS; instead every request carries a
// detached signature in the mTLS role: the client attaches its
// certificate and signs the request with its private key, the server
// verifies both against the cluster CA and extracts the certificate's
// subject for RBAC. Same trust chain, same per-subject authentication
// — just carried in headers instead of the handshake.
//
// The signature covers method, path, canonical query string, date,
// nonce, and a SHA-256 hash of the body, so a captured request cannot
// be replayed against another endpoint, with altered parameters, or
// with a substituted body. Replay of the request verbatim is stopped
// in depth: the date must fall inside a small clock-skew window, and a
// stateful Verifier additionally remembers nonces seen inside that
// window and rejects duplicates.

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"genio/internal/pki"
)

// Auth headers.
const (
	// HeaderCertificate carries the client's base64-encoded JSON
	// identity certificate.
	HeaderCertificate = "X-Genio-Certificate"
	// HeaderSignature carries the base64-encoded Ed25519 signature over
	// the request (see signingPayload).
	HeaderSignature = "X-Genio-Signature"
	// HeaderDate is the client's request timestamp (RFC3339); it is
	// bound into the signature and must fall within MaxClockSkew of the
	// server's clock.
	HeaderDate = "X-Genio-Date"
	// HeaderNonce is a per-request random value bound into the
	// signature; a stateful Verifier rejects a nonce it has already
	// seen inside the clock-skew window.
	HeaderNonce = "X-Genio-Nonce"
	// HeaderSubject names the caller in anonymous (legacy-posture)
	// mode, where no certificate is presented. Ignored whenever a
	// certificate is present: the certificate's subject wins.
	HeaderSubject = "X-Genio-Subject"
)

// MaxClockSkew is how far a request's date may drift from the
// verifier's clock before the request is rejected as stale; it also
// bounds how long a nonce is remembered.
const MaxClockSkew = 2 * time.Minute

// maxSignedBody bounds how much body a verifier will read to check the
// body hash. Control-plane payloads are small JSON documents; anything
// larger is rejected rather than hashed unbounded.
const maxSignedBody = 4 << 20

// DefaultNonceCapacity bounds the replay cache by entry count. Time
// alone is not enough: every remembered nonce lives a full 2×skew, so
// an attacker flooding unique nonces (each request signed by any valid
// identity — including its own) could grow the cache without limit
// inside one window. At the cap, further requests are REJECTED rather
// than old nonces evicted: evicting would let a flood flush the cache
// and then replay any captured request still inside the skew window,
// turning the memory bound into a replay-protection bypass. Rejecting
// degrades a flood into self-inflicted unavailability for the
// flooding window instead, and every remembered nonce keeps its full
// 2×skew lifetime.
const DefaultNonceCapacity = 65536

// ErrUnauthenticated reports a request whose identity could not be
// established (missing or invalid certificate/signature, stale date,
// replayed nonce).
var ErrUnauthenticated = errors.New("api: request not authenticated")

// ErrReplayCacheFull reports a request refused because the verifier's
// nonce cache is at capacity — under a unique-nonce flood the verifier
// sheds load rather than forgetting nonces it promised to remember.
// Unwraps to ErrUnauthenticated; capacity frees as entries expire.
var ErrReplayCacheFull = fmt.Errorf("%w: nonce replay cache full, retry later", ErrUnauthenticated)

// signingPayload is the byte string the client signs: method, path,
// canonical (encoded) query string, date, nonce, and the hex SHA-256
// of the body, newline-joined. Binding all request-controlled inputs
// means a captured signature authorizes exactly one request shape.
func signingPayload(method, path, query, date, nonce, bodyHash string) []byte {
	return []byte(strings.Join([]string{method, path, query, date, nonce, bodyHash}, "\n"))
}

// hashBody returns the hex SHA-256 of the request body without
// consuming it: the body is read (via GetBody when available) and
// restored. An absent body hashes as the empty string.
func hashBody(req *http.Request) (string, error) {
	if req.Body == nil || req.Body == http.NoBody {
		sum := sha256.Sum256(nil)
		return hex.EncodeToString(sum[:]), nil
	}
	rd := req.Body
	if req.GetBody != nil {
		fresh, err := req.GetBody()
		if err != nil {
			return "", fmt.Errorf("api: reread body: %w", err)
		}
		rd = fresh
	}
	data, err := io.ReadAll(io.LimitReader(rd, maxSignedBody+1))
	if err != nil {
		return "", fmt.Errorf("api: read body: %w", err)
	}
	if len(data) > maxSignedBody {
		return "", fmt.Errorf("api: body exceeds %d-byte signing limit", maxSignedBody)
	}
	if req.GetBody == nil {
		// We consumed the only copy; hand the handler an equivalent one.
		req.Body = io.NopCloser(bytes.NewReader(data))
	} else {
		rd.Close()
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// SignRequest authenticates an outgoing request with the identity: it
// attaches the certificate and signs the method, path, query, date,
// nonce, and body hash. Date (fresh per request) and nonce are
// generated unless already set.
func SignRequest(req *http.Request, id *pki.Identity) error {
	if id == nil || id.Certificate == nil {
		return fmt.Errorf("%w: no identity", ErrUnauthenticated)
	}
	certJSON, err := json.Marshal(id.Certificate)
	if err != nil {
		return fmt.Errorf("api: marshal certificate: %w", err)
	}
	date := req.Header.Get(HeaderDate)
	if date == "" {
		date = time.Now().UTC().Format(time.RFC3339)
		req.Header.Set(HeaderDate, date)
	}
	nonce := req.Header.Get(HeaderNonce)
	if nonce == "" {
		var raw [12]byte
		if _, err := rand.Read(raw[:]); err != nil {
			return fmt.Errorf("api: nonce: %w", err)
		}
		nonce = hex.EncodeToString(raw[:])
		req.Header.Set(HeaderNonce, nonce)
	}
	bodyHash, err := hashBody(req)
	if err != nil {
		return err
	}
	sig := ed25519.Sign(id.PrivateKey,
		signingPayload(req.Method, req.URL.Path, req.URL.Query().Encode(), date, nonce, bodyHash))
	req.Header.Set(HeaderCertificate, base64.StdEncoding.EncodeToString(certJSON))
	req.Header.Set(HeaderSignature, base64.StdEncoding.EncodeToString(sig))
	return nil
}

// Verifier checks incoming requests' certificates and signatures
// against a CA. It is stateful: nonces seen inside the clock-skew
// window are remembered (and bounded by that window), so a verbatim
// replay of a captured request is rejected even while its date is
// still fresh. Safe for concurrent use.
type Verifier struct {
	ca   *pki.CA
	skew time.Duration
	now  func() time.Time

	mu        sync.Mutex
	seen      map[string]struct{} // nonces inside the window
	order     []nonceEntry        // expiry order == insertion order (clock is monotonic)
	maxNonces int                 // hard cap on remembered nonces (full cache rejects)
}

// nonceEntry pairs a remembered nonce with when it may be forgotten.
type nonceEntry struct {
	nonce string
	exp   time.Time
}

// VerifierOption customizes a Verifier.
type VerifierOption func(*Verifier)

// WithClockSkew overrides the accepted date drift (default
// MaxClockSkew).
func WithClockSkew(d time.Duration) VerifierOption {
	return func(v *Verifier) { v.skew = d }
}

// WithVerifierClock overrides the verifier's time source (tests).
func WithVerifierClock(now func() time.Time) VerifierOption {
	return func(v *Verifier) { v.now = now }
}

// WithNonceCapacity overrides the replay-cache entry cap (default
// DefaultNonceCapacity). Values below 1 are clamped to 1.
func WithNonceCapacity(n int) VerifierOption {
	return func(v *Verifier) {
		if n < 1 {
			n = 1
		}
		v.maxNonces = n
	}
}

// NewVerifier builds a request verifier over the CA.
func NewVerifier(ca *pki.CA, opts ...VerifierOption) *Verifier {
	v := &Verifier{ca: ca, skew: MaxClockSkew, now: time.Now,
		seen: make(map[string]struct{}), maxNonces: DefaultNonceCapacity}
	for _, o := range opts {
		o(v)
	}
	return v
}

// Verify checks an incoming request and returns the authenticated
// subject. The certificate must chain to the CA, be within its
// validity window, not be revoked, and carry the service role; the
// signature must cover the request (method, path, query, date, nonce,
// body hash) with the certificate's key; the date must be within the
// clock-skew window; and the nonce must not have been seen before.
func (v *Verifier) Verify(r *http.Request) (string, error) {
	subject, nonce, err := v.verifySignature(r)
	if err != nil {
		return "", err
	}
	if err := v.checkNonce(nonce); err != nil {
		return "", err
	}
	return subject, nil
}

func (v *Verifier) verifySignature(r *http.Request) (subject, nonce string, err error) {
	certB64 := r.Header.Get(HeaderCertificate)
	sigB64 := r.Header.Get(HeaderSignature)
	if certB64 == "" || sigB64 == "" {
		return "", "", fmt.Errorf("%w: missing certificate or signature", ErrUnauthenticated)
	}
	certJSON, err := base64.StdEncoding.DecodeString(certB64)
	if err != nil {
		return "", "", fmt.Errorf("%w: bad certificate encoding", ErrUnauthenticated)
	}
	var cert pki.Certificate
	if err := json.Unmarshal(certJSON, &cert); err != nil {
		return "", "", fmt.Errorf("%w: bad certificate", ErrUnauthenticated)
	}
	if err := v.ca.Verify(&cert, pki.RoleService); err != nil {
		return "", "", fmt.Errorf("%w: %v", ErrUnauthenticated, err)
	}
	date := r.Header.Get(HeaderDate)
	when, err := time.Parse(time.RFC3339, date)
	if err != nil {
		return "", "", fmt.Errorf("%w: bad date", ErrUnauthenticated)
	}
	if drift := v.now().Sub(when); drift > v.skew || drift < -v.skew {
		return "", "", fmt.Errorf("%w: request date outside ±%s window", ErrUnauthenticated, v.skew)
	}
	nonce = r.Header.Get(HeaderNonce)
	if nonce == "" {
		return "", "", fmt.Errorf("%w: missing nonce", ErrUnauthenticated)
	}
	sig, err := base64.StdEncoding.DecodeString(sigB64)
	if err != nil {
		return "", "", fmt.Errorf("%w: bad signature encoding", ErrUnauthenticated)
	}
	bodyHash, err := hashBody(r)
	if err != nil {
		return "", "", fmt.Errorf("%w: %v", ErrUnauthenticated, err)
	}
	payload := signingPayload(r.Method, r.URL.Path, r.URL.Query().Encode(), date, nonce, bodyHash)
	if !ed25519.Verify(ed25519.PublicKey(cert.PublicKey), payload, sig) {
		return "", "", fmt.Errorf("%w: signature mismatch", ErrUnauthenticated)
	}
	return cert.Subject, nonce, nil
}

// checkNonce records the nonce and rejects one already seen. Entries
// expire in insertion order (every entry lives exactly 2×skew), so
// expired ones pop off the front of the FIFO in amortized O(1) and the
// cache stays proportional to the request rate inside one window — and
// is additionally hard-capped at maxNonces entries. A full cache
// REJECTS the request (ErrReplayCacheFull) rather than evicting a
// live entry: a remembered nonce must stay remembered for its whole
// window, or a unique-nonce flood could flush the cache and replay
// captured requests at will.
func (v *Verifier) checkNonce(nonce string) error {
	now := v.now()
	v.mu.Lock()
	defer v.mu.Unlock()
	for len(v.order) > 0 && now.After(v.order[0].exp) {
		delete(v.seen, v.order[0].nonce)
		v.order = v.order[1:]
	}
	if _, dup := v.seen[nonce]; dup {
		return fmt.Errorf("%w: replayed nonce", ErrUnauthenticated)
	}
	if len(v.order) >= v.maxNonces {
		return ErrReplayCacheFull
	}
	v.seen[nonce] = struct{}{}
	v.order = append(v.order, nonceEntry{nonce: nonce, exp: now.Add(2 * v.skew)})
	return nil
}

// VerifyRequest is the stateless form of Verifier.Verify: everything
// is checked except nonce replay (which needs memory across requests).
// Servers should hold a Verifier; this suits one-shot verification.
func VerifyRequest(r *http.Request, ca *pki.CA) (string, error) {
	subject, _, err := NewVerifier(ca).verifySignature(r)
	return subject, err
}

// identityFile is the on-disk JSON form of an identity.
type identityFile struct {
	Certificate *pki.Certificate `json:"certificate"`
	PrivateKey  []byte           `json:"privateKey"`
}

// MarshalIdentity serializes an identity (certificate + private key)
// for transport to a client, e.g. via `geniod -identity-out`.
func MarshalIdentity(id *pki.Identity) ([]byte, error) {
	if id == nil || id.Certificate == nil {
		return nil, errors.New("api: nil identity")
	}
	return json.MarshalIndent(identityFile{
		Certificate: id.Certificate,
		PrivateKey:  id.PrivateKey,
	}, "", "  ")
}

// UnmarshalIdentity parses a serialized identity.
func UnmarshalIdentity(data []byte) (*pki.Identity, error) {
	var f identityFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("api: parse identity: %w", err)
	}
	if f.Certificate == nil || len(f.PrivateKey) != ed25519.PrivateKeySize {
		return nil, errors.New("api: identity missing certificate or key")
	}
	return &pki.Identity{Certificate: f.Certificate, PrivateKey: f.PrivateKey}, nil
}

// SaveIdentity writes an identity file readable only by its owner.
func SaveIdentity(path string, id *pki.Identity) error {
	data, err := MarshalIdentity(id)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o600)
}

// LoadIdentity reads an identity file written by SaveIdentity.
func LoadIdentity(path string) (*pki.Identity, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return UnmarshalIdentity(data)
}
