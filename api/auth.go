package api

// Request authentication. The platform's PKI issues Ed25519 identity
// certificates (internal/pki) rather than x509, so the wire cannot use
// stock crypto/tls mutual TLS; instead every request carries a
// detached signature in the mTLS role: the client attaches its
// certificate and signs the request line with its private key, the
// server verifies both against the cluster CA and extracts the
// certificate's subject for RBAC. Same trust chain, same per-subject
// authentication — just carried in headers instead of the handshake.

import (
	"crypto/ed25519"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"

	"genio/internal/pki"
)

// Auth headers.
const (
	// HeaderCertificate carries the client's base64-encoded JSON
	// identity certificate.
	HeaderCertificate = "X-Genio-Certificate"
	// HeaderSignature carries the base64-encoded Ed25519 signature over
	// the request line (see signingPayload).
	HeaderSignature = "X-Genio-Signature"
	// HeaderDate is the client's request timestamp (RFC3339); it is
	// bound into the signature.
	HeaderDate = "X-Genio-Date"
	// HeaderSubject names the caller in anonymous (legacy-posture)
	// mode, where no certificate is presented. Ignored whenever a
	// certificate is present: the certificate's subject wins.
	HeaderSubject = "X-Genio-Subject"
)

// ErrUnauthenticated reports a request whose identity could not be
// established (missing or invalid certificate/signature).
var ErrUnauthenticated = errors.New("api: request not authenticated")

// signingPayload is the byte string the client signs: method, path, and
// date, newline-joined. Binding the request line prevents replaying a
// signature against a different endpoint.
func signingPayload(method, path, date string) []byte {
	return []byte(strings.Join([]string{method, path, date}, "\n"))
}

// SignRequest authenticates an outgoing request with the identity: it
// attaches the certificate and signs the request line. The date header
// is set if absent.
func SignRequest(req *http.Request, id *pki.Identity) error {
	if id == nil || id.Certificate == nil {
		return fmt.Errorf("%w: no identity", ErrUnauthenticated)
	}
	certJSON, err := json.Marshal(id.Certificate)
	if err != nil {
		return fmt.Errorf("api: marshal certificate: %w", err)
	}
	date := req.Header.Get(HeaderDate)
	if date == "" {
		date = id.Certificate.NotBefore.UTC().Format("2006-01-02T15:04:05Z")
		req.Header.Set(HeaderDate, date)
	}
	sig := ed25519.Sign(id.PrivateKey, signingPayload(req.Method, req.URL.Path, date))
	req.Header.Set(HeaderCertificate, base64.StdEncoding.EncodeToString(certJSON))
	req.Header.Set(HeaderSignature, base64.StdEncoding.EncodeToString(sig))
	return nil
}

// VerifyRequest checks an incoming request's certificate and signature
// against the CA and returns the authenticated subject. The
// certificate must chain to the CA, be within its validity window, not
// be revoked, and carry the service role; the signature must cover the
// request line with the certificate's key.
func VerifyRequest(r *http.Request, ca *pki.CA) (string, error) {
	certB64 := r.Header.Get(HeaderCertificate)
	sigB64 := r.Header.Get(HeaderSignature)
	if certB64 == "" || sigB64 == "" {
		return "", fmt.Errorf("%w: missing certificate or signature", ErrUnauthenticated)
	}
	certJSON, err := base64.StdEncoding.DecodeString(certB64)
	if err != nil {
		return "", fmt.Errorf("%w: bad certificate encoding", ErrUnauthenticated)
	}
	var cert pki.Certificate
	if err := json.Unmarshal(certJSON, &cert); err != nil {
		return "", fmt.Errorf("%w: bad certificate", ErrUnauthenticated)
	}
	if err := ca.Verify(&cert, pki.RoleService); err != nil {
		return "", fmt.Errorf("%w: %v", ErrUnauthenticated, err)
	}
	sig, err := base64.StdEncoding.DecodeString(sigB64)
	if err != nil {
		return "", fmt.Errorf("%w: bad signature encoding", ErrUnauthenticated)
	}
	payload := signingPayload(r.Method, r.URL.Path, r.Header.Get(HeaderDate))
	if !ed25519.Verify(ed25519.PublicKey(cert.PublicKey), payload, sig) {
		return "", fmt.Errorf("%w: signature mismatch", ErrUnauthenticated)
	}
	return cert.Subject, nil
}

// identityFile is the on-disk JSON form of an identity.
type identityFile struct {
	Certificate *pki.Certificate `json:"certificate"`
	PrivateKey  []byte           `json:"privateKey"`
}

// MarshalIdentity serializes an identity (certificate + private key)
// for transport to a client, e.g. via `geniod -identity-out`.
func MarshalIdentity(id *pki.Identity) ([]byte, error) {
	if id == nil || id.Certificate == nil {
		return nil, errors.New("api: nil identity")
	}
	return json.MarshalIndent(identityFile{
		Certificate: id.Certificate,
		PrivateKey:  id.PrivateKey,
	}, "", "  ")
}

// UnmarshalIdentity parses a serialized identity.
func UnmarshalIdentity(data []byte) (*pki.Identity, error) {
	var f identityFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("api: parse identity: %w", err)
	}
	if f.Certificate == nil || len(f.PrivateKey) != ed25519.PrivateKeySize {
		return nil, errors.New("api: identity missing certificate or key")
	}
	return &pki.Identity{Certificate: f.Certificate, PrivateKey: f.PrivateKey}, nil
}

// SaveIdentity writes an identity file readable only by its owner.
func SaveIdentity(path string, id *pki.Identity) error {
	data, err := MarshalIdentity(id)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o600)
}

// LoadIdentity reads an identity file written by SaveIdentity.
func LoadIdentity(path string) (*pki.Identity, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return UnmarshalIdentity(data)
}
