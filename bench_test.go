package genio_test

// Benchmark harness: one testing.B per reproduced figure/lesson, exercising
// the hot path of each mitigation. Run with:
//
//	go test -bench=. -benchmem .
//
// The genio-bench command prints the corresponding experiment reports;
// these benchmarks provide the machine-measured per-operation costs.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"genio"
	"genio/api"
	"genio/api/client"
	"genio/api/server"
	"genio/internal/attack"
	"genio/internal/container"
	"genio/internal/core"
	"genio/internal/events"
	"genio/internal/falco"
	"genio/internal/federation"
	"genio/internal/fim"
	"genio/internal/host"
	"genio/internal/macsec"
	"genio/internal/malware"
	"genio/internal/orchestrator"
	"genio/internal/orchestrator/scheduler"
	"genio/internal/persist"
	"genio/internal/pki"
	"genio/internal/pon"
	"genio/internal/rbac"
	"genio/internal/sandbox"
	"genio/internal/sast"
	"genio/internal/sca"
	"genio/internal/scap"
	"genio/internal/threatmodel"
	"genio/internal/tpm"
	"genio/internal/trace"
	"genio/internal/updates"
	"genio/internal/vuln"
	"genio/internal/workpool"
)

// --- Figure 3 ---------------------------------------------------------------

func BenchmarkThreatModelMatrix(b *testing.B) {
	m := threatmodel.GENIOModel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(m.Matrix()) != 8 {
			b.Fatal("bad matrix")
		}
	}
}

// --- Lesson 1: hardening ------------------------------------------------------

func BenchmarkSCAPEvaluate(b *testing.B) {
	h := host.NewONLOLT("olt-bench")
	profile := scap.SCAPBaselineProfile()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		scap.EvaluateHost(profile, h)
	}
}

func BenchmarkKernelHardeningCheck(b *testing.B) {
	h := host.NewONLOLT("olt-bench")
	host.HardenONLOLT(h)
	profile := scap.KernelHardeningProfile()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		scap.EvaluateHost(profile, h)
	}
}

// --- Lesson 2: encryption ------------------------------------------------------

func benchChannel(b *testing.B) (*macsec.SecY, *macsec.SecY) {
	b.Helper()
	a, z := macsec.NewSecY("a"), macsec.NewSecY("z")
	var key [32]byte
	key[0] = 1
	if _, err := macsec.NewChannel(a, z, key, 1<<30); err != nil {
		b.Fatal(err)
	}
	return a, z
}

func BenchmarkMACsecProtect(b *testing.B) {
	a, _ := benchChannel(b)
	payload := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.Protect(0, macsec.Frame{Payload: payload}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMACsecProtectValidate(b *testing.B) {
	a, z := benchChannel(b)
	payload := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pf, err := a.Protect(0, macsec.Frame{Payload: payload})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := z.Validate(pf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPONEncryptedFrame(b *testing.B) {
	kr := pon.NewKeyRing()
	var key [32]byte
	key[0] = 7
	kr.SetKey(1, key)
	payload := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := kr.EncryptFrame(1, uint64(i+1), payload)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := kr.DecryptFrame(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOnboardingHandshake(b *testing.B) {
	ca, err := pki.NewCA("bench-root")
	if err != nil {
		b.Fatal(err)
	}
	oltID, err := ca.Issue("olt", pki.RoleOLT)
	if err != nil {
		b.Fatal(err)
	}
	olt, err := pon.NewOLT("olt", pon.ModeAuthenticated, ca, oltID)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serial := fmt.Sprintf("onu-%d", i)
		id, err := ca.Issue(serial, pki.RoleONU)
		if err != nil {
			b.Fatal(err)
		}
		if err := olt.Activate(pon.NewONU(serial, id)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- M5/M6 substrate costs ------------------------------------------------------

func BenchmarkTPMExtend(b *testing.B) {
	t, err := tpm.New()
	if err != nil {
		b.Fatal(err)
	}
	data := []byte("component-image")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := t.Extend(tpm.PCRApp, "bench", data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTPMSealUnseal(b *testing.B) {
	t, err := tpm.New()
	if err != nil {
		b.Fatal(err)
	}
	secret := make([]byte, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blob, err := t.Seal(secret, []int{tpm.PCRKernel})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := t.Unseal(blob); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Lesson 3: FIM -------------------------------------------------------------

func BenchmarkFIMScan(b *testing.B) {
	h := host.NewONLOLT("olt-bench")
	t, err := tpm.New()
	if err != nil {
		b.Fatal(err)
	}
	m, err := fim.NewMonitor(h, t, fim.Config{MutablePrefixes: []string{"/var/log/"}})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Init(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Scan(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Lesson 4: scanning + updates -------------------------------------------------

func BenchmarkVulnScan(b *testing.B) {
	h := host.NewONLOLT("olt-bench")
	s := vuln.NewScanner(vuln.DefaultDatabase())
	s.AddSearchPath("/opt/")
	s.AddSearchPath("/lib/onl")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Scan(h)
	}
}

func BenchmarkUpdateVerify(b *testing.B) {
	repo, err := updates.NewRepository("bench")
	if err != nil {
		b.Fatal(err)
	}
	h := host.New("node", "onl")
	client := updates.NewClient(repo.PublicKey(), h)
	pkg := repo.Publish("agent", "1.0", make([]byte, 4096))
	md := repo.Metadata()
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Install(md, pkg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Lesson 5: RBAC ---------------------------------------------------------------

func BenchmarkRBACCheck(b *testing.B) {
	e := rbac.NewEngine()
	e.SetRole(rbac.Role{Name: "deployer", Permissions: []rbac.Permission{
		{Verb: "create", Resource: "workloads", Namespace: "acme"},
		{Verb: "get", Resource: "pods", Namespace: "acme"},
		{Verb: "watch", Resource: "pods", Namespace: "acme"},
	}})
	if err := e.Bind("ci", "deployer"); err != nil {
		b.Fatal(err)
	}
	req := rbac.Permission{Verb: "create", Resource: "workloads", Namespace: "acme"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !e.Check("ci", req).Allowed {
			b.Fatal("denied")
		}
	}
}

func BenchmarkSDNAllowlist(b *testing.B) {
	a := rbac.DefaultSDNAllowlist()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Allow("device.register")
		a.Allow("shell.exec")
	}
}

// --- Lesson 6: feeds ----------------------------------------------------------------

func BenchmarkFeedTracking(b *testing.B) {
	tr := vuln.NewTracker(vuln.DefaultFeeds(), 5)
	db := vuln.DefaultDatabase()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.TrackAll(db)
	}
}

// --- Lesson 7: app scanning -----------------------------------------------------------

func BenchmarkSCAScan(b *testing.B) {
	s := sca.NewScanner(sca.DependencyDatabase())
	img := container.IoTGatewayImage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Scan(img)
	}
}

func BenchmarkSASTScan(b *testing.B) {
	s := sast.NewScanner(sast.DefaultRules())
	img := container.IoTGatewayImage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Scan(img)
	}
}

func BenchmarkMalwareScan(b *testing.B) {
	s, err := malware.NewScanner(malware.DefaultRules())
	if err != nil {
		b.Fatal(err)
	}
	img := container.CryptominerImage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !s.Scan(img).Malicious() {
			b.Fatal("missed")
		}
	}
}

// --- Lesson 8: runtime ------------------------------------------------------------------

func BenchmarkFalcoPipeline(b *testing.B) {
	e := falco.NewEngine(falco.DefaultRules())
	events := trace.BenignWebTrace("bench", "acme", 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ConsumeAll(events)
	}
	b.ReportMetric(float64(len(events)), "events/op")
}

func BenchmarkSandboxEnforce(b *testing.B) {
	e := sandbox.NewEnforcer()
	e.SetPolicy("bench", sandbox.DefaultWorkloadPolicy())
	events := trace.BenignWebTrace("bench", "acme", 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Process(events)
	}
	b.ReportMetric(float64(len(events)), "events/op")
}

// --- End-to-end ----------------------------------------------------------------------------

func BenchmarkAdmissionPipeline(b *testing.B) {
	p, err := core.New(core.SecureConfig())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.AddEdgeNode("olt-bench", genio.Resources{CPUMilli: 1 << 30, MemoryMB: 1 << 30}); err != nil {
		b.Fatal(err)
	}
	pub, err := container.NewPublisher("acme")
	if err != nil {
		b.Fatal(err)
	}
	p.Registry.TrustPublisher("acme", pub.PublicKey())
	img := container.AnalyticsImage()
	sig := pub.Sign(img)
	p.Registry.Push(img, &sig)
	p.RBAC.SetRole(rbac.Role{Name: "deployer", Permissions: []rbac.Permission{
		{Verb: "create", Resource: "workloads", Namespace: "acme"},
	}})
	if err := p.RBAC.Bind("ci", "deployer"); err != nil {
		b.Fatal(err)
	}
	p.Cluster.SetQuota("acme", genio.Resources{}) // unlimited for the bench
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("w-%d", i)
		if _, err := p.Deploy("ci", genio.WorkloadSpec{
			Name: name, Tenant: "acme", ImageRef: "acme/analytics:2.0.1",
			Isolation: genio.IsolationSoft,
			Resources: genio.Resources{CPUMilli: 1, MemoryMB: 1},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDeployPlatform builds a secure platform ready to admit the signed
// analytics image for tenant acme without quota limits.
func benchDeployPlatform(b testing.TB, opts ...core.Option) *core.Platform {
	b.Helper()
	p, err := core.New(core.SecureConfig(), opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(p.Close)
	if _, err := p.AddEdgeNode("olt-bench", genio.Resources{CPUMilli: 1 << 30, MemoryMB: 1 << 30}); err != nil {
		b.Fatal(err)
	}
	pub, err := container.NewPublisher("acme")
	if err != nil {
		b.Fatal(err)
	}
	p.Registry.TrustPublisher("acme", pub.PublicKey())
	img := container.AnalyticsImage()
	sig := pub.Sign(img)
	p.Registry.Push(img, &sig)
	p.RBAC.SetRole(rbac.Role{Name: "deployer", Permissions: []rbac.Permission{
		{Verb: "create", Resource: "workloads", Namespace: "acme"},
	}})
	if err := p.RBAC.Bind("ci", "deployer"); err != nil {
		b.Fatal(err)
	}
	p.Cluster.SetQuota("acme", genio.Resources{}) // unlimited for the bench
	return p
}

func benchSpec(name string) genio.WorkloadSpec {
	return genio.WorkloadSpec{
		Name: name, Tenant: "acme", ImageRef: "acme/analytics:2.0.1",
		Isolation: genio.IsolationSoft,
		Resources: genio.Resources{CPUMilli: 1, MemoryMB: 1},
	}
}

// BenchmarkDeploySequentialAdmission is the seed-equivalent admission
// path: one scanner after another, no verdict cache. The concurrency
// benchmarks below are measured against this baseline.
func BenchmarkDeploySequentialAdmission(b *testing.B) {
	p := benchDeployPlatform(b)
	p.Cluster.AdmissionParallelism = 1
	p.Cluster.AdmissionCacheDisabled = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Deploy("ci", benchSpec(fmt.Sprintf("seq-%d", i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeployFanoutAdmission runs the same cold-scanner path with the
// admission chain fanned out over four workers; the speedup over the
// sequential baseline scales with available cores.
func BenchmarkDeployFanoutAdmission(b *testing.B) {
	p := benchDeployPlatform(b)
	p.Cluster.AdmissionParallelism = 4
	p.Cluster.AdmissionCacheDisabled = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Deploy("ci", benchSpec(fmt.Sprintf("fan-%d", i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeployParallel is the multi-tenant hot path as shipped: deploys
// from concurrent goroutines with admission fan-out and the per-digest
// verdict cache, against the sharded cluster state.
func BenchmarkDeployParallel(b *testing.B) {
	p := benchDeployPlatform(b)
	var seq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			name := fmt.Sprintf("par-%d", seq.Add(1))
			if _, err := p.Deploy("ci", benchSpec(name)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWALDeployThroughput is BenchmarkDeployParallel over a
// WAL-backed platform: every placement appends to the durable log. The
// group commit keeps the fsync off the deploy path, so this must stay
// within a whisker of the in-memory parallel baseline — it gates the
// persistence layer's central performance claim.
func BenchmarkWALDeployThroughput(b *testing.B) {
	store, err := persist.OpenWAL(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	p := benchDeployPlatform(b, core.WithStore(store))
	var seq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			name := fmt.Sprintf("wal-%d", seq.Add(1))
			if _, err := p.Deploy("ci", benchSpec(name)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDeployBatch measures the batch-admission surface end to end
// (since API v2 the batch is a fan-out over DeployAsync futures).
func BenchmarkDeployBatch(b *testing.B) {
	p := benchDeployPlatform(b)
	const batch = 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		specs := make([]genio.WorkloadSpec, batch)
		for j := range specs {
			specs[j] = benchSpec(fmt.Sprintf("batch-%d-%d", i, j))
		}
		_, errs := p.DeployBatch("ci", specs)
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(batch, "workloads/op")
}

// BenchmarkDeployBatchSyncBarrier is the pre-v2 batch shape kept as the
// comparison baseline: synchronous Deploys fanned over a bounded worker
// pool, each worker barriering on its deploy before taking the next.
// BenchmarkDeployAsyncPipelined must meet or beat it.
func BenchmarkDeployBatchSyncBarrier(b *testing.B) {
	p := benchDeployPlatform(b)
	const batch = 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		specs := make([]genio.WorkloadSpec, batch)
		for j := range specs {
			specs[j] = benchSpec(fmt.Sprintf("sync-%d-%d", i, j))
		}
		errs := make([]error, batch)
		workpool.Run(batch, 0, func(j int) {
			_, errs[j] = p.Deploy("ci", specs[j])
		})
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(batch, "workloads/op")
}

// BenchmarkDeployAsyncPipelined is the v2 async surface: every spec gets
// a DeployAsync future immediately (admission pipelines across the whole
// batch — no pool barrier), then the batch awaits all results. Gated
// against regression alongside the deploy benchmarks.
func BenchmarkDeployAsyncPipelined(b *testing.B) {
	p := benchDeployPlatform(b)
	const batch = 16
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		futures := make([]*genio.Deployment, batch)
		for j := 0; j < batch; j++ {
			d, err := p.DeployAsync(ctx, "ci", benchSpec(fmt.Sprintf("async-%d-%d", i, j)))
			if err != nil {
				b.Fatal(err)
			}
			futures[j] = d
		}
		for _, d := range futures {
			if _, err := d.Result(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(batch, "workloads/op")
}

// BenchmarkHTTPDeployThroughput is the networked control plane end to
// end: a 16-wide deploy storm where every workload crosses geniod's
// HTTP surface — 16 concurrent signed requests riding session-HMAC
// auth, pooled codec buffers, and kept-alive connections, with a
// typed-error wire decode on the way back. The gap to
// DeployAsyncPipelined is the wire tax; gated against regression
// alongside the deploy benchmarks. (The async-futures wire shape —
// submit + long-poll await, two requests per workload — is kept under
// BenchmarkHTTPDeployAsyncFutures.)
func BenchmarkHTTPDeployThroughput(b *testing.B) {
	p := benchDeployPlatform(b)
	srv := server.New(p, server.Options{CA: p.CA})
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	id, err := p.CA.Issue("ci", pki.RoleService)
	if err != nil {
		b.Fatal(err)
	}
	cli := client.NewHTTP(ts.URL, client.WithIdentity(id))
	b.Cleanup(func() { cli.Close() })
	const batch = 16
	ctx := context.Background()
	// Establish the session and warm the connection pool outside the
	// measured region, as a long-lived storm client would.
	if _, err := cli.Deploy(ctx, api.FromWorkloadSpec(benchSpec("http-warm"))); err != nil {
		b.Fatal(err)
	}
	// A fixed pool of 16 sender goroutines, fed one op index each per
	// iteration, so the measurement covers the wire — not per-op
	// goroutine and closure churn that no real storm client pays.
	var wg sync.WaitGroup
	errs := make([]error, batch)
	jobs := make(chan int, batch)
	for j := 0; j < batch; j++ {
		go func(j int) {
			buf := make([]byte, 0, 32)
			for i := range jobs {
				buf = append(buf[:0], "http-"...)
				buf = strconv.AppendInt(buf, int64(i), 10)
				buf = append(buf, '-')
				buf = strconv.AppendInt(buf, int64(j), 10)
				_, errs[j] = cli.Deploy(ctx, api.FromWorkloadSpec(benchSpec(string(buf))))
				wg.Done()
			}
		}(j)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wg.Add(batch)
		for j := 0; j < batch; j++ {
			jobs <- i
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	close(jobs)
	b.ReportMetric(batch, "workloads/op")
}

// BenchmarkHTTPDeployAsyncFutures is the future-handle wire shape: 16
// async submits then 16 long-poll awaits — two requests per workload,
// the price of a resumable handle. Kept alongside HTTPDeployThroughput
// so the per-request overhead of the futures surface stays visible.
func BenchmarkHTTPDeployAsyncFutures(b *testing.B) {
	p := benchDeployPlatform(b)
	srv := server.New(p, server.Options{CA: p.CA})
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	id, err := p.CA.Issue("ci", pki.RoleService)
	if err != nil {
		b.Fatal(err)
	}
	cli := client.NewHTTP(ts.URL, client.WithIdentity(id))
	b.Cleanup(func() { cli.Close() })
	const batch = 16
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		futures := make([]client.Deployment, batch)
		for j := 0; j < batch; j++ {
			spec := api.FromWorkloadSpec(benchSpec(fmt.Sprintf("httpf-%d-%d", i, j)))
			d, err := cli.DeployAsync(ctx, spec)
			if err != nil {
				b.Fatal(err)
			}
			futures[j] = d
		}
		for _, d := range futures {
			if _, err := d.Await(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(batch, "workloads/op")
}

// BenchmarkHTTPDeployBatch is the batched wire path: the same 16
// workloads as HTTPDeployThroughput, but shipped as ONE signed
// /v2/deploy/batch request — one auth verify, one codec round-trip,
// one connection write for the whole storm. The gap to
// HTTPDeployThroughput is the per-request wire tax the batch
// amortizes. Gated against regression alongside the deploy benchmarks.
func BenchmarkHTTPDeployBatch(b *testing.B) {
	p := benchDeployPlatform(b)
	srv := server.New(p, server.Options{CA: p.CA})
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	id, err := p.CA.Issue("ci", pki.RoleService)
	if err != nil {
		b.Fatal(err)
	}
	cli := client.NewHTTP(ts.URL, client.WithIdentity(id))
	b.Cleanup(func() { cli.Close() })
	const batch = 16
	ctx := context.Background()
	specs := make([]api.WorkloadSpec, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range specs {
			specs[j] = api.FromWorkloadSpec(benchSpec(fmt.Sprintf("hb-%d-%d", i, j)))
		}
		results, err := cli.DeployBatch(ctx, specs)
		if err != nil {
			b.Fatal(err)
		}
		for j, r := range results {
			if r.Err != nil {
				b.Fatalf("batch element %d: %v", j, r.Err)
			}
		}
	}
	b.ReportMetric(batch, "workloads/op")
}

// BenchmarkWatchFanout100Subs measures the encode-once SSE fan-out:
// 100 authenticated watch streams are held open against the server,
// then each op publishes ONE lifecycle event and waits until every
// subscriber has received it over its own connection. The server
// renders the SSE frame once per event and shares the bytes across all
// 100 streams; before encode-once each subscriber paid its own
// marshal. Gated against regression alongside the deploy benchmarks.
func BenchmarkWatchFanout100Subs(b *testing.B) {
	p := benchDeployPlatform(b)
	p.RBAC.SetRole(rbac.Role{Name: "watcher", Permissions: []rbac.Permission{
		{Verb: "watch", Resource: "deployments", Namespace: "*"},
	}})
	if err := p.RBAC.Bind("ci", "watcher"); err != nil {
		b.Fatal(err)
	}
	srv := server.New(p, server.Options{CA: p.CA})
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	id, err := p.CA.Issue("ci", pki.RoleService)
	if err != nil {
		b.Fatal(err)
	}
	cli := client.NewHTTP(ts.URL, client.WithIdentity(id))
	b.Cleanup(func() { cli.Close() })
	const subs = 100
	ctx, cancel := context.WithCancel(context.Background())
	b.Cleanup(cancel)
	streams := make([]<-chan api.LifecycleEvent, subs)
	for i := range streams {
		ch, err := cli.Watch(ctx, api.WatchSelector{})
		if err != nil {
			b.Fatal(err)
		}
		streams[i] = ch
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("fan-%d", i)
		ev := core.LifecycleEvent{Workload: name, Tenant: "acme", State: core.StatePending}
		if err := p.PublishEventContext(ctx, events.Event{
			Topic: events.TopicDeployLifecycle, Key: name, Payload: ev,
		}); err != nil {
			b.Fatal(err)
		}
		for s, ch := range streams {
			got, ok := <-ch
			if !ok {
				b.Fatalf("stream %d closed", s)
			}
			if got.Workload != name {
				b.Fatalf("stream %d: got event for %q, want %q", s, got.Workload, name)
			}
		}
	}
	b.ReportMetric(subs, "deliveries/op")
}

// --- Warm-slot runtime pool ---------------------------------------------------

// benchWarmSpec is benchSpec pinned to hard isolation: a dedicated VM is
// its workload's sole occupant, so every stop parks it as a warm slot.
func benchWarmSpec(name string) genio.WorkloadSpec {
	s := benchSpec(name)
	s.Isolation = genio.IsolationHard
	return s
}

// warmDeployCycle runs one stop→redeploy round: stop workload i (parking
// its dedicated VM) and deploy workload i+1 with the identical spec.
func warmDeployCycle(p *core.Platform, i int) (*orchestrator.Workload, error) {
	if err := p.Cluster.Stop(fmt.Sprintf("warm-%d", i)); err != nil {
		return nil, err
	}
	return p.Deploy("ci", benchWarmSpec(fmt.Sprintf("warm-%d", i+1)))
}

// BenchmarkWarmDeploy is the tentpole fast path: each op stops a
// workload (parking its VM warm) and redeploys the same (tenant, image,
// shape), which claims the parked slot in O(1) — no scan fan-out, no
// scheduler filter/score, no VM spin-up. Gated in CI against the cold
// path staying >=5x slower (TestWarmDeploySpeedup) and against its own
// regression via genio-benchdiff.
func BenchmarkWarmDeploy(b *testing.B) {
	p := benchDeployPlatform(b)
	p.Cluster.Settings.WarmPoolEnabled = true
	if _, err := p.Deploy("ci", benchWarmSpec("warm-0")); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := warmDeployCycle(p, i)
		if err != nil {
			b.Fatal(err)
		}
		if w.Strategy != "warm" {
			b.Fatalf("cycle %d missed the warm pool (strategy %q)", i, w.Strategy)
		}
	}
}

// BenchmarkColdRepeatDeploy is the identical stop→redeploy cycle with
// the warm pool off and the verdict cache disabled: every round pays
// admission scan fan-out, scheduler filter/score, and a fresh dedicated
// VM — the cost BenchmarkWarmDeploy's claim path avoids.
func BenchmarkColdRepeatDeploy(b *testing.B) {
	p := benchDeployPlatform(b)
	p.Cluster.AdmissionCacheDisabled = true
	if _, err := p.Deploy("ci", benchWarmSpec("warm-0")); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := warmDeployCycle(p, i); err != nil {
			b.Fatal(err)
		}
	}
}

// repeatDeployP50 measures the median stop→redeploy latency over rounds.
func repeatDeployP50(t *testing.T, p *core.Platform, rounds int) time.Duration {
	t.Helper()
	if _, err := p.Deploy("ci", benchWarmSpec("warm-0")); err != nil {
		t.Fatal(err)
	}
	samples := make([]time.Duration, rounds)
	for i := range samples {
		start := time.Now()
		if _, err := warmDeployCycle(p, i); err != nil {
			t.Fatal(err)
		}
		samples[i] = time.Since(start)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[rounds/2]
}

// TestWarmDeploySpeedup is the acceptance bar for the warm-slot pool:
// the p50 repeat-deploy latency through the warm claim path must be at
// least 5x better than the cold path (full admission rescan, scheduling,
// VM spin-up). Medians over enough rounds keep scheduler noise out.
func TestWarmDeploySpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	const rounds = 301

	warm := benchDeployPlatform(t)
	warm.Cluster.Settings.WarmPoolEnabled = true
	warmP50 := repeatDeployP50(t, warm, rounds)

	cold := benchDeployPlatform(t)
	cold.Cluster.AdmissionCacheDisabled = true
	coldP50 := repeatDeployP50(t, cold, rounds)

	if warmP50 <= 0 {
		warmP50 = 1
	}
	ratio := float64(coldP50) / float64(warmP50)
	t.Logf("repeat-deploy p50: cold=%v warm=%v (%.1fx)", coldP50, warmP50, ratio)
	if ratio < 5 {
		t.Fatalf("warm path p50 %v is only %.1fx better than cold %v, want >=5x",
			warmP50, ratio, coldP50)
	}
}

// TestWarmDeployAllocs pins the allocation budget of the warm
// repeat-deploy cycle. The deploy path computes Image.Digest exactly
// once per call and threads it through admission and the warm claim; a
// regression that re-hashes per consumer (or re-schedules a claimed
// deploy) shows up here as a step change in allocs/op.
func TestWarmDeployAllocs(t *testing.T) {
	p := benchDeployPlatform(t)
	p.Cluster.Settings.WarmPoolEnabled = true
	if _, err := p.Deploy("ci", benchWarmSpec("warm-0")); err != nil {
		t.Fatal(err)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		w, err := warmDeployCycle(p, i)
		if err != nil {
			t.Fatal(err)
		}
		if w.Strategy != "warm" {
			t.Fatalf("cycle %d missed the warm pool", i)
		}
		i++
	})
	// Measured ~64 allocs/op for stop+deploy through the claim path; the
	// bound leaves headroom for incidental churn while catching a
	// per-consumer re-hash (one extra Digest costs ~15 allocations) or a
	// claimed deploy falling back to the scheduler scan.
	if allocs > 110 {
		t.Fatalf("warm stop+redeploy cycle allocates %.0f/op, want <= 110", allocs)
	}
}

// --- Placement engine -------------------------------------------------------

// BenchmarkSchedule1kNodes is the scheduler's hot-path contract: one
// full filter -> score pass over a 1000-node fleet must stay O(nodes)
// with zero allocations (the cluster feeds the engine its cached,
// name-sorted candidate slice, so this is exactly the per-deploy
// placement cost). The AllocsPerRun assertion pins allocs/op at 0
// before timing starts.
func BenchmarkSchedule1kNodes(b *testing.B) {
	eng := scheduler.New()
	cands := make([]scheduler.Candidate, 1000)
	for i := range cands {
		cands[i] = scheduler.Candidate{
			Node:            fmt.Sprintf("olt-%04d", i),
			Capacity:        scheduler.Resources{CPUMilli: 16000, MemoryMB: 32768},
			Used:            scheduler.Resources{CPUMilli: (i * 397) % 12000, MemoryMB: (i * 991) % 24000},
			TenantWorkloads: i % 4,
			SharedVMs:       i % 3,
			Cordoned:        i%17 == 0,
		}
	}
	req := scheduler.Request{
		Workload: "bench", Tenant: "acme",
		Demand:   scheduler.Resources{CPUMilli: 500, MemoryMB: 512},
		Strategy: scheduler.StrategyBinpack,
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, ok := eng.Select(&req, cands); !ok {
			b.Fatal("no feasible candidate")
		}
	}); allocs != 0 {
		b.Fatalf("Select allocates %.1f/op on the no-contention path, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := eng.Select(&req, cands); !ok {
			b.Fatal("no feasible candidate")
		}
	}
}

// BenchmarkFailoverReschedule measures the policy-aware failover path:
// an 8-node cluster loses the node carrying a 32-workload binpacked
// hotspot, every victim reschedules through the scheduler, and the
// node rejoins for the next round.
func BenchmarkFailoverReschedule(b *testing.B) {
	reg := container.NewRegistry()
	reg.Push(container.AnalyticsImage(), nil)
	c := orchestrator.NewCluster("bench", reg, orchestrator.Settings{})
	capacity := orchestrator.Resources{CPUMilli: 1 << 20, MemoryMB: 1 << 20}
	for i := 0; i < 8; i++ {
		c.AddNode(fmt.Sprintf("olt-%d", i), capacity)
	}
	for i := 0; i < 32; i++ {
		if _, err := c.Deploy("ops", orchestrator.WorkloadSpec{
			Name: fmt.Sprintf("w-%d", i), Tenant: "acme", ImageRef: "acme/analytics:2.0.1",
			Isolation: orchestrator.IsolationSoft,
			Resources: orchestrator.Resources{CPUMilli: 100, MemoryMB: 128},
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, ok := c.Workload("w-0")
		if !ok {
			b.Fatal("hotspot workload lost")
		}
		hot := w.Node
		res, err := c.FailNode(hot)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Evicted) != 0 {
			b.Fatalf("evictions under generous capacity: %v", res.Evicted)
		}
		c.AddNode(hot, capacity)
	}
}

// BenchmarkRingLookup measures the federation router's hot path: one
// consistent-hash ownership lookup on a 16-member ring (128 vnodes per
// member). The lookup runs ahead of the per-cluster scheduler on every
// federated deploy, so it must not allocate.
func BenchmarkRingLookup(b *testing.B) {
	r := federation.NewRing(federation.DefaultReplicas)
	for i := 0; i < 16; i++ {
		r.Add(fmt.Sprintf("edge-%02d", i))
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, ok := r.Owner("acme", "sha256:77aa00"); !ok {
			b.Fatal("empty ring")
		}
	}); allocs != 0 {
		b.Fatalf("Owner allocates %.1f/op, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Owner("acme", "sha256:77aa00"); !ok {
			b.Fatal("empty ring")
		}
	}
}

// BenchmarkFederatedDeploy measures a full federated placement across a
// 16-cluster × 1k-node fleet: region filter, ring ownership with the
// bounded-load check, then the owning cluster's scheduler over its 1000
// candidates. Tenants rotate so placements spread over the ring rather
// than hammering one member's lock.
func BenchmarkFederatedDeploy(b *testing.B) {
	reg := container.NewRegistry()
	reg.Push(container.AnalyticsImage(), nil)
	fed := federation.New(reg)
	capacity := orchestrator.Resources{CPUMilli: 1 << 20, MemoryMB: 1 << 20}
	for ci := 0; ci < 16; ci++ {
		name := fmt.Sprintf("edge-%02d", ci)
		c := orchestrator.NewCluster(name, reg, orchestrator.Settings{})
		for n := 0; n < 1000; n++ {
			c.AddNode(fmt.Sprintf("%s-olt-%04d", name, n), capacity)
		}
		region := "west"
		if ci%2 == 1 {
			region = "east"
		}
		if err := fed.AddCluster(name, region, c); err != nil {
			b.Fatal(err)
		}
	}
	demand := orchestrator.Resources{CPUMilli: 100, MemoryMB: 128}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := fed.Deploy("ops", orchestrator.WorkloadSpec{
			Name: fmt.Sprintf("bench-%d", i), Tenant: fmt.Sprintf("t-%d", i%64),
			ImageRef:  "acme/analytics:2.0.1",
			Isolation: orchestrator.IsolationSoft, Resources: demand,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObserveRuntimeParallel streams attack traces from concurrent
// goroutines through enforcement, detection, and the incident bus.
func BenchmarkObserveRuntimeParallel(b *testing.B) {
	p := benchDeployPlatform(b)
	if _, err := p.Deploy("ci", benchSpec("victim")); err != nil {
		b.Fatal(err)
	}
	events := trace.ReverseShellTrace("victim", "acme")
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p.ObserveRuntime(events)
		}
	})
	b.StopTimer()
	p.Flush()
}

// BenchmarkEventSpineThroughput measures the raw spine: concurrent
// publishers across distinct keys fanning out to one counting
// subscriber, the substrate every telemetry stream now rides.
func BenchmarkEventSpineThroughput(b *testing.B) {
	s := events.NewSpine()
	defer s.Close()
	var delivered atomic.Int64
	if _, err := s.Subscribe("bench", []events.Topic{events.TopicMetric}, func(batch []events.Event) {
		delivered.Add(int64(len(batch)))
	}); err != nil {
		b.Fatal(err)
	}
	var seq atomic.Int64
	var pubErr atomic.Pointer[error]
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		key := fmt.Sprintf("tenant-%d", seq.Add(1))
		ev := events.Event{Topic: events.TopicMetric, Key: key,
			Payload: events.Metric{Name: "bench", Value: 1, Label: key}}
		for pb.Next() {
			if err := s.Publish(ev); err != nil {
				// b.Fatal must run on the benchmark goroutine, not a
				// RunParallel worker; record and fail after.
				pubErr.CompareAndSwap(nil, &err)
				return
			}
		}
	})
	b.StopTimer()
	if errp := pubErr.Load(); errp != nil {
		b.Fatal(*errp)
	}
	s.Flush()
	if got := delivered.Load(); got != int64(b.N) {
		b.Fatalf("delivered %d events, want %d", got, b.N)
	}
}

// BenchmarkIncidentStormParallel is the platform-level incident storm:
// concurrent producers with distinct workload keys exercise the spine's
// sharding end to end (publish -> shard -> incident view), where the old
// single-writer bus serialized everything onto one queue.
func BenchmarkIncidentStormParallel(b *testing.B) {
	p, err := core.New(core.SecureConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(p.Close)
	var seq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		inc := core.Incident{Source: "storm",
			Workload: fmt.Sprintf("w-%d", seq.Add(1)), Detail: "parallel storm"}
		for pb.Next() {
			p.RecordIncident(inc)
		}
	})
	b.StopTimer()
	p.Flush()
	// RecordIncident cannot fail, so exactness is checked post-run on
	// the benchmark goroutine.
	if got := p.IncidentCounts()["storm"]; got != b.N {
		b.Fatalf("recorded %d incidents, want %d", got, b.N)
	}
}

// BenchmarkIncidentFanIn measures the incident path under concurrent
// producers sharing one key — the path every enforcement verdict and
// detection alert takes on the runtime hot path (formerly the
// single-writer bus benchmark; the spine must meet or beat it).
func BenchmarkIncidentFanIn(b *testing.B) {
	p, err := core.New(core.SecureConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(p.Close)
	inc := core.Incident{Source: "bench", Workload: "w", Detail: "fan-in"}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p.RecordIncident(inc)
		}
	})
	b.StopTimer()
	p.Flush()
	if got := p.IncidentCounts()["bench"]; got != b.N {
		b.Fatalf("recorded %d incidents, want %d", got, b.N)
	}
}

func BenchmarkFullCampaignSecure(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := core.New(core.SecureConfig())
		if err != nil {
			b.Fatal(err)
		}
		c, err := attack.NewCampaign(p)
		if err != nil {
			b.Fatal(err)
		}
		results := c.Run()
		if attack.Summary(results)[attack.OutcomeMissed] != 0 {
			b.Fatal("secure platform missed an attack")
		}
		p.Close()
	}
}

func BenchmarkSecureBootAndAttest(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := core.New(core.SecureConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.AddEdgeNode("olt", genio.Resources{CPUMilli: 1000, MemoryMB: 1024}); err != nil {
			b.Fatal(err)
		}
		p.Close()
	}
}
