package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeStream renders test2json output events for (name, result) pairs,
// alternating the single-line and split forms go test actually emits.
func writeStream(t *testing.T, dir, file string, entries [][2]string) string {
	t.Helper()
	type ev struct {
		Action  string `json:"Action"`
		Package string `json:"Package"`
		Output  string `json:"Output,omitempty"`
	}
	var b strings.Builder
	enc := json.NewEncoder(&b)
	must := func(e ev) {
		if err := enc.Encode(e); err != nil {
			t.Fatal(err)
		}
	}
	must(ev{Action: "start", Package: "genio"})
	for i, e := range entries {
		if i%2 == 0 {
			// Split form: name event, then measurement event.
			must(ev{Action: "output", Package: "genio", Output: e[0] + "-8   \t"})
			must(ev{Action: "output", Package: "genio", Output: e[1] + "\n"})
		} else {
			must(ev{Action: "output", Package: "genio", Output: e[0] + "-8   \t" + e[1] + "\n"})
		}
	}
	must(ev{Action: "pass", Package: "genio"})
	path := filepath.Join(dir, file)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchdiffPassAndRegress(t *testing.T) {
	dir := t.TempDir()
	base := writeStream(t, dir, "base.json", [][2]string{
		{"BenchmarkEventSpineThroughput", "1000000\t 250.0 ns/op\t 189 B/op"},
		{"BenchmarkDeployParallel", "100000\t 12000 ns/op\t 3300 B/op"},
		{"BenchmarkIncidentFanIn", "1000000\t 1000 ns/op\t 610 B/op"},
		{"BenchmarkUnrelated", "1000\t 99.0 ns/op"},
	})

	// Within threshold: +10% on one, improvement on another.
	ok := writeStream(t, dir, "ok.json", [][2]string{
		{"BenchmarkEventSpineThroughput", "1000000\t 275.0 ns/op"},
		{"BenchmarkDeployParallel", "100000\t 11000 ns/op"},
		{"BenchmarkIncidentFanIn", "1000000\t 900 ns/op"},
	})
	var buf bytes.Buffer
	code, err := run([]string{"-baseline", base, "-new", ok,
		"-match", "EventSpine|Deploy|Incident", "-threshold", "25"}, &buf)
	if err != nil || code != 0 {
		t.Fatalf("ok case: code=%d err=%v\n%s", code, err, buf.String())
	}
	if !strings.Contains(buf.String(), "3 benchmarks gated") {
		t.Fatalf("unexpected summary:\n%s", buf.String())
	}

	// Past threshold on the spine bench.
	bad := writeStream(t, dir, "bad.json", [][2]string{
		{"BenchmarkEventSpineThroughput", "1000000\t 400.0 ns/op"},
		{"BenchmarkDeployParallel", "100000\t 12000 ns/op"},
		{"BenchmarkIncidentFanIn", "1000000\t 1000 ns/op"},
	})
	buf.Reset()
	code, err = run([]string{"-baseline", base, "-new", bad,
		"-match", "EventSpine|Deploy|Incident", "-threshold", "25"}, &buf)
	if err != nil || code != 1 {
		t.Fatalf("regress case: code=%d err=%v\n%s", code, err, buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESS  BenchmarkEventSpineThroughput") {
		t.Fatalf("regression not reported:\n%s", buf.String())
	}
}

// TestBenchdiffGatesMemoryMetrics: a flat ns/op cannot hide a B/op or
// allocs/op regression when both runs carry -benchmem columns.
func TestBenchdiffGatesMemoryMetrics(t *testing.T) {
	dir := t.TempDir()
	base := writeStream(t, dir, "base.json", [][2]string{
		{"BenchmarkWarmDeploy", "100000\t 9000 ns/op\t 4400 B/op\t 64 allocs/op"},
		{"BenchmarkSchedule1kNodes", "50000\t 21000 ns/op\t 0 B/op\t 0 allocs/op"},
	})

	// ns/op flat, allocations doubled: must fail on allocs/op.
	bloated := writeStream(t, dir, "bloated.json", [][2]string{
		{"BenchmarkWarmDeploy", "100000\t 9100 ns/op\t 4500 B/op\t 130 allocs/op"},
		{"BenchmarkSchedule1kNodes", "50000\t 21000 ns/op\t 0 B/op\t 0 allocs/op"},
	})
	var buf bytes.Buffer
	code, err := run([]string{"-baseline", base, "-new", bloated, "-threshold", "25"}, &buf)
	if err != nil || code != 1 {
		t.Fatalf("alloc regression: code=%d err=%v\n%s", code, err, buf.String())
	}
	if !strings.Contains(buf.String(), "allocs/op") || !strings.Contains(buf.String(), "REGRESS  BenchmarkWarmDeploy") {
		t.Fatalf("allocs/op regression not reported:\n%s", buf.String())
	}

	// A zero-alloc baseline is an absolute contract: one allocation fails
	// it regardless of percentages.
	leak := writeStream(t, dir, "leak.json", [][2]string{
		{"BenchmarkWarmDeploy", "100000\t 9000 ns/op\t 4400 B/op\t 64 allocs/op"},
		{"BenchmarkSchedule1kNodes", "50000\t 21000 ns/op\t 16 B/op\t 1 allocs/op"},
	})
	buf.Reset()
	code, err = run([]string{"-baseline", base, "-new", leak, "-threshold", "25"}, &buf)
	if err != nil || code != 1 {
		t.Fatalf("zero-baseline regression: code=%d err=%v\n%s", code, err, buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESS  BenchmarkSchedule1kNodes") {
		t.Fatalf("zero-alloc contract break not reported:\n%s", buf.String())
	}

	// A new run without -benchmem must not gate memory at all (absence is
	// not zero) — and improvements never fail.
	nomem := writeStream(t, dir, "nomem.json", [][2]string{
		{"BenchmarkWarmDeploy", "100000\t 8000 ns/op"},
		{"BenchmarkSchedule1kNodes", "50000\t 20000 ns/op"},
	})
	buf.Reset()
	code, err = run([]string{"-baseline", base, "-new", nomem, "-threshold", "25"}, &buf)
	if err != nil || code != 0 {
		t.Fatalf("missing -benchmem treated as regression: code=%d err=%v\n%s", code, err, buf.String())
	}
	if strings.Contains(buf.String(), "B/op") {
		t.Fatalf("memory gated without measurements on both sides:\n%s", buf.String())
	}
}

func TestBenchdiffNewAndGoneBenchmarks(t *testing.T) {
	dir := t.TempDir()
	base := writeStream(t, dir, "base.json", [][2]string{
		{"BenchmarkOld", "1000\t 100 ns/op"},
		{"BenchmarkShared", "1000\t 100 ns/op"},
	})
	cur := writeStream(t, dir, "new.json", [][2]string{
		{"BenchmarkShared", "1000\t 105 ns/op"},
		{"BenchmarkBrandNew", "1000\t 50 ns/op"},
	})
	var buf bytes.Buffer
	code, err := run([]string{"-baseline", base, "-new", cur, "-threshold", "25"}, &buf)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v\n%s", code, err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "GONE     BenchmarkOld") {
		t.Fatalf("retired benchmark not reported:\n%s", out)
	}
	if !strings.Contains(out, "NEW      BenchmarkBrandNew") {
		t.Fatalf("new benchmark not reported:\n%s", out)
	}
}

// TestBenchdiffSubBenchmarkNames: b.Run sub-benchmarks parse under their
// own names instead of silently folding into the parent's minimum.
func TestBenchdiffSubBenchmarkNames(t *testing.T) {
	dir := t.TempDir()
	path := writeStream(t, dir, "sub.json", [][2]string{
		{"BenchmarkParent", "1000\t 500 ns/op"},
		{"BenchmarkParent/fast-case", "1000\t 10 ns/op"},
		{"BenchmarkParent/slow-case", "1000\t 900 ns/op"},
	})
	res, err := parseBenchJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if res["BenchmarkParent"].ns != 500 {
		t.Fatalf("parent = %v, want 500 (sub-case leaked into parent?)", res["BenchmarkParent"])
	}
	if res["BenchmarkParent/fast-case"].ns != 10 || res["BenchmarkParent/slow-case"].ns != 900 {
		t.Fatalf("sub-benchmarks misparsed: %v", res)
	}
}

func TestBenchdiffNoMatchErrors(t *testing.T) {
	dir := t.TempDir()
	base := writeStream(t, dir, "base.json", [][2]string{{"BenchmarkA", "1\t 1 ns/op"}})
	cur := writeStream(t, dir, "new.json", [][2]string{{"BenchmarkA", "1\t 1 ns/op"}})
	var buf bytes.Buffer
	if code, err := run([]string{"-baseline", base, "-new", cur, "-match", "Nope"}, &buf); err == nil || code != 2 {
		t.Fatalf("expected usage error, got code=%d err=%v", code, err)
	}
}

// TestBenchdiffParsesRealBaseline sanity-checks the parser against the
// repository's committed baseline file.
func TestBenchdiffParsesRealBaseline(t *testing.T) {
	matches, err := filepath.Glob("../../BENCH_*.json")
	if err != nil || len(matches) == 0 {
		t.Skip("no committed baseline")
	}
	res, err := parseBenchJSON(matches[0])
	if err != nil {
		t.Fatalf("parse %s: %v", matches[0], err)
	}
	if len(res) < 10 {
		t.Fatalf("only %d benchmarks parsed from %s", len(res), matches[0])
	}
	if _, ok := res["BenchmarkDeployParallel"]; !ok {
		t.Fatalf("BenchmarkDeployParallel missing from %v", res)
	}
}
