// Command genio-benchdiff compares two `go test -bench -json` outputs
// (test2json streams, as produced by `make bench-json`) and fails when a
// benchmark regressed beyond a threshold — the CI guardrail keeping the
// spine and deploy hot paths honest against the committed BENCH_*.json
// baseline.
//
// Three metrics are gated per benchmark: ns/op always, and — when both
// runs carry -benchmem measurements — B/op and allocs/op too, so an
// allocation regression cannot hide behind a flat ns/op (allocation
// costs often land on someone else's profile, as GC assist). A
// benchmark whose baseline is allocation-free regresses on the first
// byte or allocation it gains, whatever the percentage.
//
// Usage:
//
//	genio-benchdiff -baseline BENCH_20260727.json -new bench-new.json \
//	    -match 'EventSpine|Deploy|Incident' -threshold 25
//
// Benchmarks present in only one file are reported but never fail the
// run (new benchmarks land without a baseline; retired ones leave one
// behind). Exit status: 0 ok, 1 regression, 2 usage/parse error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "genio-benchdiff:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("genio-benchdiff", flag.ContinueOnError)
	fs.SetOutput(out)
	baseline := fs.String("baseline", "", "baseline bench JSON (test2json stream)")
	fresh := fs.String("new", "", "new bench JSON to compare against the baseline")
	match := fs.String("match", ".", "regexp selecting benchmarks to gate")
	threshold := fs.Float64("threshold", 25, "max allowed regression per metric, percent")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *baseline == "" || *fresh == "" {
		return 2, fmt.Errorf("both -baseline and -new are required")
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		return 2, fmt.Errorf("bad -match: %w", err)
	}

	base, err := parseBenchJSON(*baseline)
	if err != nil {
		return 2, fmt.Errorf("parse %s: %w", *baseline, err)
	}
	cur, err := parseBenchJSON(*fresh)
	if err != nil {
		return 2, fmt.Errorf("parse %s: %w", *fresh, err)
	}

	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)

	code := 0
	compared := 0
	for _, name := range names {
		if !re.MatchString(name) {
			continue
		}
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Fprintf(out, "GONE     %-40s baseline %.1f ns/op, absent in new run\n", name, b.ns)
			continue
		}
		compared++
		if gateMetric(out, name, "ns/op", b.ns, c.ns, *threshold) {
			code = 1
		}
		// Memory gates need measurements on both sides: a run without
		// -benchmem must not read as "dropped to zero".
		if b.hasMem && c.hasMem {
			if gateMetric(out, name, "B/op", b.bytes, c.bytes, *threshold) {
				code = 1
			}
			if gateMetric(out, name, "allocs/op", b.allocs, c.allocs, *threshold) {
				code = 1
			}
		}
	}
	for name := range cur {
		if re.MatchString(name) {
			if _, ok := base[name]; !ok {
				fmt.Fprintf(out, "NEW      %-40s %.1f ns/op (no baseline)\n", name, cur[name].ns)
			}
		}
	}
	if compared == 0 {
		return 2, fmt.Errorf("no benchmark matched %q in both files", *match)
	}
	fmt.Fprintf(out, "%d benchmarks gated at %.0f%%\n", compared, *threshold)
	return code, nil
}

// gateMetric prints one comparison line and reports whether the metric
// regressed past the threshold. A zero baseline is an absolute
// contract (alloc-free or byte-free): any growth regresses it.
func gateMetric(out io.Writer, name, unit string, b, c, threshold float64) bool {
	var deltaPct float64
	switch {
	case b == 0 && c == 0:
		deltaPct = 0
	case b == 0:
		deltaPct = math.Inf(1)
	default:
		deltaPct = (c - b) / b * 100
	}
	if deltaPct > threshold {
		fmt.Fprintf(out, "REGRESS  %-40s %.1f -> %.1f %s (%+.1f%% > %.0f%%)\n",
			name, b, c, unit, deltaPct, threshold)
		return true
	}
	fmt.Fprintf(out, "ok       %-40s %.1f -> %.1f %s (%+.1f%%)\n", name, b, c, unit, deltaPct)
	return false
}

// benchLine matches "<iterations> <ns> ns/op ..." — the measurement half
// of a benchmark result. B/op and allocs/op follow when the run used
// -benchmem (an MB/s column may sit between).
var benchLine = regexp.MustCompile(`^\s*(\d+)\s+([0-9.]+) ns/op`)

var (
	memBytes  = regexp.MustCompile(`([0-9.]+) B/op`)
	memAllocs = regexp.MustCompile(`([0-9.]+) allocs/op`)
)

// benchName matches the name half, "BenchmarkFoo-8" — including b.Run
// sub-benchmarks like "BenchmarkFoo/case-8" (the -N GOMAXPROCS suffix is
// stripped so runs from different hosts compare).
var benchName = regexp.MustCompile(`^(Benchmark[\w/.,=:-]+?)(?:-\d+)?\s`)

// benchResult is one benchmark's summary across repeated runs.
type benchResult struct {
	ns     float64
	bytes  float64
	allocs float64
	hasMem bool
}

// parseBenchJSON extracts name -> measurements from a test2json stream.
// go test prints the benchmark name first and the measurements once the
// run completes, so test2json usually splits them across two Output
// events; both the split and the single-line form are handled. Repeated
// runs of one benchmark (-count > 1) keep the per-metric minimum, the
// conventional noise-resistant summary.
func parseBenchJSON(path string) (map[string]benchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := make(map[string]benchResult)
	lastName := ""
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Action, Output string
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("bad test2json line: %w", err)
		}
		if ev.Action != "output" {
			continue
		}
		text := ev.Output
		if m := benchName.FindStringSubmatch(text); m != nil {
			lastName = m[1]
			text = strings.TrimPrefix(text, m[0])
		}
		m := benchLine.FindStringSubmatch(text)
		if m == nil || lastName == "" {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		r := benchResult{ns: ns}
		if bm := memBytes.FindStringSubmatch(text); bm != nil {
			if am := memAllocs.FindStringSubmatch(text); am != nil {
				r.bytes, _ = strconv.ParseFloat(bm[1], 64)
				r.allocs, _ = strconv.ParseFloat(am[1], 64)
				r.hasMem = true
			}
		}
		prev, seen := out[lastName]
		if !seen {
			out[lastName] = r
			continue
		}
		// Per-metric minimum across -count repeats. Mem stats are
		// per-benchmark constants in practice, but min keeps the merge
		// symmetric and order-independent.
		prev.ns = math.Min(prev.ns, r.ns)
		if r.hasMem {
			if prev.hasMem {
				prev.bytes = math.Min(prev.bytes, r.bytes)
				prev.allocs = math.Min(prev.allocs, r.allocs)
			} else {
				prev.bytes, prev.allocs, prev.hasMem = r.bytes, r.allocs, true
			}
		}
		out[lastName] = prev
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark results found")
	}
	return out, nil
}
