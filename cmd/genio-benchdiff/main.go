// Command genio-benchdiff compares two `go test -bench -json` outputs
// (test2json streams, as produced by `make bench-json`) and fails when a
// benchmark regressed beyond a threshold — the CI guardrail keeping the
// spine and deploy hot paths honest against the committed BENCH_*.json
// baseline.
//
// Usage:
//
//	genio-benchdiff -baseline BENCH_20260727.json -new bench-new.json \
//	    -match 'EventSpine|Deploy|Incident' -threshold 25
//
// Benchmarks present in only one file are reported but never fail the
// run (new benchmarks land without a baseline; retired ones leave one
// behind). Exit status: 0 ok, 1 regression, 2 usage/parse error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "genio-benchdiff:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("genio-benchdiff", flag.ContinueOnError)
	fs.SetOutput(out)
	baseline := fs.String("baseline", "", "baseline bench JSON (test2json stream)")
	fresh := fs.String("new", "", "new bench JSON to compare against the baseline")
	match := fs.String("match", ".", "regexp selecting benchmarks to gate")
	threshold := fs.Float64("threshold", 25, "max allowed ns/op regression, percent")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *baseline == "" || *fresh == "" {
		return 2, fmt.Errorf("both -baseline and -new are required")
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		return 2, fmt.Errorf("bad -match: %w", err)
	}

	base, err := parseBenchJSON(*baseline)
	if err != nil {
		return 2, fmt.Errorf("parse %s: %w", *baseline, err)
	}
	cur, err := parseBenchJSON(*fresh)
	if err != nil {
		return 2, fmt.Errorf("parse %s: %w", *fresh, err)
	}

	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)

	code := 0
	compared := 0
	for _, name := range names {
		if !re.MatchString(name) {
			continue
		}
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Fprintf(out, "GONE     %-40s baseline %.1f ns/op, absent in new run\n", name, b)
			continue
		}
		compared++
		deltaPct := (c - b) / b * 100
		switch {
		case deltaPct > *threshold:
			code = 1
			fmt.Fprintf(out, "REGRESS  %-40s %.1f -> %.1f ns/op (%+.1f%% > %.0f%%)\n",
				name, b, c, deltaPct, *threshold)
		default:
			fmt.Fprintf(out, "ok       %-40s %.1f -> %.1f ns/op (%+.1f%%)\n", name, b, c, deltaPct)
		}
	}
	for name := range cur {
		if re.MatchString(name) {
			if _, ok := base[name]; !ok {
				fmt.Fprintf(out, "NEW      %-40s %.1f ns/op (no baseline)\n", name, cur[name])
			}
		}
	}
	if compared == 0 {
		return 2, fmt.Errorf("no benchmark matched %q in both files", *match)
	}
	fmt.Fprintf(out, "%d benchmarks gated at %.0f%%\n", compared, *threshold)
	return code, nil
}

// benchLine matches "<iterations> <ns> ns/op ..." — the measurement half
// of a benchmark result.
var benchLine = regexp.MustCompile(`^\s*(\d+)\s+([0-9.]+) ns/op`)

// benchName matches the name half, "BenchmarkFoo-8" — including b.Run
// sub-benchmarks like "BenchmarkFoo/case-8" (the -N GOMAXPROCS suffix is
// stripped so runs from different hosts compare).
var benchName = regexp.MustCompile(`^(Benchmark[\w/.,=:-]+?)(?:-\d+)?\s`)

// parseBenchJSON extracts name -> ns/op from a test2json stream. go
// test prints the benchmark name first and the measurements once the run
// completes, so test2json usually splits them across two Output events;
// both the split and the single-line form are handled. Repeated runs of
// one benchmark (-count > 1) keep the minimum, the conventional
// noise-resistant summary.
func parseBenchJSON(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := make(map[string]float64)
	lastName := ""
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Action, Output string
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("bad test2json line: %w", err)
		}
		if ev.Action != "output" {
			continue
		}
		text := ev.Output
		if m := benchName.FindStringSubmatch(text); m != nil {
			lastName = m[1]
			text = strings.TrimPrefix(text, m[0])
		}
		if m := benchLine.FindStringSubmatch(text); m != nil && lastName != "" {
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				continue
			}
			if prev, ok := out[lastName]; !ok || ns < prev {
				out[lastName] = ns
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark results found")
	}
	return out, nil
}
