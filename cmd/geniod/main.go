// Command geniod is the networked control-plane daemon: it hosts a
// GENIO platform behind the v2 HTTP surface (genio/api/server) so
// remote genioctl clients — and anything else speaking the genio/api
// wire contract — can deploy, watch, and operate the platform over the
// network.
//
// Usage:
//
//	geniod -addr 127.0.0.1:9650 -demo -identity-out /tmp/genioctl.id
//	geniod -posture legacy -allow-anonymous
//	geniod -demo -federation "edge-a=west,edge-b=east,edge-c=east" -pin "gov=east"
//
// -federation turns the platform into a federated control plane over
// the named clusters (deploys route region-filter → consistent-hash
// ring → per-cluster scheduler); -pin adds hard data-residency pins.
// Membership and pins are boot configuration — only the first member's
// state is durable under -data-dir.
//
// Every request is authenticated against the platform CA (Ed25519
// request signatures; see api.SignRequest) unless -allow-anonymous
// accepts a bare subject header — the legacy posture of the wire.
// -identity-out issues a service identity signed by the platform CA and
// writes it where genioctl's -identity flag (or GENIOD_IDENTITY) can
// load it.
//
// On SIGTERM/SIGINT the daemon shuts down gracefully: it stops
// accepting deployments, waits for in-flight deployment futures to
// reach a terminal state (bounded by -drain-timeout), flushes the event
// spine, and closes the platform before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"genio/api"
	"genio/api/server"
	"genio/internal/core"
	"genio/internal/demo"
	"genio/internal/orchestrator"
	"genio/internal/persist"
	"genio/internal/pki"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "geniod:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until a termination signal lands or
// the listener fails. When ready is non-nil it receives the bound
// listen address once the server is accepting — tests and scripts use
// it instead of polling.
func run(args []string, out io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("geniod", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", "127.0.0.1:9650", "listen address")
	posture := fs.String("posture", "secure", "platform posture: secure | legacy")
	demoFixture := fs.Bool("demo", false, "seed the demo fixture (two edge nodes, signed image set, admin role)")
	identityOut := fs.String("identity-out", "", "issue a client identity signed by the platform CA and write it to this path")
	identitySubject := fs.String("identity-subject", "genioctl", "subject of the -identity-out client identity")
	anonymous := fs.Bool("allow-anonymous", false, "accept unauthenticated requests, trusting the subject header")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight deployments")
	dataDir := fs.String("data-dir", "", "durable state directory (write-ahead log + snapshots); recovered on boot")
	fedSpec := fs.String("federation", "", "run federated over named clusters, e.g. \"edge-a=west,edge-b=east\"; the first member is the default cluster")
	pinSpec := fs.String("pin", "", "tenant region pins (data residency), e.g. \"gov=west,acme=east\"; requires -federation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fedMembers, err := parseFederation(*fedSpec)
	if err != nil {
		return err
	}
	pins, err := parsePins(*pinSpec)
	if err != nil {
		return err
	}
	if len(pins) > 0 && len(fedMembers) == 0 {
		return fmt.Errorf("-pin requires -federation")
	}
	var cfg core.Config
	switch *posture {
	case "secure":
		cfg = core.SecureConfig()
	case "legacy":
		cfg = core.LegacyConfig()
	default:
		return fmt.Errorf("unknown posture %q", *posture)
	}

	var opts []core.Option
	if len(fedMembers) > 0 {
		opts = append(opts, core.WithFederation(fedMembers...))
	}
	var store persist.Store
	if *dataDir != "" {
		wal, err := persist.OpenWAL(*dataDir)
		if err != nil {
			return err
		}
		store = wal
		opts = append(opts, core.WithStore(store))
	}

	var p *core.Platform
	if *demoFixture {
		subjects := []string{*identitySubject}
		if *anonymous {
			subjects = append(subjects, "anonymous")
		}
		p, err = demo.PlatformOpts(cfg, opts, subjects...)
	} else {
		p, err = core.New(cfg, opts...)
	}
	if err != nil {
		// The platform owns the store once New succeeds; before that,
		// release it here.
		if store != nil {
			_ = store.Close()
		}
		return err
	}
	if *dataDir != "" {
		fmt.Fprintf(out, "durable state in %s: %d nodes, %d workloads, %d incidents recovered\n",
			*dataDir, len(p.Cluster.Nodes()), len(p.Cluster.Workloads()), len(p.Incidents()))
	}
	if len(fedMembers) > 0 {
		for _, pin := range pins {
			if err := p.PinTenant(pin[0], pin[1]); err != nil {
				p.Close()
				return err
			}
		}
		// The demo fixture seeds the default cluster only; give the peer
		// members their own capacity so federated routing has somewhere
		// to land.
		if *demoFixture {
			for _, m := range fedMembers[1:] {
				for i := 1; i <= 2; i++ {
					name := fmt.Sprintf("%s-olt-%02d", m.Name, i)
					if _, err := p.AddEdgeNodeIn(m.Name, name, orchestrator.Resources{
						CPUMilli: 16000, MemoryMB: 32768,
					}); err != nil {
						p.Close()
						return err
					}
				}
			}
		}
		for _, m := range p.Clusters() {
			fmt.Fprintf(out, "federation member %s (region %s): %d nodes\n", m.Name, m.Region, m.Nodes)
		}
	}

	srv := server.New(p, server.Options{CA: p.CA, AllowAnonymous: *anonymous})
	if *identityOut != "" {
		id, err := p.CA.Issue(*identitySubject, pki.RoleService)
		if err != nil {
			p.Close()
			return err
		}
		if err := api.SaveIdentity(*identityOut, id); err != nil {
			p.Close()
			return err
		}
		fmt.Fprintf(out, "client identity for %q written to %s\n", *identitySubject, *identityOut)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		p.Close()
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(out, "geniod listening on %s (posture %s)\n", ln.Addr(), *posture)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-serveErr:
		_ = srv.Shutdown(context.Background())
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	fmt.Fprintln(out, "shutting down: draining in-flight deployments...")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Control plane first: refuse new deployments, wait for in-flight
	// futures, flush the spine, close the platform. Closing the platform
	// ends the watch streams, so the HTTP shutdown that follows isn't
	// held open by long-lived SSE connections.
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(out, "drain incomplete: %v\n", err)
	}
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		_ = httpSrv.Close()
	}
	fmt.Fprintln(out, "shutdown complete")
	return nil
}

// parseFederation parses the -federation value, e.g.
// "edge-a=west,edge-b=east", preserving member order (the first member
// becomes the default cluster).
func parseFederation(s string) ([]core.FederationMember, error) {
	if s == "" {
		return nil, nil
	}
	var members []core.FederationMember
	for _, part := range strings.Split(s, ",") {
		name, region, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || region == "" {
			return nil, fmt.Errorf("bad -federation entry %q (want name=region)", part)
		}
		members = append(members, core.FederationMember{Name: name, Region: region})
	}
	return members, nil
}

// parsePins parses the -pin value, e.g. "gov=west,acme=east", into
// ordered (tenant, region) pairs.
func parsePins(s string) ([][2]string, error) {
	if s == "" {
		return nil, nil
	}
	var pins [][2]string
	for _, part := range strings.Split(s, ",") {
		tenant, region, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || tenant == "" || region == "" {
			return nil, fmt.Errorf("bad -pin entry %q (want tenant=region)", part)
		}
		pins = append(pins, [2]string{tenant, region})
	}
	return pins, nil
}
