package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"genio/api"
	"genio/api/client"
)

// syncBuffer guards the daemon's output buffer: run writes from the
// daemon goroutine while the test reads after shutdown.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDaemonServesAndShutsDownGracefully boots geniod on an ephemeral
// port with the demo fixture, drives it remotely through the issued
// identity, then delivers SIGTERM and expects a clean drain.
func TestDaemonServesAndShutsDownGracefully(t *testing.T) {
	idPath := filepath.Join(t.TempDir(), "genioctl.id")
	var out syncBuffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0", "-demo",
			"-identity-out", idPath,
			"-drain-timeout", "10s",
		}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never became ready:\n%s", out.String())
	}

	id, err := api.LoadIdentity(idPath)
	if err != nil {
		t.Fatalf("load issued identity: %v", err)
	}
	cli := client.NewHTTP("http://"+addr, client.WithIdentity(id))
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	wl, err := cli.Deploy(ctx, api.WorkloadSpec{
		Name: "daemon-web", Tenant: "acme", ImageRef: "acme/analytics:2.0.1",
		Resources: api.Resources{CPUMilli: 500, MemoryMB: 512},
	})
	if err != nil {
		t.Fatalf("remote deploy: %v", err)
	}
	if wl.Node == "" {
		t.Fatalf("remote deploy placed nowhere: %+v", wl)
	}
	nodes, err := cli.Nodes(ctx, nil, "")
	if err != nil {
		t.Fatalf("remote nodes: %v", err)
	}
	if len(nodes) != 2 {
		t.Fatalf("demo fixture should expose 2 nodes, got %d", len(nodes))
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("signal: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not shut down on SIGTERM:\n%s", out.String())
	}
	text := out.String()
	for _, needle := range []string{
		"geniod listening on",
		"client identity for \"genioctl\" written to",
		"draining in-flight deployments",
		"shutdown complete",
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("daemon output missing %q:\n%s", needle, text)
		}
	}
}

func TestDaemonRejectsUnknownPosture(t *testing.T) {
	var out syncBuffer
	if err := run([]string{"-posture", "chaotic"}, &out, nil); err == nil {
		t.Fatal("unknown posture accepted")
	}
}

// TestDaemonRequiresAuthByDefault boots without -allow-anonymous and
// expects bare requests to bounce with the unauthenticated wire code.
func TestDaemonRequiresAuthByDefault(t *testing.T) {
	var out syncBuffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-demo"}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never became ready:\n%s", out.String())
	}
	cli := client.NewHTTP("http://"+addr, client.WithSubject("genioctl"))
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := cli.Nodes(ctx, nil, ""); err == nil {
		t.Error("unauthenticated request accepted in secure posture")
	}
	_ = syscall.Kill(os.Getpid(), syscall.SIGTERM)
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not shut down:\n%s", out.String())
	}
}
