package main

import (
	"bytes"
	"strings"
	"testing"
)

func runOut(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run %v: %v", args, err)
	}
	return buf.String()
}

func TestHostScanStock(t *testing.T) {
	out := runOut(t, "host")
	if !strings.Contains(out, "skipped") || !strings.Contains(out, "re-run with -tuned") {
		t.Fatalf("stock scan output missing skip warning:\n%s", out)
	}
	if !strings.Contains(out, "CVE-2023-1005") {
		t.Fatal("docker CVE missing")
	}
}

func TestHostScanTuned(t *testing.T) {
	out := runOut(t, "host", "-tuned")
	if strings.Contains(out, "re-run with -tuned") {
		t.Fatal("tuned scan still warns about skipped packages")
	}
	if !strings.Contains(out, "CVE-2023-1007") { // onos under /opt
		t.Fatal("tuned scan missed ONOS CVE")
	}
	if !strings.Contains(out, "kernel-hardening-checker") {
		t.Fatal("benchmarks not printed")
	}
}

func TestImageScanMalicious(t *testing.T) {
	out := runOut(t, "image", "freestuff/optimizer:latest")
	if !strings.Contains(out, "MALWARE: DETECTED") {
		t.Fatalf("miner not detected:\n%s", out)
	}
	if !strings.Contains(out, "CAP_SYS_ADMIN") {
		t.Fatal("docker-bench capability failure not shown")
	}
}

func TestImageScanVulnerable(t *testing.T) {
	out := runOut(t, "image", "acme/iot-gateway:1.4.2")
	if !strings.Contains(out, "hardcoded-credential") {
		t.Fatal("SAST finding missing")
	}
	if !strings.Contains(out, "MALWARE: clean") {
		t.Fatal("clean image flagged")
	}
}

func TestImagesList(t *testing.T) {
	out := runOut(t, "images")
	if !strings.Contains(out, "acme/analytics:2.0.1") {
		t.Fatalf("images list incomplete:\n%s", out)
	}
}

func TestPlan(t *testing.T) {
	out := runOut(t, "plan")
	if !strings.Contains(out, "emergency") || !strings.Contains(out, "docker-ce") {
		t.Fatalf("plan output:\n%s", out)
	}
	if !strings.Contains(out, "compensating controls") {
		t.Fatal("no-fix mitigation wave missing")
	}
}

func TestErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("no-args accepted")
	}
	if err := run([]string{"bogus"}, &buf); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run([]string{"image"}, &buf); err == nil {
		t.Fatal("image without ref accepted")
	}
	if err := run([]string{"image", "ghost:1"}, &buf); err == nil {
		t.Fatal("unknown image accepted")
	}
}
