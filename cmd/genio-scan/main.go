// Command genio-scan is the operator scanning tool: vulnerability and
// compliance scans over the modelled ONL host, supply-chain scans over
// the demo images, and patch planning — the M8/M12/M13 workflows as a CLI.
//
// Usage:
//
//	genio-scan host                 # CVE scan + hardening benchmarks
//	genio-scan host -tuned          # with non-standard ONL paths configured
//	genio-scan image acme/iot-gateway:1.4.2
//	genio-scan images               # list scannable demo images
//	genio-scan plan                 # prioritized patch plan for the host
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"genio/internal/container"
	"genio/internal/host"
	"genio/internal/malware"
	"genio/internal/sast"
	"genio/internal/sca"
	"genio/internal/scap"
	"genio/internal/vuln"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "genio-scan:", err)
		os.Exit(1)
	}
}

func demoImages() []*container.Image {
	return []*container.Image{
		container.IoTGatewayImage(),
		container.MLInferenceImage(),
		container.AnalyticsImage(),
		container.CryptominerImage(),
		container.BackdoorImage(),
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: genio-scan host|image <ref>|images|plan")
	}
	switch args[0] {
	case "host":
		fs := flag.NewFlagSet("host", flag.ContinueOnError)
		fs.SetOutput(out)
		tuned := fs.Bool("tuned", false, "add non-standard ONL search paths")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		return scanHost(out, *tuned)
	case "image":
		if len(args) < 2 {
			return fmt.Errorf("usage: genio-scan image <ref>")
		}
		return scanImage(out, args[1])
	case "images":
		for _, img := range demoImages() {
			fmt.Fprintln(out, img.Ref())
		}
		return nil
	case "plan":
		return patchPlan(out)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func tunedScanner() *vuln.Scanner {
	s := vuln.NewScanner(vuln.DefaultDatabase())
	s.AddSearchPath("/opt/")
	s.AddSearchPath("/lib/onl")
	return s
}

func scanHost(out io.Writer, tuned bool) error {
	h := host.NewONLOLT("olt-01")
	s := vuln.NewScanner(vuln.DefaultDatabase())
	if tuned {
		s = tunedScanner()
	}
	rep := s.Scan(h)
	fmt.Fprintf(out, "CVE scan of %s (%s): %d findings, %d packages scanned, %d skipped\n",
		h.Name, h.Distro, len(rep.Findings), rep.Scanned, rep.Skipped)
	if rep.Skipped > 0 {
		fmt.Fprintln(out, "warning: packages outside search paths were skipped; re-run with -tuned")
	}
	for _, f := range rep.Findings {
		fmt.Fprintf(out, "  %-14s %-16s %-10s cvss=%.1f exploitable=%v\n",
			f.CVE.ID, f.Package, f.Version, f.CVE.CVSS, f.CVE.Exploitable)
	}

	fmt.Fprintln(out, "\nhardening benchmarks:")
	for _, p := range []scap.HostProfile{
		scap.SCAPBaselineProfile(), scap.STIGProfile(), scap.KernelHardeningProfile(),
	} {
		r := scap.EvaluateHost(p, h)
		pass, fail, na, manual := r.Counts()
		fmt.Fprintf(out, "  %-26s pass=%d fail=%d n/a=%d manual=%d\n", p.Name, pass, fail, na, manual)
	}
	return nil
}

func scanImage(out io.Writer, ref string) error {
	var img *container.Image
	for _, candidate := range demoImages() {
		if candidate.Ref() == ref {
			img = candidate
			break
		}
	}
	if img == nil {
		return fmt.Errorf("unknown image %q (see 'genio-scan images')", ref)
	}

	scaRep := sca.NewScanner(sca.DependencyDatabase()).Scan(img)
	reachable := scaRep.ReachableOnly()
	fmt.Fprintf(out, "SCA: %d findings (%d reachable)\n", len(scaRep.Findings), len(reachable.Findings))
	for _, f := range reachable.Findings {
		fmt.Fprintf(out, "  %-16s %-14s %-10s cvss=%.1f\n", f.CVE.ID, f.Dependency.Name, f.Dependency.Version, f.CVE.CVSS)
	}

	sastRep := sast.NewScanner(sast.DefaultRules()).Scan(img)
	fmt.Fprintf(out, "SAST: %d findings (%d actionable)\n", len(sastRep.Findings), len(sastRep.Actionable()))
	for _, f := range sastRep.Actionable() {
		fmt.Fprintf(out, "  %-24s %s:%d\n", f.RuleID, f.Path, f.Line)
	}

	mal, err := malware.NewScanner(malware.DefaultRules())
	if err != nil {
		return err
	}
	malRep := mal.Scan(img)
	if malRep.Malicious() {
		fmt.Fprintf(out, "MALWARE: DETECTED — %s in %s\n", malRep.Matches[0].Rule, malRep.Matches[0].Path)
	} else {
		fmt.Fprintln(out, "MALWARE: clean")
	}

	bench := scap.EvaluateImage(scap.DockerBenchProfile(), img)
	pass, fail, _, _ := bench.Counts()
	fmt.Fprintf(out, "docker-bench: pass=%d fail=%d\n", pass, fail)
	for _, f := range bench.Failures() {
		fmt.Fprintf(out, "  [%s] %s: %s\n", f.Severity, f.Title, f.Detail)
	}
	return nil
}

func patchPlan(out io.Writer) error {
	h := host.NewONLOLT("olt-01")
	rep := tunedScanner().Scan(h)
	plan := vuln.BuildPlan(rep.Findings)
	fmt.Fprintf(out, "patch plan for %s (%d findings across %d packages):\n\n",
		h.Name, len(rep.Findings), len(plan.Actions))
	fmt.Fprint(out, plan.Render())
	return nil
}
