// Command genioctl is the control-plane CLI and platform demo driver.
//
// Classic demo driver (in-process):
//
//	genioctl -posture secure
//	genioctl -posture legacy
//	genioctl -posture secure -campaign
//
// Control-plane API v2 subcommands:
//
//	genioctl deploy -image acme/analytics:2.0.1 -name web -wait
//	genioctl deploy -image acme/iot-gateway:1.4.2 -timeout 2s
//	genioctl watch -deploys 4 -tenant acme
//	genioctl nodes -top
//	genioctl nodes -cluster edge-b
//	genioctl slots
//	genioctl clusters
//	genioctl clusters -evacuate edge-b
//	genioctl deploy -image acme/analytics:2.0.1 -name web -region west
//	genioctl cordon -node olt-01
//	genioctl cordon -node olt-01 -undo
//	genioctl drain -node olt-01 -timeout 5s
//
// Every subcommand runs in one of two modes behind the same client
// interface (genio/api/client):
//
//   - Remote: -server http://host:port (or GENIOD_ADDR) speaks the v2
//     wire surface to a geniod daemon, authenticating with the identity
//     file from -identity (or GENIOD_IDENTITY; see geniod
//     -identity-out). Typed control-plane errors decode back through
//     genio/api, so rejection output is identical to local mode.
//   - Local: with no server configured, the subcommand brings up an
//     in-process demo platform in the chosen -posture and operates on
//     it directly.
//
// `deploy` drives one asynchronous deployment: -timeout sets a context
// deadline, -wait streams the lifecycle transitions, and Ctrl-C
// (SIGINT) cancels the in-flight deployment — the server withdraws it
// at the next cancellation point and rolls back anything provisional.
// `watch` streams the deploy.lifecycle topic while a scripted mix of
// clean and hostile deployments runs; a remote watch survives dropped
// connections by reconnecting with backoff. `nodes -top` prints the
// per-node utilization and placement-score table; `cordon` marks a node
// unschedulable (`-undo` reverses it); `drain` cordons and
// live-migrates the node's workloads, printing each migration.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"genio"
	"genio/api"
	"genio/api/client"
	"genio/internal/container"
	"genio/internal/demo"
	"genio/internal/rbac"
	"genio/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "genioctl:", err)
		os.Exit(1)
	}
}

// run dispatches: the v2 subcommands by leading word, anything else to
// the classic demo driver.
func run(args []string, out io.Writer) error {
	if len(args) > 0 {
		switch args[0] {
		case "deploy":
			return runDeploy(args[1:], out)
		case "watch":
			return runWatch(args[1:], out)
		case "cordon":
			return runCordon(args[1:], out)
		case "drain":
			return runDrain(args[1:], out)
		case "nodes":
			return runNodes(args[1:], out)
		case "slots":
			return runSlots(args[1:], out)
		case "clusters":
			return runClusters(args[1:], out)
		}
	}
	return runDemo(args, out)
}

// parsePosture maps the -posture flag value to a Config.
func parsePosture(name string) (genio.Config, error) {
	switch name {
	case "secure":
		return genio.SecureConfig(), nil
	case "legacy":
		return genio.LegacyConfig(), nil
	default:
		return genio.Config{}, fmt.Errorf("unknown posture %q", name)
	}
}

// connFlags is the connection surface every v2 subcommand shares: which
// control plane to talk to, and as whom.
type connFlags struct {
	server   *string
	identity *string
	subject  *string
	posture  *string
}

// addConnFlags registers the shared connection flags on a subcommand's
// flag set.
func addConnFlags(fs *flag.FlagSet) *connFlags {
	c := &connFlags{}
	c.server = fs.String("server", os.Getenv("GENIOD_ADDR"),
		"geniod base URL, e.g. http://127.0.0.1:9650 (env GENIOD_ADDR); empty = in-process demo platform")
	c.identity = fs.String("identity", os.Getenv("GENIOD_IDENTITY"),
		"client identity file for -server (env GENIOD_IDENTITY; see geniod -identity-out)")
	c.subject = fs.String("subject", "genioctl", "control-plane subject to act as")
	c.posture = fs.String("posture", "secure", "platform posture for the in-process demo platform: secure | legacy")
	return c
}

// newClient builds the control-plane client: remote when -server (or
// GENIOD_ADDR) names a daemon, local otherwise. fixtureWorkloads seeds
// that many demo workloads in local mode only — a remote daemon owns
// its own state.
func (c *connFlags) newClient(fixtureWorkloads int) (client.Interface, error) {
	if *c.server != "" {
		base := *c.server
		// Accept a bare host:port — geniod serves plain HTTP (auth is
		// per-request Ed25519 signing, not TLS).
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		var opts []client.HTTPOption
		// A watch stream the server permanently refuses (revoked cert,
		// RBAC change) closes its channel; say why instead of exiting
		// silently.
		opts = append(opts, client.WithStreamErrorHandler(func(err error) {
			fmt.Fprintf(os.Stderr, "genioctl: watch stream ended: %v\n", err)
		}))
		if *c.identity != "" {
			id, err := api.LoadIdentity(*c.identity)
			if err != nil {
				return nil, err
			}
			opts = append(opts, client.WithIdentity(id))
		} else {
			opts = append(opts, client.WithSubject(*c.subject))
		}
		return client.NewHTTP(base, opts...), nil
	}
	cfg, err := parsePosture(*c.posture)
	if err != nil {
		return nil, err
	}
	p, err := demo.Platform(cfg, *c.subject)
	if err != nil {
		return nil, err
	}
	if fixtureWorkloads > 0 {
		if err := demo.Workloads(p, *c.subject, fixtureWorkloads); err != nil {
			p.Close()
			return nil, err
		}
	}
	return client.NewLocal(p, *c.subject, client.WithOwnedPlatform()), nil
}

// runDeploy drives one asynchronous deployment end to end through the
// client interface.
func runDeploy(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("genioctl deploy", flag.ContinueOnError)
	fs.SetOutput(out)
	conn := addConnFlags(fs)
	image := fs.String("image", "acme/analytics:2.0.1", "image ref to deploy")
	name := fs.String("name", "workload-1", "workload name")
	tenant := fs.String("tenant", "acme", "tenant namespace")
	cpu := fs.Int("cpu", 500, "cpu demand (milli-cores)")
	mem := fs.Int("mem", 512, "memory demand (MB)")
	isolation := fs.String("isolation", "soft", "isolation mode: soft | hard")
	region := fs.String("region", "", "constrain placement to this federation region (must match the tenant's pin, if any)")
	wait := fs.Bool("wait", false, "stream lifecycle transitions while waiting")
	timeout := fs.Duration("timeout", 0, "context deadline for the deployment (0 = none)")
	file := fs.String("f", "", "batch mode: JSON file with a list of workload specs, shipped as ONE signed request (-image/-name/-wait ignored)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cli, err := conn.newClient(0)
	if err != nil {
		return err
	}
	defer cli.Close()

	// Ctrl-C cancels the deployment context: the control plane stops the
	// in-flight deployment at the next cancellation point and rolls back
	// anything provisional (cancelled, never placed).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *file != "" {
		return runDeployBatch(ctx, cli, *file, out)
	}

	// The -wait stream watches this workload's lifecycle on its own
	// context so a cancelled deployment still reports its terminal
	// transition before the stream closes.
	watchDone := make(chan struct{})
	if *wait {
		wctx, wcancel := context.WithCancel(context.Background())
		defer wcancel()
		events, err := cli.Watch(wctx, api.WatchSelector{Workload: *name})
		if err != nil {
			return err
		}
		go func() {
			defer close(watchDone)
			for ev := range events {
				fmt.Fprintf(out, "  %-9s %s\n", ev.State, ev.Detail)
				if ev.Terminal() {
					return
				}
			}
		}()
	} else {
		close(watchDone)
	}

	fmt.Fprintf(out, "deployment %s (%s) submitted\n", *name, *image)
	d, err := cli.DeployAsync(ctx, api.WorkloadSpec{
		Name: *name, Tenant: *tenant, ImageRef: *image, Isolation: *isolation,
		Region:    *region,
		Resources: api.Resources{CPUMilli: *cpu, MemoryMB: *mem},
	})
	if err != nil {
		return err
	}
	wl, err := d.Await(ctx)
	if err != nil && ctx.Err() != nil {
		// The wait context died (SIGINT or -timeout) before the future
		// turned terminal: withdraw the deployment, then collect the
		// terminal outcome so the rollback is visible. Re-awaiting an
		// already-terminal future just returns its result.
		_ = d.Cancel(context.Background())
		wl, err = d.Await(context.Background())
	}
	// Let the transition stream finish before the final line so -wait
	// output is complete and ordered.
	select {
	case <-watchDone:
	case <-time.After(3 * time.Second):
	}
	if err == nil {
		fmt.Fprintf(out, "PLACED: %s on %s (vm %s)\n", wl.Spec.Name, wl.Node, wl.VMID)
		return nil
	}
	printDeployError(out, err)
	return nil
}

// runDeployBatch reads a JSON spec list and ships it through
// client.DeployBatch — against a remote server, one signed request for
// the whole batch. Results render positionally with the same typed
// taxonomy as single deploys; one rejection never blocks its siblings.
func runDeployBatch(ctx context.Context, cli client.Interface, path string, out io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	// Accept a bare JSON list or the wire envelope {"specs": [...]}.
	var specs []api.WorkloadSpec
	if err := json.Unmarshal(data, &specs); err != nil {
		var req api.DeployBatchRequest
		if err2 := json.Unmarshal(data, &req); err2 != nil || len(req.Specs) == 0 {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		specs = req.Specs
	}
	if len(specs) == 0 {
		return fmt.Errorf("%s contains no workload specs", path)
	}
	fmt.Fprintf(out, "batch of %d deployments submitted\n", len(specs))
	results, err := cli.DeployBatch(ctx, specs)
	if err != nil {
		return err
	}
	failed := 0
	for i, res := range results {
		fmt.Fprintf(out, "[%d/%d] %s: ", i+1, len(results), specs[i].Name)
		if res.Err != nil {
			failed++
			printDeployError(out, res.Err)
			continue
		}
		fmt.Fprintf(out, "PLACED on %s (vm %s)\n", res.Workload.Node, res.Workload.VMID)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d deployments failed", failed, len(results))
	}
	return nil
}

// printDeployError renders the typed taxonomy instead of one string.
// Remote errors decode back to the same types (genio/api), so the
// output is identical in both modes.
func printDeployError(out io.Writer, err error) {
	var adm *genio.AdmissionError
	var pull *genio.ImagePullError
	var quota *genio.QuotaError
	var capa *genio.CapacityError
	var cancelled *genio.CancelledError
	var pinned *genio.RegionPinnedError
	var fedCap *genio.FederationCapacityError
	switch {
	// Federation cases first: a FederationCapacityError may wrap the last
	// member cluster's CapacityError, which would match the generic
	// capacity case below.
	case errors.As(err, &pinned):
		fmt.Fprintf(out, "REJECTED by residency pin: tenant %s is pinned to region %q, deploy requested %q\n",
			pinned.Tenant, pinned.Region, pinned.Requested)
	case errors.As(err, &fedCap):
		region := fedCap.Region
		if region == "" {
			region = "any"
		}
		fmt.Fprintf(out, "REJECTED by federation: no capacity for %s in region %s across %d eligible cluster(s)\n",
			fedCap.Workload, region, fedCap.Clusters)
		if fedCap.Err != nil {
			fmt.Fprintf(out, "  last cluster said: %v\n", fedCap.Err)
		}
	case errors.As(err, &adm):
		fmt.Fprintf(out, "REJECTED by admission (workload %s):\n", adm.Workload)
		for _, v := range adm.Verdicts {
			switch {
			case !v.Passed:
				fmt.Fprintf(out, "  [FAIL] %-13s %s\n", v.Scanner, v.Detail)
			case v.Cached:
				fmt.Fprintf(out, "  [pass] %-13s (cached verdict)\n", v.Scanner)
			default:
				fmt.Fprintf(out, "  [pass] %-13s\n", v.Scanner)
			}
		}
	case errors.As(err, &pull):
		fmt.Fprintf(out, "REJECTED at pull: %s: %v\n", pull.Ref, pull.Err)
	case errors.As(err, &quota):
		fmt.Fprintf(out, "REJECTED by quota: tenant %s at cpu=%dm mem=%dMB of cpu=%dm mem=%dMB, requested cpu=%dm mem=%dMB\n",
			quota.Tenant, quota.Used.CPUMilli, quota.Used.MemoryMB,
			quota.Quota.CPUMilli, quota.Quota.MemoryMB,
			quota.Requested.CPUMilli, quota.Requested.MemoryMB)
	case errors.As(err, &capa):
		fmt.Fprintf(out, "REJECTED for capacity: %s needs cpu=%dm mem=%dMB; no fit across %d node(s)\n",
			capa.Workload, capa.Requested.CPUMilli, capa.Requested.MemoryMB, capa.Nodes)
	case errors.As(err, &cancelled):
		reason := "cancelled"
		if errors.Is(err, context.DeadlineExceeded) {
			reason = "deadline exceeded"
		}
		fmt.Fprintf(out, "CANCELLED (%s) during %s; workload was never placed\n", reason, cancelled.Stage)
	default:
		fmt.Fprintf(out, "FAILED: %v\n", err)
	}
}

// runWatch streams the deploy.lifecycle topic while a scripted mix of
// deployments runs.
func runWatch(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("genioctl watch", flag.ContinueOnError)
	fs.SetOutput(out)
	conn := addConnFlags(fs)
	tenant := fs.String("tenant", "", "filter: only this tenant's deployments")
	terminal := fs.Bool("terminal-only", false, "filter: only terminal states")
	deploys := fs.Int("deploys", 4, "scripted deployments to drive while watching")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cli, err := conn.newClient(0)
	if err != nil {
		return err
	}
	defer cli.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events, err := cli.Watch(ctx, api.WatchSelector{Tenant: *tenant, TerminalOnly: *terminal})
	if err != nil {
		return err
	}
	// The scripted mix: clean, SAST-flagged, and unsigned refs rotate.
	refs := []string{"acme/analytics:2.0.1", "acme/iot-gateway:1.4.2", "freestuff/log-shipper:3.1"}
	specs := make([]api.WorkloadSpec, 0, *deploys)
	for i := 0; i < *deploys; i++ {
		specs = append(specs, api.WorkloadSpec{
			Name: fmt.Sprintf("watched-%02d", i), Tenant: "acme",
			ImageRef: refs[i%len(refs)], Isolation: api.IsolationSoft,
			Resources: api.Resources{CPUMilli: 200, MemoryMB: 256},
		})
	}

	// Every scripted deployment emits exactly one terminal event, so the
	// printer knows when the stream is complete without timers. A tenant
	// filter that matches nothing just stops after the batch settles.
	expectTerminals := len(specs)
	if *tenant != "" && *tenant != "acme" {
		expectTerminals = 0
	}
	printed := make(chan struct{})
	go func() {
		defer close(printed)
		terminals := 0
		for ev := range events {
			line := fmt.Sprintf("%-12s %-9s -> %-9s", ev.Workload, ev.From, ev.State)
			if ev.Node != "" {
				line += " on " + ev.Node
			}
			if ev.Detail != "" {
				line += "  (" + ev.Detail + ")"
			}
			fmt.Fprintln(out, line)
			if ev.Terminal() {
				if terminals++; terminals == expectTerminals {
					return
				}
			}
		}
	}()

	fmt.Fprintf(out, "watching deploy.lifecycle (%d scripted deploys)...\n", len(specs))
	handles := make([]client.Deployment, 0, len(specs))
	for _, spec := range specs {
		d, err := cli.DeployAsync(context.Background(), spec)
		if err != nil {
			return err
		}
		handles = append(handles, d)
	}
	for _, d := range handles {
		_, _ = d.Await(context.Background())
	}
	if expectTerminals == 0 {
		cancel() // nothing will ever match the filter; stop the stream
	}
	<-printed
	return nil
}

// runCordon marks a node unschedulable (or schedulable with -undo) and
// shows the resulting fleet table.
func runCordon(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("genioctl cordon", flag.ContinueOnError)
	fs.SetOutput(out)
	conn := addConnFlags(fs)
	node := fs.String("node", "olt-01", "node to cordon")
	undo := fs.Bool("undo", false, "uncordon instead")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cli, err := conn.newClient(3)
	if err != nil {
		return err
	}
	defer cli.Close()
	ctx := context.Background()
	verb := "cordoned"
	if *undo {
		err = cli.Uncordon(ctx, *node)
		verb = "uncordoned"
	} else {
		err = cli.Cordon(ctx, *node)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "node %s %s\n\n", *node, verb)
	return printFleet(out, cli, false, "")
}

// runDrain live-migrates a node's workloads through the scheduler,
// printing each migration.
func runDrain(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("genioctl drain", flag.ContinueOnError)
	fs.SetOutput(out)
	conn := addConnFlags(fs)
	node := fs.String("node", "olt-01", "node to drain")
	timeout := fs.Duration("timeout", 0, "context deadline for the drain (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Default binpack stacks the fixture workloads, so the drained node
	// is the hot one.
	cli, err := conn.newClient(4)
	if err != nil {
		return err
	}
	defer cli.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	fmt.Fprintf(out, "draining %s...\n", *node)
	res, derr := cli.Drain(ctx, *node)
	if res == nil {
		return derr // refused outright (unknown node): no drain ever started
	}
	for _, m := range res.Migrations {
		fmt.Fprintf(out, "  migrated  %-10s -> %s (score %.3f)\n", m.Workload, m.Target, m.Score)
	}
	if derr != nil {
		fmt.Fprintf(out, "drain stopped: %v (%d migrated, %d remaining; cordon rolled back)\n",
			derr, len(res.Migrated), len(res.Remaining))
	} else {
		fmt.Fprintf(out, "drained: %d workload(s) migrated; %s stays cordoned\n", len(res.Migrated), *node)
	}
	fmt.Fprintln(out)
	return printFleet(out, cli, false, "")
}

// runNodes prints the fleet table; -top adds the scheduler's score
// columns for a probe demand. On a federated control plane -cluster
// narrows to one member; the default shows every member, grouped.
func runNodes(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("genioctl nodes", flag.ContinueOnError)
	fs.SetOutput(out)
	conn := addConnFlags(fs)
	top := fs.Bool("top", false, "include per-node placement scores for a probe demand")
	cluster := fs.String("cluster", "", "federation cluster to show (default: all, grouped)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cli, err := conn.newClient(3)
	if err != nil {
		return err
	}
	defer cli.Close()
	return printFleet(out, cli, *top, *cluster)
}

// printFleet renders the fleet table from the client; with scores it
// asks the control plane to explain a 500m/512MB probe under both
// strategies, and adds the per-node warm-slot columns. Rows from a
// federated fleet carry cluster labels and are grouped under per-cluster
// headings; single-cluster output is unchanged.
func printFleet(out io.Writer, cli client.Interface, scores bool, cluster string) error {
	var probe *api.Resources
	if scores {
		probe = &api.Resources{CPUMilli: 500, MemoryMB: 512}
	}
	nodes, err := cli.Nodes(context.Background(), probe, cluster)
	if err != nil {
		return err
	}
	header := fmt.Sprintf("%-8s %-12s %-14s %-4s %-9s", "NODE", "CPU(m)", "MEM(MB)", "WLS", "STATE")
	if scores {
		header += fmt.Sprintf(" %-5s %-5s %-8s %-8s", "WARM", "CLMD", "BINPACK", "SPREAD")
	}
	fmt.Fprintln(out, header)
	lastCluster := ""
	for _, n := range nodes {
		if n.Cluster != "" && n.Cluster != lastCluster {
			fmt.Fprintf(out, "[cluster %s]\n", n.Cluster)
			lastCluster = n.Cluster
		}
		state := "ready"
		if n.Cordoned {
			state = "cordoned"
		}
		line := fmt.Sprintf("%-8s %5d/%-6d %6d/%-7d %-4d %-9s",
			n.Node, n.Used.CPUMilli, n.Capacity.CPUMilli,
			n.Used.MemoryMB, n.Capacity.MemoryMB, n.Workloads, state)
		if scores {
			line += fmt.Sprintf(" %-5d %-5d %-8s %-8s", n.WarmIdle, n.WarmClaimed,
				renderScore(n.Binpack), renderScore(n.Spread))
		}
		fmt.Fprintln(out, line)
	}
	return nil
}

// runSlots prints the warm-slot pool table: one row per (tenant, image
// digest) pool plus the lifecycle counters. Identical against a remote
// daemon (-server) and the in-process demo platform. On a federated
// control plane -cluster narrows to one member; the default shows every
// member's pools grouped, then the fleet-wide counters.
func runSlots(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("genioctl slots", flag.ContinueOnError)
	fs.SetOutput(out)
	conn := addConnFlags(fs)
	cluster := fs.String("cluster", "", "federation cluster to show (default: all, grouped)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cli, err := conn.newClient(3)
	if err != nil {
		return err
	}
	defer cli.Close()
	rep, err := cli.Slots(context.Background(), *cluster)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-10s %-16s %-5s %-7s\n", "TENANT", "DIGEST", "IDLE", "CLAIMED")
	if len(rep.Pools) == 0 {
		fmt.Fprintln(out, "(no warm pools)")
	}
	if len(rep.Clusters) > 0 {
		// Federated report: group pools under their member cluster.
		for _, cs := range rep.Clusters {
			fmt.Fprintf(out, "[cluster %s]\n", cs.Cluster)
			if len(cs.Pools) == 0 {
				fmt.Fprintln(out, "(no warm pools)")
			}
			printSlotPools(out, cs.Pools)
		}
	} else {
		printSlotPools(out, rep.Pools)
	}
	c := rep.Counters
	fmt.Fprintf(out, "\nhits=%d misses=%d evicted=%d flushed=%d\n",
		c.Hits, c.Misses, c.Evicted, c.Flushed)
	return nil
}

// printSlotPools renders one pool table body.
func printSlotPools(out io.Writer, pools []api.SlotPool) {
	for _, p := range pools {
		digest := p.Digest
		if len(digest) > 16 {
			digest = digest[:16]
		}
		fmt.Fprintf(out, "%-10s %-16s %-5d %-7d\n", p.Tenant, digest, p.Idle, p.Claimed)
	}
}

// runClusters lists the placement domains — federation members, or the
// single default cluster — and with -evacuate re-places a failed
// member's workloads across the survivors.
func runClusters(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("genioctl clusters", flag.ContinueOnError)
	fs.SetOutput(out)
	conn := addConnFlags(fs)
	evacuate := fs.String("evacuate", "", "evacuate the named cluster: re-place its workloads and remove it from the federation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cli, err := conn.newClient(0)
	if err != nil {
		return err
	}
	defer cli.Close()
	ctx := context.Background()
	if *evacuate != "" {
		res, err := cli.Evacuate(ctx, *evacuate)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "cluster %s evacuated: %d moved, %d lost\n",
			res.Cluster, len(res.Moved), len(res.Lost))
		for _, m := range res.Moved {
			fmt.Fprintf(out, "  moved %-12s (%s) -> %s/%s\n", m.Workload, m.Tenant, m.To, m.Node)
		}
		for _, l := range res.Lost {
			fmt.Fprintf(out, "  LOST  %-12s (%s)\n", l.Workload, l.Reason)
		}
		fmt.Fprintln(out)
	}
	infos, err := cli.Clusters(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-10s %-10s %-6s %-4s\n", "CLUSTER", "REGION", "NODES", "WLS")
	for _, ci := range infos {
		region := ci.Region
		if region == "" {
			region = "-"
		}
		fmt.Fprintf(out, "%-10s %-10s %-6d %-4d\n", ci.Name, region, ci.Nodes, ci.Workloads)
	}
	return nil
}

// renderScore formats one probe score for the table (nil = infeasible).
func renderScore(s *float64) string {
	if s == nil {
		return "-"
	}
	return fmt.Sprintf("%.3f", *s)
}

// runDemo is the classic demo driver.
func runDemo(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("genioctl", flag.ContinueOnError)
	fs.SetOutput(out)
	posture := fs.String("posture", "secure", "platform posture: secure | legacy")
	campaign := fs.Bool("campaign", false, "additionally run the T1-T8 attack campaign")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := parsePosture(*posture)
	if err != nil {
		return err
	}

	p, err := genio.NewPlatform(cfg)
	if err != nil {
		return fmt.Errorf("platform: %w", err)
	}
	fmt.Fprintf(out, "GENIO platform up in %q posture\n\n", *posture)

	for _, node := range []string{"olt-01", "olt-02"} {
		n, err := p.AddEdgeNode(node, genio.Resources{CPUMilli: 16000, MemoryMB: 32768})
		if err != nil {
			return fmt.Errorf("edge node %s: %w", node, err)
		}
		fmt.Fprintf(out, "edge node %s provisioned (attested=%v, storage-locked=%v)\n",
			node, n.Attested, n.Volume.Locked())
	}
	for i := 1; i <= 4; i++ {
		serial := fmt.Sprintf("onu-%04d", i)
		if _, err := p.AttachONU("olt-01", serial); err != nil {
			return fmt.Errorf("onu %s: %w", serial, err)
		}
		fmt.Fprintf(out, "far-edge %s onboarded on olt-01\n", serial)
	}

	// A business user publishes a signed image; a tenant deploys it.
	pub, err := container.NewPublisher("acme")
	if err != nil {
		return err
	}
	p.Registry.TrustPublisher("acme", pub.PublicKey())
	img := container.AnalyticsImage()
	sig := pub.Sign(img)
	p.Registry.Push(img, &sig)
	p.Registry.Push(container.CryptominerImage(), nil) // adversary upload

	p.RBAC.SetRole(rbac.Role{Name: "acme-deployer", Permissions: []rbac.Permission{
		{Verb: "create", Resource: "workloads", Namespace: "acme"},
	}})
	if err := p.RBAC.Bind("acme-ci", "acme-deployer"); err != nil {
		return err
	}

	if _, err := p.Deploy("acme-ci", genio.WorkloadSpec{
		Name: "analytics", Tenant: "acme", ImageRef: "acme/analytics:2.0.1",
		Isolation: genio.IsolationSoft,
		Resources: genio.Resources{CPUMilli: 500, MemoryMB: 512},
	}); err != nil {
		return fmt.Errorf("deploy analytics: %w", err)
	}
	fmt.Fprintln(out, "\nworkload acme/analytics deployed")

	if _, err := p.Deploy("acme-ci", genio.WorkloadSpec{
		Name: "optimizer", Tenant: "acme", ImageRef: "freestuff/optimizer:latest",
		Isolation: genio.IsolationSoft,
		Resources: genio.Resources{CPUMilli: 500, MemoryMB: 512},
	}); err != nil {
		fmt.Fprintf(out, "hostile image rejected: %v\n", err)
	} else {
		fmt.Fprintln(out, "hostile image ADMITTED (no admission scanning in this posture)")
	}

	// Runtime traffic: benign, then an exploited workload.
	p.ObserveRuntime(trace.BenignWebTrace("analytics", "acme", 25))
	p.ObserveRuntime(trace.ReverseShellTrace("analytics", "acme"))

	fmt.Fprintln(out)
	fmt.Fprintln(out, p.RenderDeployment())
	fmt.Fprintln(out, p.RenderArchitecture())

	fmt.Fprintln(out, "incident log:")
	incidents := p.Incidents()
	if len(incidents) == 0 {
		fmt.Fprintln(out, "  (empty — nothing was blocked or detected)")
	}
	for _, i := range incidents {
		flag := "detected"
		if i.Blocked {
			flag = "BLOCKED"
		}
		fmt.Fprintf(out, "  [%-9s] %-8s %s\n", i.Source, flag, i.Detail)
	}

	fmt.Fprintln(out, "\nevent spine (published/delivered/dropped per topic):")
	stats := p.Metrics()
	for _, topic := range stats.Topics() {
		ts := stats[topic]
		if ts.Published+ts.Dropped+ts.Filtered == 0 {
			continue
		}
		fmt.Fprintf(out, "  %-12s %d/%d/%d\n", topic, ts.Published, ts.Delivered, ts.Dropped)
	}

	if *campaign {
		fmt.Fprintln(out, "\nrunning T1-T8 attack campaign...")
		c, err := genio.NewCampaign(p)
		if err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
		results := c.Run()
		for _, r := range results {
			fmt.Fprintf(out, "  %-3s %-42s %-9s %s\n", r.ThreatID, r.Attack, r.Outcome, r.Detail)
		}
		s := genio.SummarizeAttacks(results)
		fmt.Fprintf(out, "summary: blocked=%d detected=%d missed=%d\n",
			s[genio.AttackBlocked], s[genio.AttackDetected], s[genio.AttackMissed])
	}
	return nil
}
