// Command genioctl is the platform demo driver: it brings up a GENIO
// deployment in the chosen security posture, provisions the edge and
// far-edge, deploys tenant workloads (benign and hostile), replays runtime
// traffic, and prints the platform state and incident log.
//
// Usage:
//
//	genioctl -posture secure
//	genioctl -posture legacy
//	genioctl -posture secure -campaign
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"genio"
	"genio/internal/container"
	"genio/internal/rbac"
	"genio/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "genioctl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("genioctl", flag.ContinueOnError)
	fs.SetOutput(out)
	posture := fs.String("posture", "secure", "platform posture: secure | legacy")
	campaign := fs.Bool("campaign", false, "additionally run the T1-T8 attack campaign")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg genio.Config
	switch *posture {
	case "secure":
		cfg = genio.SecureConfig()
	case "legacy":
		cfg = genio.LegacyConfig()
	default:
		return fmt.Errorf("unknown posture %q", *posture)
	}

	p, err := genio.NewPlatform(cfg)
	if err != nil {
		return fmt.Errorf("platform: %w", err)
	}
	fmt.Fprintf(out, "GENIO platform up in %q posture\n\n", *posture)

	for _, node := range []string{"olt-01", "olt-02"} {
		n, err := p.AddEdgeNode(node, genio.Resources{CPUMilli: 16000, MemoryMB: 32768})
		if err != nil {
			return fmt.Errorf("edge node %s: %w", node, err)
		}
		fmt.Fprintf(out, "edge node %s provisioned (attested=%v, storage-locked=%v)\n",
			node, n.Attested, n.Volume.Locked())
	}
	for i := 1; i <= 4; i++ {
		serial := fmt.Sprintf("onu-%04d", i)
		if _, err := p.AttachONU("olt-01", serial); err != nil {
			return fmt.Errorf("onu %s: %w", serial, err)
		}
		fmt.Fprintf(out, "far-edge %s onboarded on olt-01\n", serial)
	}

	// A business user publishes a signed image; a tenant deploys it.
	pub, err := container.NewPublisher("acme")
	if err != nil {
		return err
	}
	p.Registry.TrustPublisher("acme", pub.PublicKey())
	img := container.AnalyticsImage()
	sig := pub.Sign(img)
	p.Registry.Push(img, &sig)
	p.Registry.Push(container.CryptominerImage(), nil) // adversary upload

	p.RBAC.SetRole(rbac.Role{Name: "acme-deployer", Permissions: []rbac.Permission{
		{Verb: "create", Resource: "workloads", Namespace: "acme"},
	}})
	if err := p.RBAC.Bind("acme-ci", "acme-deployer"); err != nil {
		return err
	}

	if _, err := p.Deploy("acme-ci", genio.WorkloadSpec{
		Name: "analytics", Tenant: "acme", ImageRef: "acme/analytics:2.0.1",
		Isolation: genio.IsolationSoft,
		Resources: genio.Resources{CPUMilli: 500, MemoryMB: 512},
	}); err != nil {
		return fmt.Errorf("deploy analytics: %w", err)
	}
	fmt.Fprintln(out, "\nworkload acme/analytics deployed")

	if _, err := p.Deploy("acme-ci", genio.WorkloadSpec{
		Name: "optimizer", Tenant: "acme", ImageRef: "freestuff/optimizer:latest",
		Isolation: genio.IsolationSoft,
		Resources: genio.Resources{CPUMilli: 500, MemoryMB: 512},
	}); err != nil {
		fmt.Fprintf(out, "hostile image rejected: %v\n", err)
	} else {
		fmt.Fprintln(out, "hostile image ADMITTED (no admission scanning in this posture)")
	}

	// Runtime traffic: benign, then an exploited workload.
	p.ObserveRuntime(trace.BenignWebTrace("analytics", "acme", 25))
	p.ObserveRuntime(trace.ReverseShellTrace("analytics", "acme"))

	fmt.Fprintln(out)
	fmt.Fprintln(out, p.RenderDeployment())
	fmt.Fprintln(out, p.RenderArchitecture())

	fmt.Fprintln(out, "incident log:")
	incidents := p.Incidents()
	if len(incidents) == 0 {
		fmt.Fprintln(out, "  (empty — nothing was blocked or detected)")
	}
	for _, i := range incidents {
		flag := "detected"
		if i.Blocked {
			flag = "BLOCKED"
		}
		fmt.Fprintf(out, "  [%-9s] %-8s %s\n", i.Source, flag, i.Detail)
	}

	fmt.Fprintln(out, "\nevent spine (published/delivered/dropped per topic):")
	stats := p.Metrics()
	for _, topic := range stats.Topics() {
		ts := stats[topic]
		if ts.Published+ts.Dropped+ts.Filtered == 0 {
			continue
		}
		fmt.Fprintf(out, "  %-12s %d/%d/%d\n", topic, ts.Published, ts.Delivered, ts.Dropped)
	}

	if *campaign {
		fmt.Fprintln(out, "\nrunning T1-T8 attack campaign...")
		c, err := genio.NewCampaign(p)
		if err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
		results := c.Run()
		for _, r := range results {
			fmt.Fprintf(out, "  %-3s %-42s %-9s %s\n", r.ThreatID, r.Attack, r.Outcome, r.Detail)
		}
		s := genio.SummarizeAttacks(results)
		fmt.Fprintf(out, "summary: blocked=%d detected=%d missed=%d\n",
			s[genio.AttackBlocked], s[genio.AttackDetected], s[genio.AttackMissed])
	}
	return nil
}
