// Command genioctl is the platform demo driver: it brings up a GENIO
// deployment in the chosen security posture, provisions the edge and
// far-edge, deploys tenant workloads (benign and hostile), replays runtime
// traffic, and prints the platform state and incident log.
//
// Usage:
//
//	genioctl -posture secure
//	genioctl -posture legacy
//	genioctl -posture secure -campaign
//
// Control-plane API v2 subcommands:
//
//	genioctl deploy -image acme/analytics:2.0.1 -name web -wait
//	genioctl deploy -image acme/iot-gateway:1.4.2 -timeout 2s
//	genioctl watch -deploys 4 -tenant acme
//
// Node lifecycle and placement subcommands:
//
//	genioctl nodes -top
//	genioctl cordon -node olt-01
//	genioctl cordon -node olt-01 -undo
//	genioctl drain -node olt-01 -timeout 5s
//
// `nodes -top` prints the per-node utilization and placement-score
// table (what the scheduler would score each node for a probe demand,
// under both strategies). `cordon` marks a node unschedulable (`-undo`
// reverses it); `drain` cordons and live-migrates the node's workloads
// through the scheduler, streaming each migration — a `-timeout` that
// expires mid-drain demonstrates cancellation with rollback.
//
// `deploy` drives one asynchronous deployment (DeployAsync) against a
// demo platform: -timeout sets a context deadline (deadline expiry
// cancels the in-flight admission scan), -wait streams every lifecycle
// transition, and rejections print the typed per-scanner verdict table
// instead of one error string. `watch` subscribes to the
// deploy.lifecycle topic (Platform.Watch) while a scripted mix of clean
// and hostile deployments runs, streaming each transition.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"genio"
	"genio/internal/container"
	"genio/internal/orchestrator/scheduler"
	"genio/internal/rbac"
	"genio/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "genioctl:", err)
		os.Exit(1)
	}
}

// run dispatches: the v2 subcommands by leading word, anything else to
// the classic demo driver.
func run(args []string, out io.Writer) error {
	if len(args) > 0 {
		switch args[0] {
		case "deploy":
			return runDeploy(args[1:], out)
		case "watch":
			return runWatch(args[1:], out)
		case "cordon":
			return runCordon(args[1:], out)
		case "drain":
			return runDrain(args[1:], out)
		case "nodes":
			return runNodes(args[1:], out)
		}
	}
	return runDemo(args, out)
}

// parsePosture maps the -posture flag value to a Config.
func parsePosture(name string) (genio.Config, error) {
	switch name {
	case "secure":
		return genio.SecureConfig(), nil
	case "legacy":
		return genio.LegacyConfig(), nil
	default:
		return genio.Config{}, fmt.Errorf("unknown posture %q", name)
	}
}

// demoPlatform builds the subcommand fixture: a two-node platform with a
// trusted publisher, the signed image set (clean, SAST-flagged,
// vulnerable, malicious), one unsigned hostile image, and deploy rights
// for the genioctl subject on every tenant.
func demoPlatform(cfg genio.Config) (*genio.Platform, error) {
	p, err := genio.NewPlatform(cfg)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	for _, node := range []string{"olt-01", "olt-02"} {
		if _, err := p.AddEdgeNode(node, genio.Resources{CPUMilli: 16000, MemoryMB: 32768}); err != nil {
			return nil, fmt.Errorf("edge node %s: %w", node, err)
		}
	}
	pub, err := container.NewPublisher("acme")
	if err != nil {
		return nil, err
	}
	p.Registry.TrustPublisher("acme", pub.PublicKey())
	for _, img := range []*container.Image{
		container.AnalyticsImage(),
		container.IoTGatewayImage(),
		container.MLInferenceImage(),
		container.CryptominerImage(),
	} {
		sig := pub.Sign(img)
		p.Registry.Push(img, &sig)
	}
	p.Registry.Push(container.BackdoorImage(), nil) // unsigned
	p.RBAC.SetRole(rbac.Role{Name: "genioctl-admin", Permissions: []rbac.Permission{
		{Verb: "*", Resource: "*", Namespace: "*"},
	}})
	if err := p.RBAC.Bind("genioctl", "genioctl-admin"); err != nil {
		return nil, err
	}
	return p, nil
}

// runDeploy drives one DeployAsync future end to end.
func runDeploy(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("genioctl deploy", flag.ContinueOnError)
	fs.SetOutput(out)
	posture := fs.String("posture", "secure", "platform posture: secure | legacy")
	image := fs.String("image", "acme/analytics:2.0.1", "image ref to deploy")
	name := fs.String("name", "workload-1", "workload name")
	tenant := fs.String("tenant", "acme", "tenant namespace")
	cpu := fs.Int("cpu", 500, "cpu demand (milli-cores)")
	mem := fs.Int("mem", 512, "memory demand (MB)")
	isolation := fs.String("isolation", "soft", "isolation mode: soft | hard")
	wait := fs.Bool("wait", false, "stream lifecycle transitions while waiting")
	timeout := fs.Duration("timeout", 0, "context deadline for the deployment (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := parsePosture(*posture)
	if err != nil {
		return err
	}
	iso := genio.IsolationSoft
	if *isolation == "hard" {
		iso = genio.IsolationHard
	}
	p, err := demoPlatform(cfg)
	if err != nil {
		return err
	}
	defer p.Close()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var opts []genio.DeployOption
	if *wait {
		opts = append(opts, genio.WithOnTransition(func(ev genio.LifecycleEvent) {
			fmt.Fprintf(out, "  %-9s %s\n", ev.State, ev.Detail)
		}))
	}
	// Print before launching: the -wait transition callback writes to out
	// from the deployment's goroutine, so the submit line must not race it.
	fmt.Fprintf(out, "deployment %s (%s) submitted\n", *name, *image)
	d, err := p.DeployAsync(ctx, "genioctl", genio.WorkloadSpec{
		Name: *name, Tenant: *tenant, ImageRef: *image,
		Isolation: iso, Resources: genio.Resources{CPUMilli: *cpu, MemoryMB: *mem},
	}, opts...)
	if err != nil {
		return err
	}
	w, err := d.Result()
	if err == nil {
		fmt.Fprintf(out, "PLACED: %s on %s (vm %s)\n", w.Spec.Name, w.Node, w.VMID)
		return nil
	}
	printDeployError(out, err)
	return nil
}

// printDeployError renders the typed taxonomy instead of one string.
func printDeployError(out io.Writer, err error) {
	var adm *genio.AdmissionError
	var pull *genio.ImagePullError
	var quota *genio.QuotaError
	var capa *genio.CapacityError
	var cancelled *genio.CancelledError
	switch {
	case errors.As(err, &adm):
		fmt.Fprintf(out, "REJECTED by admission (workload %s):\n", adm.Workload)
		for _, v := range adm.Verdicts {
			switch {
			case !v.Passed:
				fmt.Fprintf(out, "  [FAIL] %-13s %s\n", v.Scanner, v.Detail)
			case v.Cached:
				fmt.Fprintf(out, "  [pass] %-13s (cached verdict)\n", v.Scanner)
			default:
				fmt.Fprintf(out, "  [pass] %-13s\n", v.Scanner)
			}
		}
	case errors.As(err, &pull):
		fmt.Fprintf(out, "REJECTED at pull: %s: %v\n", pull.Ref, pull.Err)
	case errors.As(err, &quota):
		fmt.Fprintf(out, "REJECTED by quota: tenant %s at cpu=%dm mem=%dMB of cpu=%dm mem=%dMB, requested cpu=%dm mem=%dMB\n",
			quota.Tenant, quota.Used.CPUMilli, quota.Used.MemoryMB,
			quota.Quota.CPUMilli, quota.Quota.MemoryMB,
			quota.Requested.CPUMilli, quota.Requested.MemoryMB)
	case errors.As(err, &capa):
		fmt.Fprintf(out, "REJECTED for capacity: %s needs cpu=%dm mem=%dMB; no fit across %d node(s)\n",
			capa.Workload, capa.Requested.CPUMilli, capa.Requested.MemoryMB, capa.Nodes)
	case errors.As(err, &cancelled):
		reason := "cancelled"
		if errors.Is(err, context.DeadlineExceeded) {
			reason = "deadline exceeded"
		}
		fmt.Fprintf(out, "CANCELLED (%s) during %s; workload was never placed\n", reason, cancelled.Stage)
	default:
		fmt.Fprintf(out, "FAILED: %v\n", err)
	}
}

// runWatch streams the deploy.lifecycle topic while a scripted mix of
// deployments runs.
func runWatch(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("genioctl watch", flag.ContinueOnError)
	fs.SetOutput(out)
	posture := fs.String("posture", "secure", "platform posture: secure | legacy")
	tenant := fs.String("tenant", "", "filter: only this tenant's deployments")
	terminal := fs.Bool("terminal-only", false, "filter: only terminal states")
	deploys := fs.Int("deploys", 4, "scripted deployments to drive while watching")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := parsePosture(*posture)
	if err != nil {
		return err
	}
	p, err := demoPlatform(cfg)
	if err != nil {
		return err
	}
	defer p.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events, err := p.Watch(ctx, genio.WatchSelector{Tenant: *tenant, TerminalOnly: *terminal})
	if err != nil {
		return err
	}
	// The scripted mix: clean, SAST-flagged, and unsigned refs rotate.
	refs := []string{"acme/analytics:2.0.1", "acme/iot-gateway:1.4.2", "freestuff/log-shipper:3.1"}
	specs := make([]genio.WorkloadSpec, 0, *deploys)
	for i := 0; i < *deploys; i++ {
		specs = append(specs, genio.WorkloadSpec{
			Name: fmt.Sprintf("watched-%02d", i), Tenant: "acme",
			ImageRef: refs[i%len(refs)], Isolation: genio.IsolationSoft,
			Resources: genio.Resources{CPUMilli: 200, MemoryMB: 256},
		})
	}

	// Every scripted deployment emits exactly one terminal event, so the
	// printer knows when the stream is complete without timers. A tenant
	// filter that matches nothing just stops after the batch flushes.
	expectTerminals := len(specs)
	if *tenant != "" && *tenant != "acme" {
		expectTerminals = 0
	}
	printed := make(chan struct{})
	go func() {
		defer close(printed)
		terminals := 0
		for ev := range events {
			line := fmt.Sprintf("%-12s %-9s -> %-9s", ev.Workload, ev.From, ev.State)
			if ev.Node != "" {
				line += " on " + ev.Node
			}
			if ev.Detail != "" {
				line += "  (" + ev.Detail + ")"
			}
			fmt.Fprintln(out, line)
			if ev.State.Terminal() {
				if terminals++; terminals == expectTerminals {
					return
				}
			}
		}
	}()

	fmt.Fprintf(out, "watching deploy.lifecycle (%d scripted deploys)...\n", len(specs))
	p.DeployBatch("genioctl", specs)
	if expectTerminals == 0 {
		p.Flush()
		cancel()
	}
	<-printed
	return nil
}

// demoWorkloads deploys n small clean workloads for tenant acme under
// the binpack default (the fixture traffic the lifecycle subcommands
// operate on — stacked, so there is a hot node to cordon or drain).
func demoWorkloads(p *genio.Platform, n int) error {
	for i := 0; i < n; i++ {
		if _, err := p.Deploy("genioctl", genio.WorkloadSpec{
			Name: fmt.Sprintf("app-%02d", i), Tenant: "acme",
			ImageRef: "acme/analytics:2.0.1", Isolation: genio.IsolationSoft,
			Resources: genio.Resources{CPUMilli: 500, MemoryMB: 512},
		}); err != nil {
			return fmt.Errorf("fixture deploy %d: %w", i, err)
		}
	}
	return nil
}

// runCordon marks a demo node unschedulable (or schedulable with -undo)
// and shows the resulting fleet table.
func runCordon(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("genioctl cordon", flag.ContinueOnError)
	fs.SetOutput(out)
	posture := fs.String("posture", "secure", "platform posture: secure | legacy")
	node := fs.String("node", "olt-01", "node to cordon")
	undo := fs.Bool("undo", false, "uncordon instead")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := parsePosture(*posture)
	if err != nil {
		return err
	}
	p, err := demoPlatform(cfg)
	if err != nil {
		return err
	}
	defer p.Close()
	if err := demoWorkloads(p, 3); err != nil {
		return err
	}
	verb := "cordoned"
	if *undo {
		err = p.Uncordon(*node)
		verb = "uncordoned"
	} else {
		err = p.Cordon(*node)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "node %s %s\n\n", *node, verb)
	printNodeTable(out, p, false)
	return nil
}

// runDrain live-migrates a demo node's workloads through the scheduler,
// streaming each step.
func runDrain(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("genioctl drain", flag.ContinueOnError)
	fs.SetOutput(out)
	posture := fs.String("posture", "secure", "platform posture: secure | legacy")
	node := fs.String("node", "olt-01", "node to drain")
	timeout := fs.Duration("timeout", 0, "context deadline for the drain (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := parsePosture(*posture)
	if err != nil {
		return err
	}
	p, err := demoPlatform(cfg)
	if err != nil {
		return err
	}
	defer p.Close()
	// Default binpack stacks the fixture workloads, so the drained node
	// is the hot one.
	if err := demoWorkloads(p, 4); err != nil {
		return err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	sub, err := p.Subscribe("genioctl-drain", []genio.Topic{genio.TopicNodeDrain},
		func(batch []genio.Event) {
			for _, ev := range batch {
				de, ok := ev.Payload.(genio.DrainEvent)
				if !ok {
					continue
				}
				switch de.Phase {
				case genio.DrainMigrated:
					fmt.Fprintf(out, "  migrated  %-10s -> %s (score %.3f)\n", de.Workload, de.Target, de.Score)
				default:
					fmt.Fprintf(out, "  %-9s %s\n", de.Phase, de.Detail)
				}
			}
		})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "draining %s...\n", *node)
	res, derr := p.Drain(ctx, *node)
	p.Flush()
	sub.Cancel()
	if res == nil {
		return derr // refused outright (unknown node): no drain ever started
	}
	if derr != nil {
		fmt.Fprintf(out, "drain stopped: %v (%d migrated, %d remaining; cordon rolled back)\n",
			derr, len(res.Migrated), len(res.Remaining))
	} else {
		fmt.Fprintf(out, "drained: %d workload(s) migrated; %s stays cordoned\n", len(res.Migrated), *node)
	}
	fmt.Fprintln(out)
	printNodeTable(out, p, false)
	return nil
}

// runNodes prints the fleet table; -top adds the scheduler's score
// columns for a probe demand under both strategies.
func runNodes(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("genioctl nodes", flag.ContinueOnError)
	fs.SetOutput(out)
	posture := fs.String("posture", "secure", "platform posture: secure | legacy")
	top := fs.Bool("top", false, "include per-node placement scores for a probe demand")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := parsePosture(*posture)
	if err != nil {
		return err
	}
	p, err := demoPlatform(cfg)
	if err != nil {
		return err
	}
	defer p.Close()
	if err := demoWorkloads(p, 3); err != nil {
		return err
	}
	printNodeTable(out, p, *top)
	return nil
}

// printNodeTable renders utilization per node; with scores it appends
// the scheduler's binpack/spread verdicts for a 500m/512MB probe.
func printNodeTable(out io.Writer, p *genio.Platform, scores bool) {
	util := p.Cluster.Utilization()
	header := fmt.Sprintf("%-8s %-12s %-14s %-4s %-9s", "NODE", "CPU(m)", "MEM(MB)", "WLS", "STATE")
	if scores {
		header += fmt.Sprintf(" %-8s %-8s", "BINPACK", "SPREAD")
	}
	fmt.Fprintln(out, header)
	cands := make([]scheduler.Candidate, 0, len(util))
	for _, u := range util {
		cands = append(cands, scheduler.Candidate{
			Node: u.Node, Capacity: u.Capacity, Used: u.Used,
			Cordoned: u.Cordoned, SharedVMs: u.SharedVMs,
		})
	}
	probe := scheduler.Request{Workload: "probe", Tenant: "probe",
		Demand: genio.Resources{CPUMilli: 500, MemoryMB: 512}}
	var binpack, spread []scheduler.NodeScore
	if scores {
		eng := p.Cluster.Scheduler()
		probe.Strategy = scheduler.StrategyBinpack
		binpack = eng.Explain(&probe, cands)
		probe.Strategy = scheduler.StrategySpread
		spread = eng.Explain(&probe, cands)
	}
	for i, u := range util {
		state := "ready"
		if u.Cordoned {
			state = "cordoned"
		}
		line := fmt.Sprintf("%-8s %5d/%-6d %6d/%-7d %-4d %-9s",
			u.Node, u.Used.CPUMilli, u.Capacity.CPUMilli,
			u.Used.MemoryMB, u.Capacity.MemoryMB, u.Workloads, state)
		if scores {
			line += fmt.Sprintf(" %-8s %-8s", renderScore(binpack[i]), renderScore(spread[i]))
		}
		fmt.Fprintln(out, line)
	}
}

// renderScore formats one Explain outcome for the table.
func renderScore(s scheduler.NodeScore) string {
	if !s.Feasible {
		return "-"
	}
	return fmt.Sprintf("%.3f", s.Score)
}

// runDemo is the classic demo driver.
func runDemo(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("genioctl", flag.ContinueOnError)
	fs.SetOutput(out)
	posture := fs.String("posture", "secure", "platform posture: secure | legacy")
	campaign := fs.Bool("campaign", false, "additionally run the T1-T8 attack campaign")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := parsePosture(*posture)
	if err != nil {
		return err
	}

	p, err := genio.NewPlatform(cfg)
	if err != nil {
		return fmt.Errorf("platform: %w", err)
	}
	fmt.Fprintf(out, "GENIO platform up in %q posture\n\n", *posture)

	for _, node := range []string{"olt-01", "olt-02"} {
		n, err := p.AddEdgeNode(node, genio.Resources{CPUMilli: 16000, MemoryMB: 32768})
		if err != nil {
			return fmt.Errorf("edge node %s: %w", node, err)
		}
		fmt.Fprintf(out, "edge node %s provisioned (attested=%v, storage-locked=%v)\n",
			node, n.Attested, n.Volume.Locked())
	}
	for i := 1; i <= 4; i++ {
		serial := fmt.Sprintf("onu-%04d", i)
		if _, err := p.AttachONU("olt-01", serial); err != nil {
			return fmt.Errorf("onu %s: %w", serial, err)
		}
		fmt.Fprintf(out, "far-edge %s onboarded on olt-01\n", serial)
	}

	// A business user publishes a signed image; a tenant deploys it.
	pub, err := container.NewPublisher("acme")
	if err != nil {
		return err
	}
	p.Registry.TrustPublisher("acme", pub.PublicKey())
	img := container.AnalyticsImage()
	sig := pub.Sign(img)
	p.Registry.Push(img, &sig)
	p.Registry.Push(container.CryptominerImage(), nil) // adversary upload

	p.RBAC.SetRole(rbac.Role{Name: "acme-deployer", Permissions: []rbac.Permission{
		{Verb: "create", Resource: "workloads", Namespace: "acme"},
	}})
	if err := p.RBAC.Bind("acme-ci", "acme-deployer"); err != nil {
		return err
	}

	if _, err := p.Deploy("acme-ci", genio.WorkloadSpec{
		Name: "analytics", Tenant: "acme", ImageRef: "acme/analytics:2.0.1",
		Isolation: genio.IsolationSoft,
		Resources: genio.Resources{CPUMilli: 500, MemoryMB: 512},
	}); err != nil {
		return fmt.Errorf("deploy analytics: %w", err)
	}
	fmt.Fprintln(out, "\nworkload acme/analytics deployed")

	if _, err := p.Deploy("acme-ci", genio.WorkloadSpec{
		Name: "optimizer", Tenant: "acme", ImageRef: "freestuff/optimizer:latest",
		Isolation: genio.IsolationSoft,
		Resources: genio.Resources{CPUMilli: 500, MemoryMB: 512},
	}); err != nil {
		fmt.Fprintf(out, "hostile image rejected: %v\n", err)
	} else {
		fmt.Fprintln(out, "hostile image ADMITTED (no admission scanning in this posture)")
	}

	// Runtime traffic: benign, then an exploited workload.
	p.ObserveRuntime(trace.BenignWebTrace("analytics", "acme", 25))
	p.ObserveRuntime(trace.ReverseShellTrace("analytics", "acme"))

	fmt.Fprintln(out)
	fmt.Fprintln(out, p.RenderDeployment())
	fmt.Fprintln(out, p.RenderArchitecture())

	fmt.Fprintln(out, "incident log:")
	incidents := p.Incidents()
	if len(incidents) == 0 {
		fmt.Fprintln(out, "  (empty — nothing was blocked or detected)")
	}
	for _, i := range incidents {
		flag := "detected"
		if i.Blocked {
			flag = "BLOCKED"
		}
		fmt.Fprintf(out, "  [%-9s] %-8s %s\n", i.Source, flag, i.Detail)
	}

	fmt.Fprintln(out, "\nevent spine (published/delivered/dropped per topic):")
	stats := p.Metrics()
	for _, topic := range stats.Topics() {
		ts := stats[topic]
		if ts.Published+ts.Dropped+ts.Filtered == 0 {
			continue
		}
		fmt.Fprintf(out, "  %-12s %d/%d/%d\n", topic, ts.Published, ts.Delivered, ts.Dropped)
	}

	if *campaign {
		fmt.Fprintln(out, "\nrunning T1-T8 attack campaign...")
		c, err := genio.NewCampaign(p)
		if err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
		results := c.Run()
		for _, r := range results {
			fmt.Fprintf(out, "  %-3s %-42s %-9s %s\n", r.ThreatID, r.Attack, r.Outcome, r.Detail)
		}
		s := genio.SummarizeAttacks(results)
		fmt.Fprintf(out, "summary: blocked=%d detected=%d missed=%d\n",
			s[genio.AttackBlocked], s[genio.AttackDetected], s[genio.AttackMissed])
	}
	return nil
}
