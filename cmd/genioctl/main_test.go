package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"genio/api"
	"genio/api/server"
	"genio/internal/container"
	"genio/internal/core"
	"genio/internal/demo"
	"genio/internal/orchestrator"
	"genio/internal/pki"
)

// startRemote hosts a demo-fixture geniod surface on an httptest server
// and writes a signed client identity, returning what the remote-mode
// flags need: the base URL and the identity path.
func startRemote(t *testing.T) (baseURL, idPath string, p *core.Platform) {
	t.Helper()
	p, err := demo.Platform(core.SecureConfig(), "genioctl")
	if err != nil {
		t.Fatalf("demo platform: %v", err)
	}
	srv := server.New(p, server.Options{CA: p.CA})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		p.Close()
	})
	id, err := p.CA.Issue("genioctl", pki.RoleService)
	if err != nil {
		t.Fatalf("issue identity: %v", err)
	}
	idPath = filepath.Join(t.TempDir(), "genioctl.id")
	if err := api.SaveIdentity(idPath, id); err != nil {
		t.Fatalf("save identity: %v", err)
	}
	return ts.URL, idPath, p
}

// TestDeployRemotePlaced runs the deploy subcommand against a remote
// control plane and expects output identical to local mode.
func TestDeployRemotePlaced(t *testing.T) {
	url, id, _ := startRemote(t)
	var buf bytes.Buffer
	if err := run([]string{"deploy", "-server", url, "-identity", id,
		"-image", "acme/analytics:2.0.1", "-name", "rweb", "-wait"}, &buf); err != nil {
		t.Fatalf("remote deploy: %v", err)
	}
	out := buf.String()
	for _, needle := range []string{"scanning", "placing", "running", "PLACED: rweb on olt-01"} {
		if !strings.Contains(out, needle) {
			t.Errorf("remote deploy output missing %q:\n%s", needle, out)
		}
	}
}

// TestDeployRemoteTypedVerdicts proves the typed admission verdicts
// survive the wire: the remote rejection renders the same per-scanner
// table the in-process path does.
func TestDeployRemoteTypedVerdicts(t *testing.T) {
	url, id, _ := startRemote(t)
	var buf bytes.Buffer
	if err := run([]string{"deploy", "-server", url, "-identity", id,
		"-image", "acme/iot-gateway:1.4.2", "-name", "rflagged"}, &buf); err != nil {
		t.Fatalf("remote deploy: %v", err)
	}
	out := buf.String()
	for _, needle := range []string{
		"REJECTED by admission (workload rflagged)",
		"[FAIL] sast-gate",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("remote deploy output missing %q:\n%s", needle, out)
		}
	}
}

// TestDeployRemoteSIGINTCancels is the cancelled-but-never-placed path
// over the wire: Ctrl-C while the deployment is held in admission must
// withdraw it server-side and report the typed cancellation.
func TestDeployRemoteSIGINTCancels(t *testing.T) {
	url, id, p := startRemote(t)
	entered := make(chan struct{}, 1)
	p.Cluster.RegisterAdmissionCtx("sigint-gate",
		func(ctx context.Context, s orchestrator.WorkloadSpec, _ *container.Image) error {
			if s.Name != "doomed" {
				return nil
			}
			entered <- struct{}{}
			<-ctx.Done()
			return ctx.Err()
		})
	var buf bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"deploy", "-server", url, "-identity", id,
			"-image", "acme/analytics:2.0.1", "-name", "doomed"}, &buf)
	}()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatalf("deployment never reached admission:\n%s", buf.String())
	}
	// The gate fires when the server-side pipeline reaches admission,
	// which can beat the 202 back to the client; give the submit round
	// trip a moment so the SIGINT cancels the await, not the POST.
	time.Sleep(200 * time.Millisecond)
	// The CLI's signal handler is installed before the deployment is
	// submitted, so by the time admission holds it SIGINT is safe.
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatalf("signal: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("deploy after SIGINT: %v\n%s", err, buf.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("deploy did not return after SIGINT:\n%s", buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "CANCELLED (cancelled) during") || !strings.Contains(out, "never placed") {
		t.Errorf("missing typed cancellation:\n%s", out)
	}
	if _, ok := p.Cluster.Workload("doomed"); ok {
		t.Error("cancelled deployment left a placed workload behind")
	}
}

// TestWatchRemote streams scripted deployments' lifecycle over SSE.
func TestWatchRemote(t *testing.T) {
	url, id, _ := startRemote(t)
	var buf bytes.Buffer
	if err := run([]string{"watch", "-server", url, "-identity", id, "-deploys", "3"}, &buf); err != nil {
		t.Fatalf("remote watch: %v", err)
	}
	out := buf.String()
	for _, needle := range []string{
		"watching deploy.lifecycle (3 scripted deploys)",
		"-> running",
		"-> rejected",
		"watched-00",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("remote watch output missing %q:\n%s", needle, out)
		}
	}
}

// TestDrainRemote live-migrates a remote node and prints the same
// migration log local mode does.
func TestDrainRemote(t *testing.T) {
	url, id, p := startRemote(t)
	if err := demo.Workloads(p, "genioctl", 4); err != nil {
		t.Fatalf("fixture workloads: %v", err)
	}
	var buf bytes.Buffer
	if err := run([]string{"drain", "-server", url, "-identity", id, "-node", "olt-01"}, &buf); err != nil {
		t.Fatalf("remote drain: %v", err)
	}
	out := buf.String()
	for _, needle := range []string{"draining olt-01", "migrated", "-> olt-02", "stays cordoned"} {
		if !strings.Contains(out, needle) {
			t.Errorf("remote drain output missing %q:\n%s", needle, out)
		}
	}
}

// TestNodesTopRemote renders the score table from the remote Explain.
func TestNodesTopRemote(t *testing.T) {
	url, id, _ := startRemote(t)
	var buf bytes.Buffer
	if err := run([]string{"nodes", "-server", url, "-identity", id, "-top"}, &buf); err != nil {
		t.Fatalf("remote nodes: %v", err)
	}
	out := buf.String()
	for _, needle := range []string{"NODE", "BINPACK", "SPREAD", "olt-01", "olt-02", "ready"} {
		if !strings.Contains(out, needle) {
			t.Errorf("remote nodes -top output missing %q:\n%s", needle, out)
		}
	}
}

func TestSecurePosture(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-posture", "secure"}, &buf); err != nil {
		t.Fatalf("run secure: %v", err)
	}
	out := buf.String()
	for _, needle := range []string{
		"attested=true",
		"hostile image rejected",
		"BLOCKED",
		"FAR-EDGE",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("secure output missing %q", needle)
		}
	}
}

func TestLegacyPosture(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-posture", "legacy"}, &buf); err != nil {
		t.Fatalf("run legacy: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "hostile image ADMITTED") {
		t.Error("legacy posture should admit the hostile image")
	}
	if !strings.Contains(out, "attested=false") {
		t.Error("legacy nodes should not attest")
	}
	if !strings.Contains(out, "(empty — nothing was blocked or detected)") {
		t.Error("legacy incident log should be empty")
	}
}

func TestCampaignFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-posture", "secure", "-campaign"}, &buf); err != nil {
		t.Fatalf("run campaign: %v", err)
	}
	if !strings.Contains(buf.String(), "missed=0") {
		t.Errorf("secure campaign should miss nothing:\n%s", buf.String())
	}
}

func TestUnknownPosture(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-posture", "chaotic"}, &buf); err == nil {
		t.Fatal("unknown posture accepted")
	}
}

func TestDeploySubcommandPlaced(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"deploy", "-image", "acme/analytics:2.0.1", "-name", "web", "-wait"}, &buf); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	out := buf.String()
	for _, needle := range []string{"scanning", "placing", "running", "PLACED: web on olt-01"} {
		if !strings.Contains(out, needle) {
			t.Errorf("deploy output missing %q:\n%s", needle, out)
		}
	}
}

func TestDeploySubcommandTypedVerdicts(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"deploy", "-image", "acme/iot-gateway:1.4.2", "-name", "flagged"}, &buf); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	out := buf.String()
	for _, needle := range []string{
		"REJECTED by admission (workload flagged)",
		"[FAIL] sast-gate",
		"[pass] malware-scan",
		"[pass] sca-gate",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("deploy output missing %q:\n%s", needle, out)
		}
	}
}

func TestDeploySubcommandPullRejection(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"deploy", "-image", "freestuff/log-shipper:3.1"}, &buf); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	if !strings.Contains(buf.String(), "REJECTED at pull: freestuff/log-shipper:3.1") {
		t.Errorf("missing typed pull rejection:\n%s", buf.String())
	}
}

func TestWatchSubcommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"watch", "-deploys", "4"}, &buf); err != nil {
		t.Fatalf("watch: %v", err)
	}
	out := buf.String()
	for _, needle := range []string{
		"watching deploy.lifecycle (4 scripted deploys)",
		"-> running",
		"-> rejected",
		"watched-00",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("watch output missing %q:\n%s", needle, out)
		}
	}
}

func TestWatchSubcommandTenantFilterMiss(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"watch", "-deploys", "2", "-tenant", "nobody"}, &buf); err != nil {
		t.Fatalf("watch: %v", err)
	}
	if strings.Contains(buf.String(), "-> running") {
		t.Errorf("tenant filter leaked events:\n%s", buf.String())
	}
}

func TestDeploySubcommandDeadlineExpired(t *testing.T) {
	var buf bytes.Buffer
	// A 1ns deadline is expired before the pipeline starts: the future
	// must terminate cancelled without placing anything.
	if err := run([]string{"deploy", "-image", "acme/analytics:2.0.1", "-timeout", "1ns"}, &buf); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "CANCELLED (deadline exceeded)") || !strings.Contains(out, "never placed") {
		t.Errorf("missing typed cancellation:\n%s", out)
	}
}

func TestDeploySubcommandQuotaRejection(t *testing.T) {
	var buf bytes.Buffer
	// The secure posture applies a 2000m default tenant quota; 3000m
	// trips the typed quota rejection.
	if err := run([]string{"deploy", "-image", "acme/analytics:2.0.1", "-cpu", "3000"}, &buf); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	if !strings.Contains(buf.String(), "REJECTED by quota: tenant acme") {
		t.Errorf("missing typed quota rejection:\n%s", buf.String())
	}
}

func TestNodesTopSubcommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"nodes", "-top"}, &buf); err != nil {
		t.Fatalf("nodes: %v", err)
	}
	out := buf.String()
	for _, needle := range []string{"NODE", "BINPACK", "SPREAD", "olt-01", "olt-02", "ready"} {
		if !strings.Contains(out, needle) {
			t.Errorf("nodes -top output missing %q:\n%s", needle, out)
		}
	}
}

func TestCordonSubcommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"cordon", "-node", "olt-02"}, &buf); err != nil {
		t.Fatalf("cordon: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "node olt-02 cordoned") || !strings.Contains(out, "cordoned") {
		t.Errorf("cordon output:\n%s", out)
	}
	buf.Reset()
	if err := run([]string{"cordon", "-node", "olt-02", "-undo"}, &buf); err != nil {
		t.Fatalf("uncordon: %v", err)
	}
	if !strings.Contains(buf.String(), "node olt-02 uncordoned") {
		t.Errorf("uncordon output:\n%s", buf.String())
	}
}

func TestDrainSubcommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"drain", "-node", "olt-01"}, &buf); err != nil {
		t.Fatalf("drain: %v", err)
	}
	out := buf.String()
	for _, needle := range []string{"draining olt-01", "migrated", "-> olt-02", "stays cordoned"} {
		if !strings.Contains(out, needle) {
			t.Errorf("drain output missing %q:\n%s", needle, out)
		}
	}
}
