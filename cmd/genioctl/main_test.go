package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSecurePosture(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-posture", "secure"}, &buf); err != nil {
		t.Fatalf("run secure: %v", err)
	}
	out := buf.String()
	for _, needle := range []string{
		"attested=true",
		"hostile image rejected",
		"BLOCKED",
		"FAR-EDGE",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("secure output missing %q", needle)
		}
	}
}

func TestLegacyPosture(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-posture", "legacy"}, &buf); err != nil {
		t.Fatalf("run legacy: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "hostile image ADMITTED") {
		t.Error("legacy posture should admit the hostile image")
	}
	if !strings.Contains(out, "attested=false") {
		t.Error("legacy nodes should not attest")
	}
	if !strings.Contains(out, "(empty — nothing was blocked or detected)") {
		t.Error("legacy incident log should be empty")
	}
}

func TestCampaignFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-posture", "secure", "-campaign"}, &buf); err != nil {
		t.Fatalf("run campaign: %v", err)
	}
	if !strings.Contains(buf.String(), "missed=0") {
		t.Errorf("secure campaign should miss nothing:\n%s", buf.String())
	}
}

func TestUnknownPosture(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-posture", "chaotic"}, &buf); err == nil {
		t.Fatal("unknown posture accepted")
	}
}

func TestDeploySubcommandPlaced(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"deploy", "-image", "acme/analytics:2.0.1", "-name", "web", "-wait"}, &buf); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	out := buf.String()
	for _, needle := range []string{"scanning", "placing", "running", "PLACED: web on olt-01"} {
		if !strings.Contains(out, needle) {
			t.Errorf("deploy output missing %q:\n%s", needle, out)
		}
	}
}

func TestDeploySubcommandTypedVerdicts(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"deploy", "-image", "acme/iot-gateway:1.4.2", "-name", "flagged"}, &buf); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	out := buf.String()
	for _, needle := range []string{
		"REJECTED by admission (workload flagged)",
		"[FAIL] sast-gate",
		"[pass] malware-scan",
		"[pass] sca-gate",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("deploy output missing %q:\n%s", needle, out)
		}
	}
}

func TestDeploySubcommandPullRejection(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"deploy", "-image", "freestuff/log-shipper:3.1"}, &buf); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	if !strings.Contains(buf.String(), "REJECTED at pull: freestuff/log-shipper:3.1") {
		t.Errorf("missing typed pull rejection:\n%s", buf.String())
	}
}

func TestWatchSubcommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"watch", "-deploys", "4"}, &buf); err != nil {
		t.Fatalf("watch: %v", err)
	}
	out := buf.String()
	for _, needle := range []string{
		"watching deploy.lifecycle (4 scripted deploys)",
		"-> running",
		"-> rejected",
		"watched-00",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("watch output missing %q:\n%s", needle, out)
		}
	}
}

func TestWatchSubcommandTenantFilterMiss(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"watch", "-deploys", "2", "-tenant", "nobody"}, &buf); err != nil {
		t.Fatalf("watch: %v", err)
	}
	if strings.Contains(buf.String(), "-> running") {
		t.Errorf("tenant filter leaked events:\n%s", buf.String())
	}
}

func TestDeploySubcommandDeadlineExpired(t *testing.T) {
	var buf bytes.Buffer
	// A 1ns deadline is expired before the pipeline starts: the future
	// must terminate cancelled without placing anything.
	if err := run([]string{"deploy", "-image", "acme/analytics:2.0.1", "-timeout", "1ns"}, &buf); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "CANCELLED (deadline exceeded)") || !strings.Contains(out, "never placed") {
		t.Errorf("missing typed cancellation:\n%s", out)
	}
}

func TestDeploySubcommandQuotaRejection(t *testing.T) {
	var buf bytes.Buffer
	// The secure posture applies a 2000m default tenant quota; 3000m
	// trips the typed quota rejection.
	if err := run([]string{"deploy", "-image", "acme/analytics:2.0.1", "-cpu", "3000"}, &buf); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	if !strings.Contains(buf.String(), "REJECTED by quota: tenant acme") {
		t.Errorf("missing typed quota rejection:\n%s", buf.String())
	}
}

func TestNodesTopSubcommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"nodes", "-top"}, &buf); err != nil {
		t.Fatalf("nodes: %v", err)
	}
	out := buf.String()
	for _, needle := range []string{"NODE", "BINPACK", "SPREAD", "olt-01", "olt-02", "ready"} {
		if !strings.Contains(out, needle) {
			t.Errorf("nodes -top output missing %q:\n%s", needle, out)
		}
	}
}

func TestCordonSubcommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"cordon", "-node", "olt-02"}, &buf); err != nil {
		t.Fatalf("cordon: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "node olt-02 cordoned") || !strings.Contains(out, "cordoned") {
		t.Errorf("cordon output:\n%s", out)
	}
	buf.Reset()
	if err := run([]string{"cordon", "-node", "olt-02", "-undo"}, &buf); err != nil {
		t.Fatalf("uncordon: %v", err)
	}
	if !strings.Contains(buf.String(), "node olt-02 uncordoned") {
		t.Errorf("uncordon output:\n%s", buf.String())
	}
}

func TestDrainSubcommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"drain", "-node", "olt-01"}, &buf); err != nil {
		t.Fatalf("drain: %v", err)
	}
	out := buf.String()
	for _, needle := range []string{"draining olt-01", "migrated", "-> olt-02", "stays cordoned"} {
		if !strings.Contains(out, needle) {
			t.Errorf("drain output missing %q:\n%s", needle, out)
		}
	}
}
