package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSecurePosture(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-posture", "secure"}, &buf); err != nil {
		t.Fatalf("run secure: %v", err)
	}
	out := buf.String()
	for _, needle := range []string{
		"attested=true",
		"hostile image rejected",
		"BLOCKED",
		"FAR-EDGE",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("secure output missing %q", needle)
		}
	}
}

func TestLegacyPosture(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-posture", "legacy"}, &buf); err != nil {
		t.Fatalf("run legacy: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "hostile image ADMITTED") {
		t.Error("legacy posture should admit the hostile image")
	}
	if !strings.Contains(out, "attested=false") {
		t.Error("legacy nodes should not attest")
	}
	if !strings.Contains(out, "(empty — nothing was blocked or detected)") {
		t.Error("legacy incident log should be empty")
	}
}

func TestCampaignFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-posture", "secure", "-campaign"}, &buf); err != nil {
		t.Fatalf("run campaign: %v", err)
	}
	if !strings.Contains(buf.String(), "missed=0") {
		t.Errorf("secure campaign should miss nothing:\n%s", buf.String())
	}
}

func TestUnknownPosture(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-posture", "chaotic"}, &buf); err == nil {
		t.Fatal("unknown posture accepted")
	}
}
