// Command genio-sim runs the deterministic scenario-simulation and
// fault-injection campaigns of internal/sim against a real platform and
// emits a JSON report. A run is fully determined by (campaign, seed):
// re-running with the same flags reproduces the identical report, which
// is what makes a red run a shareable bug reproduction.
//
// Usage:
//
//	genio-sim -list                              # name the campaigns
//	genio-sim -campaign churn -seed 7            # one campaign, JSON report
//	genio-sim -campaign all -seed 7              # every campaign
//	genio-sim -campaign failover-storm -summary  # one-line verdicts only
//	genio-sim -campaign event-storm -events      # + spine firehose on stderr
//	genio-sim -campaign cancel-storm -seed 7     # API-v2 cancellation races
//
// cancel-storm drives asynchronous deployments (DeployAsync futures)
// with seeded cancellations deterministically landing mid-scan; its
// invariants prove no cancelled deployment is ever placed and that every
// future emits exactly one terminal deploy.lifecycle event.
//
// -events streams every event-spine record (incidents, falco alerts,
// audit, metrics) as JSON lines to stderr while the run executes. The
// stdout report stays byte-identical; the firehose itself is an
// observation stream whose interleaving across spine shards is not part
// of the replay contract.
//
// Exit status is non-zero when any invariant was violated.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"genio/internal/sim"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "genio-sim:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, out, errOut io.Writer) (int, error) {
	fs := flag.NewFlagSet("genio-sim", flag.ContinueOnError)
	fs.SetOutput(out)
	campaign := fs.String("campaign", "all", "campaign to run (see -list), or 'all'")
	seed := fs.Int64("seed", 1, "RNG seed; same (campaign, seed) replays the identical run")
	list := fs.Bool("list", false, "list campaigns and exit")
	summary := fs.Bool("summary", false, "print one line per campaign instead of JSON")
	firehose := fs.Bool("events", false, "stream every spine event as JSON lines on stderr")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	if *list {
		for _, n := range sim.CampaignNames() {
			fmt.Fprintln(out, n)
		}
		return 0, nil
	}

	names := []string{*campaign}
	if *campaign == "all" {
		names = sim.CampaignNames()
	}

	engine := sim.NewEngine(nil)
	if *firehose {
		engine.SetFirehose(errOut)
	}
	code := 0
	for _, name := range names {
		sc, err := sim.NewCampaign(name, *seed)
		if err != nil {
			return 2, err
		}
		rep, err := engine.Run(sc)
		if err != nil {
			return 2, fmt.Errorf("campaign %s: %w", name, err)
		}
		if !rep.Passed {
			code = 1
		}
		if *summary {
			verdict := "PASS"
			if !rep.Passed {
				verdict = "FAIL"
			}
			fmt.Fprintf(out, "%s: %s seed=%d steps=%d violations=%d admitted=%d rejected=%d virtual=%dms\n",
				verdict, rep.Scenario, rep.Seed, len(rep.Steps), rep.Violations,
				rep.Final.Admitted, rep.Final.Rejected, rep.Final.VirtualMs)
			continue
		}
		js, err := rep.JSON()
		if err != nil {
			return 2, err
		}
		fmt.Fprintf(out, "%s\n", js)
	}
	return code, nil
}
