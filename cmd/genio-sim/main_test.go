package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestEventsFirehose: -events streams JSON event lines to the error
// writer while the stdout report stays a clean, replayable JSON report.
func TestEventsFirehose(t *testing.T) {
	var out, hose bytes.Buffer
	code, err := run([]string{"-campaign", "event-storm", "-seed", "4", "-events"}, &out, &hose)
	if err != nil || code != 0 {
		t.Fatalf("event-storm: code=%d err=%v\n%s", code, err, out.String())
	}
	lines := strings.Split(strings.TrimSpace(hose.String()), "\n")
	if len(lines) < 100 {
		t.Fatalf("firehose produced only %d lines", len(lines))
	}
	for _, l := range lines[:5] {
		if !strings.HasPrefix(l, `{"topic":"`) {
			t.Fatalf("malformed firehose line: %s", l)
		}
	}
	if !strings.Contains(out.String(), `"eventsByTopic"`) {
		t.Fatalf("report missing event tallies:\n%s", out.String())
	}

	// The report must not change when the firehose is off.
	var silent bytes.Buffer
	code, err = run([]string{"-campaign", "event-storm", "-seed", "4"}, &silent, io.Discard)
	if err != nil || code != 0 {
		t.Fatalf("silent rerun: code=%d err=%v", code, err)
	}
	if silent.String() != out.String() {
		t.Fatal("firehose perturbed the stdout report")
	}
}

func TestListCampaigns(t *testing.T) {
	var buf bytes.Buffer
	code, err := run([]string{"-list"}, &buf, io.Discard)
	if err != nil || code != 0 {
		t.Fatalf("list: code=%d err=%v", code, err)
	}
	for _, want := range []string{"churn", "admission-flood", "failover-storm"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("campaign %s missing from list:\n%s", want, buf.String())
		}
	}
}

func TestRunCampaignJSONReplayable(t *testing.T) {
	runOnce := func() string {
		var buf bytes.Buffer
		code, err := run([]string{"-campaign", "churn", "-seed", "11"}, &buf, io.Discard)
		if err != nil || code != 0 {
			t.Fatalf("churn: code=%d err=%v\n%s", code, err, buf.String())
		}
		return buf.String()
	}
	out1, out2 := runOnce(), runOnce()
	if out1 != out2 {
		t.Fatal("same (campaign, seed) produced different reports")
	}
	if !strings.Contains(out1, `"passed": true`) {
		t.Fatalf("campaign failed:\n%s", out1)
	}
}

func TestRunAllSummary(t *testing.T) {
	var buf bytes.Buffer
	code, err := run([]string{"-campaign", "all", "-summary", "-seed", "2"}, &buf, io.Discard)
	if err != nil || code != 0 {
		t.Fatalf("all: code=%d err=%v\n%s", code, err, buf.String())
	}
	if got := strings.Count(buf.String(), "PASS: "); got < 3 {
		t.Fatalf("want >=3 passing campaigns, got %d:\n%s", got, buf.String())
	}
}

func TestUnknownCampaignErrors(t *testing.T) {
	var buf bytes.Buffer
	if code, err := run([]string{"-campaign", "bogus"}, &buf, io.Discard); err == nil || code != 2 {
		t.Fatalf("bogus campaign: code=%d err=%v", code, err)
	}
}
