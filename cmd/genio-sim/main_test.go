package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListCampaigns(t *testing.T) {
	var buf bytes.Buffer
	code, err := run([]string{"-list"}, &buf)
	if err != nil || code != 0 {
		t.Fatalf("list: code=%d err=%v", code, err)
	}
	for _, want := range []string{"churn", "admission-flood", "failover-storm"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("campaign %s missing from list:\n%s", want, buf.String())
		}
	}
}

func TestRunCampaignJSONReplayable(t *testing.T) {
	runOnce := func() string {
		var buf bytes.Buffer
		code, err := run([]string{"-campaign", "churn", "-seed", "11"}, &buf)
		if err != nil || code != 0 {
			t.Fatalf("churn: code=%d err=%v\n%s", code, err, buf.String())
		}
		return buf.String()
	}
	out1, out2 := runOnce(), runOnce()
	if out1 != out2 {
		t.Fatal("same (campaign, seed) produced different reports")
	}
	if !strings.Contains(out1, `"passed": true`) {
		t.Fatalf("campaign failed:\n%s", out1)
	}
}

func TestRunAllSummary(t *testing.T) {
	var buf bytes.Buffer
	code, err := run([]string{"-campaign", "all", "-summary", "-seed", "2"}, &buf)
	if err != nil || code != 0 {
		t.Fatalf("all: code=%d err=%v\n%s", code, err, buf.String())
	}
	if got := strings.Count(buf.String(), "PASS: "); got < 3 {
		t.Fatalf("want >=3 passing campaigns, got %d:\n%s", got, buf.String())
	}
}

func TestUnknownCampaignErrors(t *testing.T) {
	var buf bytes.Buffer
	if code, err := run([]string{"-campaign", "bogus"}, &buf); err == nil || code != 2 {
		t.Fatalf("bogus campaign: code=%d err=%v", code, err)
	}
}
