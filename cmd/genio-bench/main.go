// Command genio-bench runs the reproduction experiments: the three paper
// figures, the eight Lesson studies, and the end-to-end attack campaign.
//
// Usage:
//
//	genio-bench -list
//	genio-bench -exp fig3
//	genio-bench -exp all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"genio/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "genio-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("genio-bench", flag.ContinueOnError)
	fs.SetOutput(out)
	exp := fs.String("exp", "all", "experiment id to run (see -list), or 'all'")
	list := fs.Bool("list", false, "list available experiments")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(out, "%-9s %s\n", e.ID, e.Title)
		}
		return nil
	}

	if *exp == "all" {
		for _, e := range experiments.All() {
			if err := runOne(out, e); err != nil {
				return err
			}
		}
		return nil
	}
	e, ok := experiments.ByID(*exp)
	if !ok {
		return fmt.Errorf("unknown experiment %q (use -list)", *exp)
	}
	return runOne(out, e)
}

func runOne(out io.Writer, e experiments.Experiment) error {
	fmt.Fprintf(out, "==============================================================\n")
	fmt.Fprintf(out, "[%s] %s\n", e.ID, e.Title)
	fmt.Fprintf(out, "==============================================================\n")
	text, err := e.Run()
	if err != nil {
		return fmt.Errorf("experiment %s: %w", e.ID, err)
	}
	fmt.Fprintln(out, text)
	return nil
}
