package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	out := buf.String()
	for _, id := range []string{"fig1", "fig3", "lesson1", "lesson8", "e2e", "ablation", "risk"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s", id)
		}
	}
}

func TestSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig3"}, &buf); err != nil {
		t.Fatalf("run -exp fig3: %v", err)
	}
	if !strings.Contains(buf.String(), "T1") || !strings.Contains(buf.String(), "M18") {
		t.Fatalf("fig3 output incomplete:\n%s", buf.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "ghost"}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}
