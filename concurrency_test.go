package genio_test

// Concurrency stress tests for the admission and runtime pipelines: many
// goroutines deploy across nodes and tenants while others stream runtime
// events and read platform state. Run with -race (CI does); the incident
// accounting assertions catch lost events, the counters catch double
// bookings.

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"genio"
	"genio/internal/container"
	"genio/internal/orchestrator"
	"genio/internal/rbac"
	"genio/internal/trace"
)

// stressPlatform builds a secure multi-node platform with a trusted
// publisher, a signed clean image, and per-tenant deploy rights.
func stressPlatform(t *testing.T, nodes int, tenants []string) *genio.Platform {
	t.Helper()
	p, err := genio.NewPlatform(genio.SecureConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	for i := 0; i < nodes; i++ {
		if _, err := p.AddEdgeNode(fmt.Sprintf("olt-%02d", i), genio.Resources{CPUMilli: 1 << 20, MemoryMB: 1 << 20}); err != nil {
			t.Fatal(err)
		}
	}
	pub, err := container.NewPublisher("acme")
	if err != nil {
		t.Fatal(err)
	}
	p.Registry.TrustPublisher("acme", pub.PublicKey())
	img := container.AnalyticsImage()
	sig := pub.Sign(img)
	p.Registry.Push(img, &sig)

	var perms []rbac.Permission
	for _, tenant := range tenants {
		perms = append(perms, rbac.Permission{Verb: "create", Resource: "workloads", Namespace: tenant})
		p.Cluster.SetQuota(tenant, genio.Resources{}) // unlimited: the test floods on purpose
	}
	p.RBAC.SetRole(rbac.Role{Name: "stress-deployer", Permissions: perms})
	if err := p.RBAC.Bind("ci", "stress-deployer"); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestConcurrentDeployObserveAndRead is the pipeline stress test: deploys
// from N goroutines across nodes and tenants, concurrent ObserveRuntime
// streams, and constant readers. After Flush, no incident may be lost.
func TestConcurrentDeployObserveAndRead(t *testing.T) {
	const (
		deployers    = 4
		perDeployer  = 20
		observers    = 4
		perObserver  = 15
		shellBlocked = observers * perObserver // one sandbox block per trace
	)
	tenants := []string{"t0", "t1", "t2", "t3"}
	p := stressPlatform(t, 3, tenants)

	// One victim workload per observer, deployed up front so each has a
	// sandbox policy attached.
	for g := 0; g < observers; g++ {
		if _, err := p.Deploy("ci", genio.WorkloadSpec{
			Name: fmt.Sprintf("victim-%d", g), Tenant: tenants[g%len(tenants)],
			ImageRef: "acme/analytics:2.0.1", Isolation: genio.IsolationSoft,
			Resources: genio.Resources{CPUMilli: 10, MemoryMB: 10},
		}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, deployers*perDeployer)

	for g := 0; g < deployers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perDeployer; i++ {
				_, err := p.Deploy("ci", genio.WorkloadSpec{
					Name: fmt.Sprintf("w-%d-%d", g, i), Tenant: tenants[g%len(tenants)],
					ImageRef: "acme/analytics:2.0.1", Isolation: genio.IsolationSoft,
					Resources: genio.Resources{CPUMilli: 10, MemoryMB: 10},
				})
				if err != nil {
					errCh <- fmt.Errorf("deploy %d-%d: %w", g, i, err)
				}
			}
		}()
	}

	for g := 0; g < observers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			victim := fmt.Sprintf("victim-%d", g)
			tenant := tenants[g%len(tenants)]
			for i := 0; i < perObserver; i++ {
				events := trace.ReverseShellTrace(victim, tenant)
				if executed := p.ObserveRuntime(events); executed >= len(events) {
					errCh <- fmt.Errorf("observer %d: shell trace not truncated", g)
				}
			}
		}()
	}

	// Readers hammer every read-side query until the writers finish.
	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				p.Incidents()
				p.IncidentCounts()
				p.Nodes()
				p.Cluster.Workloads()
				p.Cluster.VMs()
				p.Cluster.Utilization()
				p.Cluster.SharedVMTenants()
			}
		}()
	}

	wg.Wait()
	close(done)
	readers.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	p.Flush()
	counts := p.IncidentCounts()
	blocked := 0
	for _, i := range p.Incidents() {
		if i.Source == "sandbox" && i.Blocked {
			blocked++
		}
	}
	if blocked != shellBlocked {
		t.Fatalf("sandbox blocked %d shells, want %d (lost incidents?) counts=%v", blocked, shellBlocked, counts)
	}

	wantWorkloads := deployers*perDeployer + observers
	if got := len(p.Cluster.Workloads()); got != wantWorkloads {
		t.Fatalf("%d workloads, want %d", got, wantWorkloads)
	}
	admitted, rejected := p.Cluster.Counters()
	if admitted != wantWorkloads || rejected != 0 {
		t.Fatalf("counters = %d/%d, want %d/0", admitted, rejected, wantWorkloads)
	}
}

// TestDeployBatch checks positional results and that one bad spec never
// blocks its siblings.
func TestDeployBatch(t *testing.T) {
	p := stressPlatform(t, 2, []string{"acme"})
	specs := make([]genio.WorkloadSpec, 0, 8)
	for i := 0; i < 8; i++ {
		specs = append(specs, genio.WorkloadSpec{
			Name: fmt.Sprintf("batch-%d", i), Tenant: "acme",
			ImageRef: "acme/analytics:2.0.1", Isolation: genio.IsolationSoft,
			Resources: genio.Resources{CPUMilli: 10, MemoryMB: 10},
		})
	}
	specs[3].ImageRef = "ghost/unknown:0.0" // unpullable
	specs[6].Name = specs[0].Name           // duplicate: exactly one of 0/6 wins

	workloads, errs := p.DeployBatch("ci", specs)
	if len(workloads) != len(specs) || len(errs) != len(specs) {
		t.Fatalf("result lengths %d/%d, want %d", len(workloads), len(errs), len(specs))
	}
	for i := range specs {
		switch i {
		case 0, 6:
			continue // racing pair, checked below
		case 3:
			if errs[i] == nil {
				t.Errorf("spec 3 should have failed to pull")
			}
		default:
			if errs[i] != nil {
				t.Errorf("spec %d: %v", i, errs[i])
			}
		}
		if (workloads[i] != nil) == (errs[i] != nil) {
			t.Errorf("spec %d: exactly one of workload/err must be set", i)
		}
	}
	// Specs 0 and 6 share a name and race; exactly one may win and the
	// loser must report the duplicate.
	if (errs[0] == nil) == (errs[6] == nil) {
		t.Fatalf("duplicate pair: errs[0]=%v errs[6]=%v, want exactly one winner", errs[0], errs[6])
	}
	loser := errs[0]
	if loser == nil {
		loser = errs[6]
	}
	if !errors.Is(loser, orchestrator.ErrDuplicateName) {
		t.Fatalf("duplicate loser err = %v, want ErrDuplicateName", loser)
	}
}

// TestIncidentBusSurvivesClose checks incidents recorded after Close are
// applied synchronously rather than lost.
func TestIncidentBusSurvivesClose(t *testing.T) {
	p, err := genio.NewPlatform(genio.SecureConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.RecordIncident(genio.Incident{Source: "test", Detail: "before close"})
	p.Close()
	p.Close() // idempotent
	p.RecordIncident(genio.Incident{Source: "test", Detail: "after close"})
	if got := p.IncidentCounts()["test"]; got != 2 {
		t.Fatalf("recorded %d test incidents, want 2", got)
	}
}
