// Package genio is the public API of the GENIO reproduction: a secure-by-
// design edge-computing platform on Passive Optical Network infrastructure,
// as described in "Security-by-Design at the Telco Edge with OSS:
// Challenges and Lessons Learned" (DSN 2025).
//
// The facade re-exports the platform core and the vocabulary types needed
// to drive it; the specialised subsystems (PON simulation, TPM, scanners,
// detectors, ...) live in internal packages and are reachable through the
// Platform's fields and the returned node/workload handles.
//
// The platform is safe for concurrent multi-tenant use: deployments fan
// the admission scanners out over a worker pool (with clean verdicts
// cached per image digest), Deploy and DeployBatch may be called from
// many goroutines, and every telemetry stream — incidents, falco
// alerts, control-plane audit records, metrics, deployment lifecycle —
// flows through one sharded event spine. Call Flush before reading
// incidents recorded by other goroutines, Subscribe to consume any
// stream live, and Close when discarding a platform.
//
// Control-plane API v2. Every blocking entry point has a context-first
// variant (DeployContext, DeployBatchContext, AddEdgeNodeContext,
// AttachONUContext, FlushContext, PublishEventContext): cancellation or
// deadline expiry aborts in-flight admission scans without placing the
// workload or leaking pool goroutines. DeployAsync returns a
// *Deployment future whose transitions (pending -> scanning -> placing
// -> running | rejected | cancelled) stream on the deploy.lifecycle
// topic, and Watch turns that topic into a filtered channel. Rejections
// are typed — *AdmissionError (per-scanner verdicts), *QuotaError,
// *CapacityError, *UnauthorizedError, *DuplicateNameError,
// *ImagePullError — all errors.Is-matching the ErrRejected umbrella
// plus their specific sentinels. Cancellations match ErrCancelled (and
// context.Canceled / context.DeadlineExceeded via Unwrap); operations
// on a closed platform return *ClosedError matching ErrClosed — both
// deliberately outside the rejection umbrella.
//
// Quick start:
//
//	p, err := genio.NewPlatform(genio.SecureConfig())
//	defer p.Close()
//	node, err := p.AddEdgeNode("olt-01", genio.Resources{CPUMilli: 8000, MemoryMB: 16384})
//	onu, err := p.AttachONU("olt-01", "onu-0001")
//
//	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
//	defer cancel()
//	d, err := p.DeployAsync(ctx, "tenant-ci", genio.WorkloadSpec{...})
//	w, err := d.Result() // or select on d.Done(); d.Cancel() to abort
//	var adm *genio.AdmissionError
//	if errors.As(err, &adm) { ... adm.Verdicts ... }
//
// Watching workload lifecycle (genioctl watch, SIEM export):
//
//	events, err := p.Watch(ctx, genio.WatchSelector{Tenant: "acme"})
//	for ev := range events { fmt.Println(ev.Workload, ev.State) }
//
// Consuming the raw event spine (a SIEM exporter, a dashboard):
//
//	sub, err := p.Subscribe("siem", []genio.Topic{genio.TopicIncident, genio.TopicAudit},
//		func(batch []genio.Event) { ... })
//	defer sub.Cancel()
//	stats := p.Metrics() // per-topic published/delivered/dropped/filtered
package genio

import (
	"genio/internal/attack"
	"genio/internal/core"
	"genio/internal/events"
	"genio/internal/federation"
	"genio/internal/orchestrator"
	"genio/internal/pon"
	"genio/internal/threatmodel"
)

// Platform is a running GENIO deployment. See core.Platform.
type Platform = core.Platform

// Config selects which mitigations are active. See core.Config.
type Config = core.Config

// EdgeNode is a provisioned OLT edge hub.
type EdgeNode = core.EdgeNode

// Incident is one security-relevant occurrence recorded by the platform.
type Incident = core.Incident

// WorkloadSpec describes a deployment request.
type WorkloadSpec = orchestrator.WorkloadSpec

// Resources is a CPU/memory demand or capacity.
type Resources = orchestrator.Resources

// IsolationMode selects hard (dedicated VM) or soft (shared VM container)
// isolation.
type IsolationMode = orchestrator.IsolationMode

// Isolation modes.
const (
	IsolationSoft = orchestrator.IsolationSoft
	IsolationHard = orchestrator.IsolationHard
)

// Placement strategies for WorkloadSpec.PlacementPolicy and the
// cluster-wide default (WithPlacementStrategy /
// Settings.PlacementStrategy): binpack packs for density, spread fans
// out for HA. See internal/orchestrator/scheduler for the policy
// pipeline.
const (
	PlacementBinpack = orchestrator.PlacementBinpack
	PlacementSpread  = orchestrator.PlacementSpread
)

// NodeUtilization is one node's placement state (capacity accounting,
// cordon flag, workload and shared-VM counts) as returned by
// Platform.Cluster.Utilization.
type NodeUtilization = orchestrator.NodeUtilization

// DrainResult reports a node drain's outcome (Platform.Drain).
type DrainResult = orchestrator.DrainResult

// DrainEvent is one observable step of a node drain — the payload of
// node.drain spine events.
type DrainEvent = orchestrator.DrainEvent

// Drain phases carried in DrainEvent.Phase.
const (
	DrainCordoned  = orchestrator.DrainCordoned
	DrainMigrated  = orchestrator.DrainMigrated
	DrainCompleted = orchestrator.DrainCompleted
	DrainCancelled = orchestrator.DrainCancelled
	DrainFailed    = orchestrator.DrainFailed
)

// PON security modes (M3/M4 posture of the optical segment).
const (
	PONPlaintext     = pon.ModePlaintext
	PONEncrypted     = pon.ModeEncrypted
	PONAuthenticated = pon.ModeAuthenticated
)

// Event is one record published on the platform's event spine.
type Event = events.Event

// Topic names one event stream on the spine.
type Topic = events.Topic

// Built-in spine topics.
const (
	TopicIncident        = events.TopicIncident
	TopicFalcoAlert      = events.TopicFalcoAlert
	TopicAudit           = events.TopicAudit
	TopicMetric          = events.TopicMetric
	TopicDeployLifecycle = events.TopicDeployLifecycle
	TopicNodeDrain       = events.TopicNodeDrain
)

// Metric is the common payload vocabulary for TopicMetric events.
type Metric = events.Metric

// AuditEvent is the payload of TopicAudit events: one control-plane
// decision (admission verdict, placement, failover, eviction, node
// membership change).
type AuditEvent = orchestrator.AuditEvent

// Subscription is a live spine subscription; Cancel detaches it.
type Subscription = events.Subscription

// BatchHandler receives delivered event batches (see events.BatchHandler
// for the concurrency contract).
type BatchHandler = events.BatchHandler

// EventStats is the per-topic spine accounting returned by
// Platform.Metrics.
type EventStats = events.Stats

// EventPolicy selects spine backpressure behaviour (Config.EventBackpressure).
type EventPolicy = events.Policy

// Backpressure policies: EventBlock never loses an event (producers wait
// when a shard queue fills — the default); EventDrop bounds producer
// latency instead, counting every loss in Metrics.
const (
	EventBlock = events.Block
	EventDrop  = events.Drop
)

// PlatformOption configures a Platform beyond its mitigation Config.
type PlatformOption = core.Option

// WithClock installs a millisecond time source on the platform (see
// core.WithClock); simulations use it to make runs replayable.
func WithClock(now func() int64) PlatformOption { return core.WithClock(now) }

// WithPlacementStrategy sets the cluster-wide default placement
// strategy (PlacementBinpack | PlacementSpread) for workloads that do
// not set their own WorkloadSpec.PlacementPolicy.
func WithPlacementStrategy(strategy string) PlatformOption {
	return core.WithPlacementStrategy(strategy)
}

// NewPlatform builds a platform with the given mitigation configuration.
func NewPlatform(cfg Config, opts ...PlatformOption) (*Platform, error) {
	return core.New(cfg, opts...)
}

// --- Control-plane API v2: futures, lifecycle, typed errors -----------------

// Deployment is an asynchronous deployment future returned by
// Platform.DeployAsync: Done/Result/Cancel plus the live State.
type Deployment = core.Deployment

// DeployOption configures one DeployAsync call (WithOnTransition).
type DeployOption = core.DeployOption

// WithOnTransition registers a per-deployment lifecycle callback (see
// core.WithOnTransition).
func WithOnTransition(fn func(LifecycleEvent)) DeployOption { return core.WithOnTransition(fn) }

// DeployState is one state of the asynchronous deployment lifecycle.
type DeployState = core.DeployState

// Lifecycle states: pending, scanning, and placing are transient;
// running, rejected, and cancelled are terminal.
const (
	StatePending   = core.StatePending
	StateScanning  = core.StateScanning
	StatePlacing   = core.StatePlacing
	StateRunning   = core.StateRunning
	StateRejected  = core.StateRejected
	StateCancelled = core.StateCancelled
)

// LifecycleEvent is the payload of deploy.lifecycle spine events and the
// element type of Watch channels.
type LifecycleEvent = core.LifecycleEvent

// WatchSelector filters Platform.Watch (zero value = everything).
type WatchSelector = core.WatchSelector

// Typed control-plane errors. All are errors.As-able from any rejection
// the deploy pipeline returns; the rejection types errors.Is-match both
// their specific sentinel and the ErrRejected umbrella, while
// CancelledError matches ErrCancelled and ClosedError matches ErrClosed
// (neither is a rejection).
type (
	// AdmissionError carries the full per-scanner verdict vector of a
	// rejected deployment.
	AdmissionError = orchestrator.AdmissionError
	// ScannerVerdict is one admission controller's outcome.
	ScannerVerdict = orchestrator.ScannerVerdict
	// ImagePullError is a registry pull failure (unknown ref, unsigned,
	// bad signature); Unwrap exposes the container sentinel.
	ImagePullError = orchestrator.ImagePullError
	// CapacityError reports that no node could host the demand.
	CapacityError = orchestrator.CapacityError
	// QuotaError reports a tenant-quota rejection with its arithmetic.
	QuotaError = orchestrator.QuotaError
	// UnauthorizedError reports an RBAC denial.
	UnauthorizedError = orchestrator.UnauthorizedError
	// DuplicateNameError reports a workload-name collision.
	DuplicateNameError = orchestrator.DuplicateNameError
	// NodeNotFoundError reports an operation on an unknown edge node.
	NodeNotFoundError = orchestrator.NodeNotFoundError
	// PlacementPolicyError reports a deploy naming an unknown placement
	// policy.
	PlacementPolicyError = orchestrator.PlacementPolicyError
	// DrainError reports a drain blocked by a workload that fits nowhere.
	DrainError = orchestrator.DrainError
	// CancelledError reports a deployment aborted by its context.
	CancelledError = orchestrator.CancelledError
	// ClosedError reports a control-plane operation on a closed platform.
	ClosedError = core.ClosedError
)

// Control-plane sentinels for errors.Is.
var (
	// ErrRejected matches every typed rejection of the deploy pipeline.
	ErrRejected = orchestrator.ErrRejected
	// ErrCancelled matches context-aborted deployments.
	ErrCancelled = orchestrator.ErrCancelled
	// ErrDenied matches admission-chain rejections.
	ErrDenied = orchestrator.ErrDenied
	// ErrNoCapacity matches capacity rejections.
	ErrNoCapacity = orchestrator.ErrNoCapacity
	// ErrQuotaExceeded matches tenant-quota rejections.
	ErrQuotaExceeded = orchestrator.ErrQuotaExceeded
	// ErrUnauthorized matches RBAC denials.
	ErrUnauthorized = orchestrator.ErrUnauthorized
	// ErrDuplicateName matches workload-name collisions.
	ErrDuplicateName = orchestrator.ErrDuplicateName
	// ErrClosed matches operations on a closed platform or spine.
	ErrClosed = events.ErrClosed
)

// --- Fleet federation --------------------------------------------------------

// FederationMember names one cluster (site / region) of a federated
// platform.
type FederationMember = core.FederationMember

// WithFederation runs the platform as the control plane of N named
// clusters: deploys route region-filter → consistent-hash ring →
// per-cluster scheduler, and EvacuateCluster re-places a dead member's
// workloads across the survivors. See core.WithFederation.
func WithFederation(members ...FederationMember) PlatformOption {
	return core.WithFederation(members...)
}

// EvacuationResult reports a cluster evacuation's moves and losses.
type EvacuationResult = federation.EvacuationResult

// Federation typed errors. The first two are deploy rejections matching
// the ErrRejected umbrella; ClusterNotFoundError matches ErrNotFound.
type (
	// RegionPinnedError reports a deploy that named a region conflicting
	// with its tenant's data-residency pin.
	RegionPinnedError = federation.RegionPinnedError
	// FederationCapacityError reports that no eligible cluster could
	// host the demand; Unwrap exposes the last per-cluster rejection.
	FederationCapacityError = federation.FederationCapacityError
	// ClusterNotFoundError reports an operation on an unknown
	// federation member.
	ClusterNotFoundError = federation.ClusterNotFoundError
)

// Federation sentinels for errors.Is.
var (
	// ErrRegionPinned matches tenant-pin violations.
	ErrRegionPinned = federation.ErrRegionPinned
	// ErrClusterNotFound matches operations on unknown clusters.
	ErrClusterNotFound = federation.ErrClusterNotFound
)

// SecureConfig returns the paper's full security-by-design posture.
func SecureConfig() Config { return core.SecureConfig() }

// LegacyConfig returns the unprotected pre-project posture.
func LegacyConfig() Config { return core.LegacyConfig() }

// ThreatModel returns the paper's STRIDE model (threats T1–T8, mitigations
// M1–M18, and the Figure-3 coverage matrix).
func ThreatModel() *threatmodel.Model { return threatmodel.GENIOModel() }

// Campaign executes scripted adversaries for T1–T8 against a platform.
type Campaign = attack.Campaign

// AttackResult is one executed attack with its outcome.
type AttackResult = attack.Result

// Attack outcomes.
const (
	AttackBlocked  = attack.OutcomeBlocked
	AttackDetected = attack.OutcomeDetected
	AttackMissed   = attack.OutcomeMissed
)

// NewCampaign prepares an attack campaign against p.
func NewCampaign(p *Platform) (*Campaign, error) { return attack.NewCampaign(p) }

// SummarizeAttacks tallies campaign outcomes.
func SummarizeAttacks(results []AttackResult) map[attack.Outcome]int {
	return attack.Summary(results)
}
