// Package genio is the public API of the GENIO reproduction: a secure-by-
// design edge-computing platform on Passive Optical Network infrastructure,
// as described in "Security-by-Design at the Telco Edge with OSS:
// Challenges and Lessons Learned" (DSN 2025).
//
// The facade re-exports the platform core and the vocabulary types needed
// to drive it; the specialised subsystems (PON simulation, TPM, scanners,
// detectors, ...) live in internal packages and are reachable through the
// Platform's fields and the returned node/workload handles.
//
// The platform is safe for concurrent multi-tenant use: deployments fan
// the admission scanners out over a worker pool (with clean verdicts
// cached per image digest), Deploy and DeployBatch may be called from
// many goroutines, and every telemetry stream — incidents, falco
// alerts, control-plane audit records, metrics — flows through one
// sharded event spine. Call Flush before reading incidents recorded by
// other goroutines, Subscribe to consume any stream live, and Close
// when discarding a platform.
//
// Quick start:
//
//	p, err := genio.NewPlatform(genio.SecureConfig())
//	defer p.Close()
//	node, err := p.AddEdgeNode("olt-01", genio.Resources{CPUMilli: 8000, MemoryMB: 16384})
//	onu, err := p.AttachONU("olt-01", "onu-0001")
//	w, err := p.Deploy("tenant-ci", genio.WorkloadSpec{...})
//	ws, errs := p.DeployBatch("tenant-ci", []genio.WorkloadSpec{...})
//
// Consuming the event spine (a SIEM exporter, a dashboard):
//
//	sub, err := p.Subscribe("siem", []genio.Topic{genio.TopicIncident, genio.TopicAudit},
//		func(batch []genio.Event) { ... })
//	defer sub.Cancel()
//	stats := p.Metrics() // per-topic published/delivered/dropped/filtered
package genio

import (
	"genio/internal/attack"
	"genio/internal/core"
	"genio/internal/events"
	"genio/internal/orchestrator"
	"genio/internal/pon"
	"genio/internal/threatmodel"
)

// Platform is a running GENIO deployment. See core.Platform.
type Platform = core.Platform

// Config selects which mitigations are active. See core.Config.
type Config = core.Config

// EdgeNode is a provisioned OLT edge hub.
type EdgeNode = core.EdgeNode

// Incident is one security-relevant occurrence recorded by the platform.
type Incident = core.Incident

// WorkloadSpec describes a deployment request.
type WorkloadSpec = orchestrator.WorkloadSpec

// Resources is a CPU/memory demand or capacity.
type Resources = orchestrator.Resources

// IsolationMode selects hard (dedicated VM) or soft (shared VM container)
// isolation.
type IsolationMode = orchestrator.IsolationMode

// Isolation modes.
const (
	IsolationSoft = orchestrator.IsolationSoft
	IsolationHard = orchestrator.IsolationHard
)

// PON security modes (M3/M4 posture of the optical segment).
const (
	PONPlaintext     = pon.ModePlaintext
	PONEncrypted     = pon.ModeEncrypted
	PONAuthenticated = pon.ModeAuthenticated
)

// Event is one record published on the platform's event spine.
type Event = events.Event

// Topic names one event stream on the spine.
type Topic = events.Topic

// Built-in spine topics.
const (
	TopicIncident   = events.TopicIncident
	TopicFalcoAlert = events.TopicFalcoAlert
	TopicAudit      = events.TopicAudit
	TopicMetric     = events.TopicMetric
)

// Metric is the common payload vocabulary for TopicMetric events.
type Metric = events.Metric

// AuditEvent is the payload of TopicAudit events: one control-plane
// decision (admission verdict, placement, failover, eviction, node
// membership change).
type AuditEvent = orchestrator.AuditEvent

// Subscription is a live spine subscription; Cancel detaches it.
type Subscription = events.Subscription

// BatchHandler receives delivered event batches (see events.BatchHandler
// for the concurrency contract).
type BatchHandler = events.BatchHandler

// EventStats is the per-topic spine accounting returned by
// Platform.Metrics.
type EventStats = events.Stats

// EventPolicy selects spine backpressure behaviour (Config.EventBackpressure).
type EventPolicy = events.Policy

// Backpressure policies: EventBlock never loses an event (producers wait
// when a shard queue fills — the default); EventDrop bounds producer
// latency instead, counting every loss in Metrics.
const (
	EventBlock = events.Block
	EventDrop  = events.Drop
)

// PlatformOption configures a Platform beyond its mitigation Config.
type PlatformOption = core.Option

// WithClock installs a millisecond time source on the platform (see
// core.WithClock); simulations use it to make runs replayable.
func WithClock(now func() int64) PlatformOption { return core.WithClock(now) }

// NewPlatform builds a platform with the given mitigation configuration.
func NewPlatform(cfg Config, opts ...PlatformOption) (*Platform, error) {
	return core.New(cfg, opts...)
}

// SecureConfig returns the paper's full security-by-design posture.
func SecureConfig() Config { return core.SecureConfig() }

// LegacyConfig returns the unprotected pre-project posture.
func LegacyConfig() Config { return core.LegacyConfig() }

// ThreatModel returns the paper's STRIDE model (threats T1–T8, mitigations
// M1–M18, and the Figure-3 coverage matrix).
func ThreatModel() *threatmodel.Model { return threatmodel.GENIOModel() }

// Campaign executes scripted adversaries for T1–T8 against a platform.
type Campaign = attack.Campaign

// AttackResult is one executed attack with its outcome.
type AttackResult = attack.Result

// Attack outcomes.
const (
	AttackBlocked  = attack.OutcomeBlocked
	AttackDetected = attack.OutcomeDetected
	AttackMissed   = attack.OutcomeMissed
)

// NewCampaign prepares an attack campaign against p.
func NewCampaign(p *Platform) (*Campaign, error) { return attack.NewCampaign(p) }

// SummarizeAttacks tallies campaign outcomes.
func SummarizeAttacks(results []AttackResult) map[attack.Outcome]int {
	return attack.Summary(results)
}
