#!/bin/sh
# e2e: build geniod + genioctl, boot a demo daemon, drive deploy/watch/
# cordon/drain/nodes over the wire, then SIGTERM the daemon and assert a
# clean drain-flush-close shutdown. Everything the CLI does here crosses
# the signed HTTP control plane — no in-process fallback.
set -eu

workdir="$(mktemp -d)"
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

fail() {
    echo "e2e: FAIL: $*" >&2
    echo "--- geniod log ---" >&2
    cat "$workdir/geniod.log" >&2 || true
    exit 1
}

echo "=== build"
go build -o "$workdir/geniod" ./cmd/geniod
go build -o "$workdir/genioctl" ./cmd/genioctl

addr="127.0.0.1:${GENIOD_E2E_PORT:-9650}"
identity="$workdir/ops.id"

echo "=== boot geniod on $addr"
"$workdir/geniod" -addr "$addr" -demo -identity-out "$identity" \
    >"$workdir/geniod.log" 2>&1 &
daemon_pid=$!

# Readiness: the identity file is written after the listener is up.
for _ in $(seq 1 50); do
    [ -s "$identity" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || fail "geniod exited during startup"
    sleep 0.1
done
[ -s "$identity" ] || fail "geniod never wrote the client identity"

ctl() {
    "$workdir/genioctl" "$@"
}
export GENIOD_ADDR="$addr" GENIOD_IDENTITY="$identity"

echo "=== deploy --wait"
out="$(ctl deploy -name e2e-web -image acme/analytics:2.0.1 -wait)"
echo "$out"
echo "$out" | grep -q "PLACED: e2e-web" || fail "deploy did not place"
echo "$out" | grep -q "running" || fail "deploy -wait streamed no lifecycle"

echo "=== deploy (typed rejection over the wire)"
out="$(ctl deploy -name e2e-flagged -image acme/iot-gateway:1.4.2 || true)"
echo "$out"
echo "$out" | grep -q "REJECTED by admission" || fail "no typed admission verdict"

echo "=== watch (SSE lifecycle stream)"
out="$(ctl watch -deploys 3)"
echo "$out"
echo "$out" | grep -q -- "-> running" || fail "watch saw no terminal running"

echo "=== cordon / uncordon"
out="$(ctl cordon -node olt-01)"
echo "$out" | grep -q "olt-01 cordoned" || fail "cordon failed"
ctl cordon -node olt-01 -undo >/dev/null

echo "=== drain"
out="$(ctl drain -node olt-01)"
echo "$out"
echo "$out" | grep -q "stays cordoned" || fail "drain did not complete"

echo "=== nodes -top"
out="$(ctl nodes -top)"
echo "$out"
echo "$out" | grep -q "BINPACK" || fail "nodes -top printed no scores"

echo "=== graceful shutdown"
kill -TERM "$daemon_pid"
for _ in $(seq 1 100); do
    kill -0 "$daemon_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$daemon_pid" 2>/dev/null; then
    fail "geniod still running 10s after SIGTERM"
fi
wait "$daemon_pid" || fail "geniod exited non-zero"
daemon_pid=""
grep -q "shutdown complete" "$workdir/geniod.log" || fail "no clean shutdown marker"

# --- crash-restart leg: kill -9 a durable daemon, restart on the same
# -data-dir, and assert the control-plane state survived the crash.
echo "=== crash-restart (durable -data-dir)"
addr2="127.0.0.1:${GENIOD_E2E_PORT2:-9651}"
datadir="$workdir/data"
identity2="$workdir/ops2.id"

boot_durable() {
    # $1: identity path. A fresh one each boot: the CA is deliberately
    # not persisted, so restart re-keys the cluster.
    "$workdir/geniod" -addr "$addr2" -demo -data-dir "$datadir" \
        -identity-out "$1" >"$workdir/geniod.log" 2>&1 &
    daemon_pid=$!
    for _ in $(seq 1 50); do
        [ -s "$1" ] && break
        kill -0 "$daemon_pid" 2>/dev/null || fail "durable geniod exited during startup"
        sleep 0.1
    done
    [ -s "$1" ] || fail "durable geniod never wrote the client identity"
}

boot_durable "$identity2"
export GENIOD_ADDR="$addr2" GENIOD_IDENTITY="$identity2"

out="$(ctl deploy -name e2e-durable -image acme/analytics:2.0.1 -wait)"
echo "$out" | grep -q "PLACED: e2e-durable" || fail "durable deploy did not place"
# A rejected hostile image records a blocked incident in the ledger.
ctl deploy -name e2e-durable-flagged -image acme/iot-gateway:1.4.2 >/dev/null 2>&1 || true

echo "=== kill -9, restart on the same -data-dir"
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

identity3="$workdir/ops3.id"
boot_durable "$identity3"
export GENIOD_IDENTITY="$identity3"

grep -q "durable state in" "$workdir/geniod.log" || fail "no recovery banner after restart"
recovered="$(grep "durable state in" "$workdir/geniod.log")"
echo "$recovered"
echo "$recovered" | grep -q "1 workloads" || fail "placement did not survive kill -9: $recovered"
echo "$recovered" | grep -Eq "[1-9][0-9]* incidents" || fail "incident ledger did not survive kill -9: $recovered"

# The surviving placement is live, not just counted: re-deploying the
# same name must be refused as a duplicate.
out="$(ctl deploy -name e2e-durable -image acme/analytics:2.0.1 2>&1 || true)"
echo "$out"
echo "$out" | grep -q "workload name in use" || fail "recovered placement not enforced: $out"

out="$(ctl nodes)"
echo "$out" | grep -q "olt-01" || fail "recovered fleet missing olt-01"

kill -TERM "$daemon_pid"
for _ in $(seq 1 100); do
    kill -0 "$daemon_pid" 2>/dev/null || break
    sleep 0.1
done
wait "$daemon_pid" || fail "durable geniod exited non-zero after recovery"
daemon_pid=""

echo "e2e: PASS"
