#!/bin/sh
# e2e: build geniod + genioctl, boot a demo daemon, drive deploy/watch/
# cordon/drain/nodes over the wire, then SIGTERM the daemon and assert a
# clean drain-flush-close shutdown. Everything the CLI does here crosses
# the signed HTTP control plane — no in-process fallback.
set -eu

workdir="$(mktemp -d)"
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

fail() {
    echo "e2e: FAIL: $*" >&2
    echo "--- geniod log ---" >&2
    cat "$workdir/geniod.log" >&2 || true
    exit 1
}

echo "=== build"
go build -o "$workdir/geniod" ./cmd/geniod
go build -o "$workdir/genioctl" ./cmd/genioctl

addr="127.0.0.1:${GENIOD_E2E_PORT:-9650}"
identity="$workdir/ops.id"

echo "=== boot geniod on $addr"
"$workdir/geniod" -addr "$addr" -demo -identity-out "$identity" \
    >"$workdir/geniod.log" 2>&1 &
daemon_pid=$!

# Readiness: the identity file is written after the listener is up.
for _ in $(seq 1 50); do
    [ -s "$identity" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || fail "geniod exited during startup"
    sleep 0.1
done
[ -s "$identity" ] || fail "geniod never wrote the client identity"

ctl() {
    "$workdir/genioctl" "$@"
}
export GENIOD_ADDR="$addr" GENIOD_IDENTITY="$identity"

echo "=== deploy --wait"
out="$(ctl deploy -name e2e-web -image acme/analytics:2.0.1 -wait)"
echo "$out"
echo "$out" | grep -q "PLACED: e2e-web" || fail "deploy did not place"
echo "$out" | grep -q "running" || fail "deploy -wait streamed no lifecycle"

echo "=== deploy (typed rejection over the wire)"
out="$(ctl deploy -name e2e-flagged -image acme/iot-gateway:1.4.2 || true)"
echo "$out"
echo "$out" | grep -q "REJECTED by admission" || fail "no typed admission verdict"

echo "=== watch (SSE lifecycle stream)"
out="$(ctl watch -deploys 3)"
echo "$out"
echo "$out" | grep -q -- "-> running" || fail "watch saw no terminal running"

echo "=== cordon / uncordon"
out="$(ctl cordon -node olt-01)"
echo "$out" | grep -q "olt-01 cordoned" || fail "cordon failed"
ctl cordon -node olt-01 -undo >/dev/null

echo "=== drain"
out="$(ctl drain -node olt-01)"
echo "$out"
echo "$out" | grep -q "stays cordoned" || fail "drain did not complete"

echo "=== nodes -top"
out="$(ctl nodes -top)"
echo "$out"
echo "$out" | grep -q "BINPACK" || fail "nodes -top printed no scores"

echo "=== graceful shutdown"
kill -TERM "$daemon_pid"
for _ in $(seq 1 100); do
    kill -0 "$daemon_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$daemon_pid" 2>/dev/null; then
    fail "geniod still running 10s after SIGTERM"
fi
wait "$daemon_pid" || fail "geniod exited non-zero"
daemon_pid=""
grep -q "shutdown complete" "$workdir/geniod.log" || fail "no clean shutdown marker"

# --- crash-restart leg: kill -9 a durable daemon, restart on the same
# -data-dir, and assert the control-plane state survived the crash.
echo "=== crash-restart (durable -data-dir)"
addr2="127.0.0.1:${GENIOD_E2E_PORT2:-9651}"
datadir="$workdir/data"
identity2="$workdir/ops2.id"

boot_durable() {
    # $1: identity path. A fresh one each boot: the CA is deliberately
    # not persisted, so restart re-keys the cluster.
    "$workdir/geniod" -addr "$addr2" -demo -data-dir "$datadir" \
        -identity-out "$1" >"$workdir/geniod.log" 2>&1 &
    daemon_pid=$!
    for _ in $(seq 1 50); do
        [ -s "$1" ] && break
        kill -0 "$daemon_pid" 2>/dev/null || fail "durable geniod exited during startup"
        sleep 0.1
    done
    [ -s "$1" ] || fail "durable geniod never wrote the client identity"
}

boot_durable "$identity2"
export GENIOD_ADDR="$addr2" GENIOD_IDENTITY="$identity2"

out="$(ctl deploy -name e2e-durable -image acme/analytics:2.0.1 -wait)"
echo "$out" | grep -q "PLACED: e2e-durable" || fail "durable deploy did not place"
# A rejected hostile image records a blocked incident in the ledger.
ctl deploy -name e2e-durable-flagged -image acme/iot-gateway:1.4.2 >/dev/null 2>&1 || true

echo "=== kill -9, restart on the same -data-dir"
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

identity3="$workdir/ops3.id"
boot_durable "$identity3"
export GENIOD_IDENTITY="$identity3"

grep -q "durable state in" "$workdir/geniod.log" || fail "no recovery banner after restart"
recovered="$(grep "durable state in" "$workdir/geniod.log")"
echo "$recovered"
echo "$recovered" | grep -q "1 workloads" || fail "placement did not survive kill -9: $recovered"
echo "$recovered" | grep -Eq "[1-9][0-9]* incidents" || fail "incident ledger did not survive kill -9: $recovered"

# The surviving placement is live, not just counted: re-deploying the
# same name must be refused as a duplicate.
out="$(ctl deploy -name e2e-durable -image acme/analytics:2.0.1 2>&1 || true)"
echo "$out"
echo "$out" | grep -q "workload name in use" || fail "recovered placement not enforced: $out"

out="$(ctl nodes)"
echo "$out" | grep -q "olt-01" || fail "recovered fleet missing olt-01"

kill -TERM "$daemon_pid"
for _ in $(seq 1 100); do
    kill -0 "$daemon_pid" 2>/dev/null || break
    sleep 0.1
done
wait "$daemon_pid" || fail "durable geniod exited non-zero after recovery"
daemon_pid=""

# --- federated leg: boot a 3-cluster federation with a residency pin,
# deploy region-pinned over the wire, kill one member, and assert the
# evacuation re-placed its workloads without leaving the region dark.
echo "=== federated boot (3 clusters, gov pinned to west)"
addr3="127.0.0.1:${GENIOD_E2E_PORT3:-9652}"
identity4="$workdir/ops4.id"
"$workdir/geniod" -addr "$addr3" -demo \
    -federation "edge-a=west,edge-b=east,edge-c=east" -pin "gov=west" \
    -identity-out "$identity4" >"$workdir/geniod.log" 2>&1 &
daemon_pid=$!
for _ in $(seq 1 50); do
    [ -s "$identity4" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || fail "federated geniod exited during startup"
    sleep 0.1
done
[ -s "$identity4" ] || fail "federated geniod never wrote the client identity"
export GENIOD_ADDR="$addr3" GENIOD_IDENTITY="$identity4"

echo "=== clusters"
out="$(ctl clusters)"
echo "$out"
for member in edge-a edge-b edge-c; do
    echo "$out" | grep -q "$member" || fail "clusters missing member $member"
done

echo "=== deploy -region (pinned tenant, allowed region)"
out="$(ctl deploy -name e2e-fed-gov -tenant gov -region west -wait)"
echo "$out"
echo "$out" | grep -q "PLACED: e2e-fed-gov" || fail "pinned deploy did not place"

echo "=== deploy -region (residency violation, typed over the wire)"
out="$(ctl deploy -name e2e-fed-leak -tenant gov -region east 2>&1 || true)"
echo "$out"
echo "$out" | grep -q "REJECTED by residency pin" || fail "no typed residency rejection"

echo "=== deploy into the doomed region"
out="$(ctl deploy -name e2e-fed-east -tenant acme -region east -wait)"
echo "$out"
echo "$out" | grep -q "PLACED: e2e-fed-east" || fail "east deploy did not place"
# Tenant ops hashes to edge-b on the (tenant, digest) ring, so this
# workload is guaranteed to sit on the member we are about to kill.
out="$(ctl deploy -name e2e-fed-ops -tenant ops -region east -wait)"
echo "$out"
echo "$out" | grep -q "PLACED: e2e-fed-ops on edge-b-" || fail "ops deploy did not land on edge-b"

echo "=== nodes -top (grouped per member)"
out="$(ctl nodes -top)"
echo "$out"
echo "$out" | grep -q "\[cluster edge-b\]" || fail "nodes -top not grouped by cluster"
out="$(ctl nodes -cluster edge-c)"
echo "$out"
echo "$out" | grep -q "edge-c-olt-01" || fail "nodes -cluster edge-c missing its node"
echo "$out" | grep -q "edge-b-olt" && fail "nodes -cluster edge-c leaked edge-b rows"

echo "=== evacuate edge-b"
out="$(ctl clusters -evacuate edge-b)"
echo "$out"
echo "$out" | grep -q "cluster edge-b evacuated: 1 moved, 0 lost" || fail "evacuation did not re-place edge-b's workload"
echo "$out" | grep -q "moved e2e-fed-ops" || fail "evacuation did not report the moved workload"
out="$(ctl clusters)"
echo "$out"
if echo "$out" | grep -q "edge-b"; then
    fail "edge-b still listed after evacuation"
fi
echo "$out" | grep -q "edge-c" || fail "edge-c gone after evacuating edge-b"

# The east region stays serviceable through the surviving member.
out="$(ctl deploy -name e2e-fed-after -tenant acme -region east -wait)"
echo "$out" | grep -q "PLACED: e2e-fed-after" || fail "post-evacuation east deploy failed"

kill -TERM "$daemon_pid"
for _ in $(seq 1 100); do
    kill -0 "$daemon_pid" 2>/dev/null || break
    sleep 0.1
done
wait "$daemon_pid" || fail "federated geniod exited non-zero"
daemon_pid=""
grep -q "shutdown complete" "$workdir/geniod.log" || fail "no clean federated shutdown marker"

echo "e2e: PASS"
