package genio_test

// Table-driven coverage of the control-plane error taxonomy: every
// rejection path of the deploy pipeline must return an errors.As-able
// typed error that errors.Is-matches both its specific sentinel and the
// ErrRejected umbrella (cancellation matches ErrCancelled instead), plus
// the DeployBatch partial-failure ordering determinism check.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"genio"
	"genio/api"
	"genio/internal/container"
	"genio/internal/rbac"
)

// taxonomyPlatform builds a secure platform with every fixture image
// signed by the trusted publisher (so each scanner's rejection path is
// reachable), one unsigned hostile image, and scoped deploy rights.
func taxonomyPlatform(t *testing.T) *genio.Platform {
	t.Helper()
	p, err := genio.NewPlatform(genio.SecureConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	if _, err := p.AddEdgeNode("olt-01", genio.Resources{CPUMilli: 4000, MemoryMB: 8192}); err != nil {
		t.Fatal(err)
	}
	pub, err := container.NewPublisher("acme")
	if err != nil {
		t.Fatal(err)
	}
	p.Registry.TrustPublisher("acme", pub.PublicKey())
	for _, img := range []*container.Image{
		container.AnalyticsImage(),   // clean
		container.IoTGatewayImage(),  // sast-gate rejects (hardcoded credential)
		container.MLInferenceImage(), // sca-gate rejects (exploitable critical CVE)
		container.CryptominerImage(), // malware-scan rejects
	} {
		sig := pub.Sign(img)
		p.Registry.Push(img, &sig)
	}
	p.Registry.Push(container.BackdoorImage(), nil) // unsigned
	p.RBAC.SetRole(rbac.Role{Name: "acme-deployer", Permissions: []rbac.Permission{
		{Verb: "create", Resource: "workloads", Namespace: "acme"},
	}})
	if err := p.RBAC.Bind("ci", "acme-deployer"); err != nil {
		t.Fatal(err)
	}
	p.Cluster.SetQuota("acme", genio.Resources{CPUMilli: 3000, MemoryMB: 6144})
	return p
}

func taxonomySpec(name, ref string, cpu, mem int) genio.WorkloadSpec {
	return genio.WorkloadSpec{
		Name: name, Tenant: "acme", ImageRef: ref,
		Isolation: genio.IsolationSoft,
		Resources: genio.Resources{CPUMilli: cpu, MemoryMB: mem},
	}
}

func TestErrorTaxonomyCoversEveryRejectionPath(t *testing.T) {
	tests := []struct {
		name string
		// deploy returns the error under test against a fresh platform.
		deploy func(t *testing.T, p *genio.Platform) error
		// as asserts the concrete type (errors.As) and may inspect it.
		as func(t *testing.T, err error)
		// is lists sentinels that must match; notIs must not.
		is    []error
		notIs []error
	}{
		{
			name: "malware scanner rejection",
			deploy: func(t *testing.T, p *genio.Platform) error {
				_, err := p.Deploy("ci", taxonomySpec("miner", "freestuff/optimizer:latest", 100, 128))
				return err
			},
			as: func(t *testing.T, err error) {
				var adm *genio.AdmissionError
				if !errors.As(err, &adm) {
					t.Fatalf("want *AdmissionError, got %T: %v", err, err)
				}
				rej := adm.Rejections()
				if len(rej) == 0 || rej[0].Scanner != "malware-scan" {
					t.Fatalf("rejections = %+v, want malware-scan first", rej)
				}
				if len(adm.Verdicts) < 4 {
					t.Fatalf("verdict vector has %d entries, want the full chain", len(adm.Verdicts))
				}
			},
			is:    []error{genio.ErrDenied, genio.ErrRejected},
			notIs: []error{genio.ErrCancelled, genio.ErrQuotaExceeded},
		},
		{
			name: "sast scanner rejection",
			deploy: func(t *testing.T, p *genio.Platform) error {
				_, err := p.Deploy("ci", taxonomySpec("gw", "acme/iot-gateway:1.4.2", 100, 128))
				return err
			},
			as: func(t *testing.T, err error) {
				var adm *genio.AdmissionError
				if !errors.As(err, &adm) {
					t.Fatalf("want *AdmissionError, got %T: %v", err, err)
				}
				if rej := adm.Rejections(); len(rej) == 0 || rej[0].Scanner != "sast-gate" {
					t.Fatalf("rejections = %+v, want sast-gate", rej)
				}
			},
			is: []error{genio.ErrDenied, genio.ErrRejected},
		},
		{
			name: "sca scanner rejection",
			deploy: func(t *testing.T, p *genio.Platform) error {
				_, err := p.Deploy("ci", taxonomySpec("ml", "acme/ml-inference:0.9.0", 100, 128))
				return err
			},
			as: func(t *testing.T, err error) {
				var adm *genio.AdmissionError
				if !errors.As(err, &adm) {
					t.Fatalf("want *AdmissionError, got %T: %v", err, err)
				}
				if rej := adm.Rejections(); len(rej) == 0 || rej[0].Scanner != "sca-gate" {
					t.Fatalf("rejections = %+v, want sca-gate", rej)
				}
			},
			is: []error{genio.ErrDenied, genio.ErrRejected},
		},
		{
			name: "unsigned image at pull",
			deploy: func(t *testing.T, p *genio.Platform) error {
				_, err := p.Deploy("ci", taxonomySpec("backdoor", "freestuff/log-shipper:3.1", 100, 128))
				return err
			},
			as: func(t *testing.T, err error) {
				var pull *genio.ImagePullError
				if !errors.As(err, &pull) {
					t.Fatalf("want *ImagePullError, got %T: %v", err, err)
				}
				if pull.Ref != "freestuff/log-shipper:3.1" {
					t.Fatalf("ref = %q", pull.Ref)
				}
			},
			is:    []error{container.ErrUnsigned, genio.ErrRejected},
			notIs: []error{genio.ErrDenied},
		},
		{
			name: "unknown image at pull",
			deploy: func(t *testing.T, p *genio.Platform) error {
				_, err := p.Deploy("ci", taxonomySpec("ghost", "ghost/unknown:0.0", 100, 128))
				return err
			},
			as: func(t *testing.T, err error) {
				var pull *genio.ImagePullError
				if !errors.As(err, &pull) {
					t.Fatalf("want *ImagePullError, got %T: %v", err, err)
				}
			},
			is: []error{container.ErrNotFound, genio.ErrRejected},
		},
		{
			name: "tenant quota exceeded",
			deploy: func(t *testing.T, p *genio.Platform) error {
				_, err := p.Deploy("ci", taxonomySpec("hog", "acme/analytics:2.0.1", 3500, 128))
				return err
			},
			as: func(t *testing.T, err error) {
				var quota *genio.QuotaError
				if !errors.As(err, &quota) {
					t.Fatalf("want *QuotaError, got %T: %v", err, err)
				}
				if quota.Tenant != "acme" || quota.Quota.CPUMilli != 3000 || quota.Requested.CPUMilli != 3500 {
					t.Fatalf("quota arithmetic = %+v", quota)
				}
			},
			is:    []error{genio.ErrQuotaExceeded, genio.ErrRejected},
			notIs: []error{genio.ErrNoCapacity},
		},
		{
			name: "no node capacity",
			deploy: func(t *testing.T, p *genio.Platform) error {
				p.Cluster.SetQuota("acme", genio.Resources{}) // unlimited: isolate capacity
				_, err := p.Deploy("ci", taxonomySpec("big", "acme/analytics:2.0.1", 100000, 128))
				return err
			},
			as: func(t *testing.T, err error) {
				var capa *genio.CapacityError
				if !errors.As(err, &capa) {
					t.Fatalf("want *CapacityError, got %T: %v", err, err)
				}
				if capa.Nodes != 1 || capa.Requested.CPUMilli != 100000 {
					t.Fatalf("capacity detail = %+v", capa)
				}
			},
			is: []error{genio.ErrNoCapacity, genio.ErrRejected},
		},
		{
			name: "rbac denial",
			deploy: func(t *testing.T, p *genio.Platform) error {
				_, err := p.Deploy("stranger", taxonomySpec("spy", "acme/analytics:2.0.1", 100, 128))
				return err
			},
			as: func(t *testing.T, err error) {
				var unauth *genio.UnauthorizedError
				if !errors.As(err, &unauth) {
					t.Fatalf("want *UnauthorizedError, got %T: %v", err, err)
				}
				if unauth.Subject != "stranger" || unauth.Tenant != "acme" {
					t.Fatalf("unauthorized detail = %+v", unauth)
				}
			},
			is: []error{genio.ErrUnauthorized, genio.ErrRejected},
		},
		{
			name: "duplicate workload name",
			deploy: func(t *testing.T, p *genio.Platform) error {
				if _, err := p.Deploy("ci", taxonomySpec("dup", "acme/analytics:2.0.1", 100, 128)); err != nil {
					t.Fatalf("first deploy: %v", err)
				}
				_, err := p.Deploy("ci", taxonomySpec("dup", "acme/analytics:2.0.1", 100, 128))
				return err
			},
			as: func(t *testing.T, err error) {
				var dup *genio.DuplicateNameError
				if !errors.As(err, &dup) {
					t.Fatalf("want *DuplicateNameError, got %T: %v", err, err)
				}
				if dup.Workload != "dup" {
					t.Fatalf("workload = %q", dup.Workload)
				}
			},
			is: []error{genio.ErrDuplicateName, genio.ErrRejected},
		},
		{
			name: "closed platform",
			deploy: func(t *testing.T, p *genio.Platform) error {
				p.Close()
				_, err := p.Deploy("ci", taxonomySpec("late", "acme/analytics:2.0.1", 100, 128))
				return err
			},
			as: func(t *testing.T, err error) {
				var closed *genio.ClosedError
				if !errors.As(err, &closed) {
					t.Fatalf("want *ClosedError, got %T: %v", err, err)
				}
			},
			is:    []error{genio.ErrClosed},
			notIs: []error{genio.ErrRejected},
		},
		{
			name: "cancelled before start",
			deploy: func(t *testing.T, p *genio.Platform) error {
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				_, err := p.DeployContext(ctx, "ci", taxonomySpec("never", "acme/analytics:2.0.1", 100, 128))
				return err
			},
			as: func(t *testing.T, err error) {
				var cancelled *genio.CancelledError
				if !errors.As(err, &cancelled) {
					t.Fatalf("want *CancelledError, got %T: %v", err, err)
				}
			},
			is:    []error{genio.ErrCancelled, context.Canceled},
			notIs: []error{genio.ErrRejected, genio.ErrDenied},
		},
	}

	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := taxonomyPlatform(t)
			err := tc.deploy(t, p)
			if err == nil {
				t.Fatal("deploy succeeded; want typed rejection")
			}
			tc.as(t, err)
			for _, sentinel := range tc.is {
				if !errors.Is(err, sentinel) {
					t.Errorf("errors.Is(%v, %v) = false, want true", err, sentinel)
				}
			}
			for _, sentinel := range tc.notIs {
				if errors.Is(err, sentinel) {
					t.Errorf("errors.Is(%v, %v) = true, want false", err, sentinel)
				}
			}

			// The same taxonomy must survive the control-plane wire: encode
			// to the JSON wire error, round-trip the bytes, decode — and
			// re-run every assertion against the reconstruction. This is
			// what lets a remote genioctl branch on errors.Is/As exactly
			// like in-process callers.
			we := api.Encode(err)
			if we == nil {
				t.Fatal("Encode returned nil for a non-nil error")
			}
			data, jerr := json.Marshal(we)
			if jerr != nil {
				t.Fatalf("marshal wire error: %v", jerr)
			}
			var back api.WireError
			if jerr := json.Unmarshal(data, &back); jerr != nil {
				t.Fatalf("unmarshal wire error: %v", jerr)
			}
			decoded := api.Decode(&back)
			if decoded == nil {
				t.Fatal("Decode returned nil")
			}
			tc.as(t, decoded)
			for _, sentinel := range tc.is {
				if !errors.Is(decoded, sentinel) {
					t.Errorf("decoded: errors.Is(%v, %v) = false, want true", decoded, sentinel)
				}
			}
			for _, sentinel := range tc.notIs {
				if errors.Is(decoded, sentinel) {
					t.Errorf("decoded: errors.Is(%v, %v) = true, want false", decoded, sentinel)
				}
			}
		})
	}
}

// TestDeployBatchPartialFailureOrdering: the batch's positional results
// classify identically run after run — the fan-out over futures must not
// perturb which spec gets which typed error.
func TestDeployBatchPartialFailureOrdering(t *testing.T) {
	classify := func(err error) string {
		switch {
		case err == nil:
			return "placed"
		case errors.Is(err, genio.ErrDenied):
			return "denied"
		case errors.Is(err, container.ErrUnsigned):
			return "unsigned"
		case errors.Is(err, genio.ErrQuotaExceeded):
			return "quota"
		default:
			return fmt.Sprintf("other(%v)", err)
		}
	}
	want := []string{"placed", "denied", "unsigned", "placed", "denied"}
	for run := 0; run < 3; run++ {
		p := taxonomyPlatform(t)
		specs := []genio.WorkloadSpec{
			taxonomySpec("b0", "acme/analytics:2.0.1", 100, 128),
			taxonomySpec("b1", "freestuff/optimizer:latest", 100, 128),
			taxonomySpec("b2", "freestuff/log-shipper:3.1", 100, 128),
			taxonomySpec("b3", "acme/analytics:2.0.1", 100, 128),
			taxonomySpec("b4", "acme/iot-gateway:1.4.2", 100, 128),
		}
		workloads, errs := p.DeployBatch("ci", specs)
		if len(workloads) != len(specs) || len(errs) != len(specs) {
			t.Fatalf("run %d: result lengths %d/%d", run, len(workloads), len(errs))
		}
		for i := range specs {
			if got := classify(errs[i]); got != want[i] {
				t.Fatalf("run %d spec %d: classified %q, want %q", run, i, got, want[i])
			}
			if (workloads[i] != nil) == (errs[i] != nil) {
				t.Fatalf("run %d spec %d: exactly one of workload/err must be set", run, i)
			}
		}
	}
}
